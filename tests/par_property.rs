//! Integration tests for the `hood::par` data-parallel layer: combinator
//! pipelines against their sequential counterparts, edge shapes, panic
//! propagation through a live pool, policy-driven split cadence, and the
//! outside-a-pool sequential fallback. Seeded [`DetRng`] loops replace
//! proptest (the workspace is dependency-free); every case is
//! reproducible from its seed.

use abp_dag::DetRng;
use hood::par::prelude::*;
use hood::par::{par_sort_unstable, scope_fifo, IntoParIter};
use hood::{PolicySet, PoolConfig, SplitKind, ThreadPool};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

fn pool_with_split(p: usize, split: SplitKind) -> ThreadPool {
    ThreadPool::with_config(PoolConfig {
        num_procs: p,
        policies: PolicySet {
            split,
            ..PolicySet::default()
        },
        ..PoolConfig::default()
    })
}

#[test]
fn pipelines_match_sequential_across_seeds() {
    let pool = ThreadPool::new(4);
    for seed in 0..8u64 {
        let mut rng = DetRng::new(seed);
        let len = rng.below(50_000) as usize;
        let v: Vec<u64> = (0..len).map(|_| rng.below(1_000_000)).collect();

        let (par_sum, par_odd, par_mapped) = pool.install(|| {
            let s: u64 = v.par_iter().map(|&x| x / 3 + 1).sum();
            let odd = v.par_iter().filter(|&&x| x % 2 == 1).count();
            let mapped: Vec<u64> = v.par_iter().map(|&x| x.rotate_left(7)).map_collect();
            (s, odd, mapped)
        });

        let seq_sum: u64 = v.iter().map(|&x| x / 3 + 1).sum();
        let seq_odd = v.iter().filter(|&&x| x % 2 == 1).count();
        let seq_mapped: Vec<u64> = v.iter().map(|&x| x.rotate_left(7)).collect();
        assert_eq!(par_sum, seq_sum, "seed {seed}");
        assert_eq!(par_odd, seq_odd, "seed {seed}");
        assert_eq!(par_mapped, seq_mapped, "seed {seed}");
    }
}

#[test]
fn empty_and_singleton_slices() {
    let pool = ThreadPool::new(2);
    pool.install(|| {
        let empty: Vec<u64> = vec![];
        assert_eq!(empty.par_iter().copied().sum(), 0);
        assert_eq!(empty.par_iter().count(), 0);
        assert!(empty.par_iter().copied().map_collect().is_empty());
        assert!(empty.par_iter().copied().collect_vec().is_empty());
        assert_eq!(empty.par_iter().map(|&x| x).reduce(|| 7, |a, b| a + b), 7);

        let one = [41u64];
        assert_eq!(one.par_iter().copied().sum(), 41);
        assert_eq!(one.par_iter().count(), 1);
        assert_eq!(one.par_iter().map(|&x| x + 1).map_collect(), vec![42]);
        let mut one_mut = vec![41u64];
        one_mut.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one_mut, vec![42]);
    });
}

/// String concatenation is associative but not commutative: the combine
/// tree must mirror the recursion tree so order survives any steal
/// interleaving.
#[test]
fn non_commutative_reduce_preserves_order() {
    let pool = ThreadPool::new(4);
    for _ in 0..16 {
        let v: Vec<u32> = (0..2_000).collect();
        let got = pool.install(|| {
            v.par_iter()
                .map(|x| format!("{x};"))
                .reduce(String::new, |a, b| a + &b)
        });
        let want: String = (0..2_000).map(|x| format!("{x};")).collect();
        assert_eq!(got, want);
    }
}

#[test]
fn panic_in_map_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    let v: Vec<u64> = (0..10_000).collect();
    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            v.par_iter()
                .map(|&x| {
                    if x == 7_777 {
                        panic!("map panic");
                    }
                    x
                })
                .sum()
        })
    }));
    assert!(r.is_err(), "panic must surface to the caller");
    // The pool is intact afterwards.
    assert_eq!(
        pool.install(|| v.par_iter().copied().sum()),
        v.iter().sum::<u64>()
    );
}

#[test]
fn panic_in_reduce_propagates_and_pool_survives() {
    let pool = ThreadPool::new(4);
    let v: Vec<u64> = (0..10_000).collect();
    let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
        pool.install(|| {
            v.par_iter().copied().reduce(
                || 0,
                |a, b| {
                    if a.wrapping_add(b) > 40_000_000 {
                        panic!("reduce panic");
                    }
                    a + b
                },
            )
        })
    }));
    assert!(r.is_err());
    assert_eq!(pool.install(|| 1 + 1), 2);
}

/// `map_collect` abandoning its spine on panic must not double-drop:
/// run a drop-counting payload through a panicking map many times.
#[test]
fn panic_in_map_collect_never_double_drops() {
    static DROPS: AtomicU64 = AtomicU64::new(0);
    struct Counted(#[allow(dead_code)] u64);
    impl Drop for Counted {
        fn drop(&mut self) {
            DROPS.fetch_add(1, Ordering::Relaxed);
        }
    }
    let pool = ThreadPool::new(4);
    let v: Vec<u64> = (0..5_000).collect();
    for _ in 0..8 {
        let before = DROPS.load(Ordering::Relaxed);
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.install(|| {
                let _out: Vec<Counted> = v
                    .par_iter()
                    .map(|&x| {
                        if x == 2_500 {
                            panic!("collect panic");
                        }
                        Counted(x)
                    })
                    .map_collect();
            })
        }));
        assert!(r.is_err());
        let dropped = DROPS.load(Ordering::Relaxed) - before;
        // Leaking initialized elements is allowed; dropping more than
        // one Counted per constructed element is not. At most one
        // element per index can ever exist.
        assert!(dropped <= v.len() as u64, "double drop: {dropped}");
    }
}

/// Every combinator must work (sequentially) with no pool installed.
#[test]
fn combinators_outside_any_pool_fall_back_to_sequential() {
    let v: Vec<u64> = (0..10_000).collect();
    assert_eq!(v.par_iter().copied().sum(), v.iter().sum());
    assert_eq!(v.par_iter().filter(|&&x| x % 3 == 0).count(), 3_334);
    let doubled: Vec<u64> = v.par_iter().map(|&x| x * 2).map_collect();
    assert_eq!(doubled[9_999], 19_998);
    let s: usize = (0..100usize).into_par_iter().sum();
    assert_eq!(s, 4950);
    let mut w = vec![3u8, 1, 2];
    par_sort_unstable(&mut w);
    assert_eq!(w, vec![1, 2, 3]);
    let hits = AtomicU64::new(0);
    scope_fifo(|s| {
        for _ in 0..4 {
            s.spawn_fifo(|_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        }
    });
    assert_eq!(hits.load(Ordering::Relaxed), 4);
}

#[test]
fn par_sort_matches_std_across_seeds_and_policies() {
    for split in [
        SplitKind::Adaptive,
        SplitKind::EagerGrain { grain: 1_024 },
        SplitKind::Sequential,
    ] {
        let pool = pool_with_split(4, split);
        for seed in 0..4u64 {
            let mut rng = DetRng::new(seed);
            let mut v: Vec<u64> = (0..40_000).map(|_| rng.below(5_000)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            pool.install(|| par_sort_unstable(&mut v));
            assert_eq!(v, expect, "split {split:?} seed {seed}");
        }
        pool.shutdown();
    }
}

/// The policy axis actually drives the cadence: a `Sequential` pool
/// records zero splits, an adaptive pool records some, and both compute
/// the same answer.
#[test]
fn split_policy_axis_controls_forking() {
    let v: Vec<u64> = (0..200_000).collect();
    let want: u64 = v.iter().map(|&x| x * 2).sum();

    let seq_pool = pool_with_split(2, SplitKind::Sequential);
    let got = seq_pool.install(|| v.par_iter().map(|&x| x * 2).sum());
    assert_eq!(got, want);
    let report = seq_pool.shutdown();
    assert_eq!(
        report.stats.par_splits, 0,
        "sequential policy must not fork"
    );
    assert!(report.stats.par_seq > 0, "decisions are still counted");

    let adaptive_pool = pool_with_split(2, SplitKind::Adaptive);
    let got = adaptive_pool.install(|| v.par_iter().map(|&x| x * 2).sum());
    assert_eq!(got, want);
    let report = adaptive_pool.shutdown();
    assert!(
        report.stats.par_splits > 0,
        "adaptive policy on a multi-worker pool should fork at least the depth budget: {:?}",
        report.stats
    );
    assert!(report.stats.attempts_balance());
}

#[test]
fn scope_fifo_services_in_spawn_order_on_one_worker() {
    let pool = ThreadPool::new(1);
    let order = Mutex::new(Vec::new());
    pool.install(|| {
        let order = &order;
        scope_fifo(|s| {
            for i in 0..64 {
                s.spawn_fifo(move |_| {
                    order.lock().unwrap().push(i);
                });
            }
        });
    });
    assert_eq!(*order.lock().unwrap(), (0..64).collect::<Vec<i32>>());
}

/// Mixed workload: combinators nested inside joins inside scopes, all on
/// one pool, agreeing with the sequential answer.
#[test]
fn combinators_compose_with_join_and_scope() {
    let pool = ThreadPool::new(4);
    let a: Vec<u64> = (0..30_000).collect();
    let b: Vec<u64> = (0..30_000).rev().collect();
    let (sa, sb) = pool.install(|| {
        hood::join(
            || a.par_iter().map(|&x| x + 1).sum(),
            || b.par_iter().copied().filter(|&x| x % 2 == 0).sum(),
        )
    });
    assert_eq!(sa, a.iter().map(|&x| x + 1).sum());
    assert_eq!(sb, b.iter().filter(|&&x| x % 2 == 0).sum());
}
