//! Integration tests for the hood threaded runtime: realistic parallel
//! algorithms, configuration matrix, oversubscription, and reuse.

use hood::{join, scope, Backend, PoolConfig, ThreadPool};
use multiprog_ws::dag::DetRng;
use std::sync::atomic::{AtomicU64, Ordering};

fn quicksort(v: &mut [u64]) {
    if v.len() <= 32 {
        v.sort_unstable();
        return;
    }
    let pivot = v[v.len() / 2];
    // Three-way partition.
    let (mut lt, mut i, mut gt) = (0usize, 0usize, v.len());
    while i < gt {
        if v[i] < pivot {
            v.swap(lt, i);
            lt += 1;
            i += 1;
        } else if v[i] > pivot {
            gt -= 1;
            v.swap(i, gt);
        } else {
            i += 1;
        }
    }
    let (lo, rest) = v.split_at_mut(lt);
    let hi = &mut rest[gt - lt..];
    join(|| quicksort(lo), || quicksort(hi));
}

fn mergesortish_check(pool: &ThreadPool, n: usize, seed: u64) {
    let mut rng = DetRng::new(seed);
    let mut v: Vec<u64> = (0..n as u64).collect();
    rng.shuffle(&mut v);
    pool.install(|| quicksort(&mut v));
    assert!(v.windows(2).all(|w| w[0] <= w[1]), "not sorted");
    assert_eq!(v.len(), n);
    assert_eq!(v[0], 0);
    assert_eq!(v[n - 1], n as u64 - 1);
}

#[test]
fn parallel_quicksort_all_configs() {
    let configs = [
        (
            "abp+yield",
            Backend::Abp { capacity: 1 << 15 },
            hood::BackoffKind::Yield,
        ),
        (
            "abp-noyield",
            Backend::Abp { capacity: 1 << 15 },
            hood::BackoffKind::None,
        ),
        ("locking+yield", Backend::Locking, hood::BackoffKind::Yield),
    ];
    for (name, backend, backoff) in configs {
        let pool = ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(4)
                .with_backend(backend)
                .with_policies(hood::PolicySet::paper().with_backoff(backoff).with_idle(
                    hood::IdleKind::ParkAfter {
                        threshold: 64,
                        park_len: 100,
                    },
                )),
        );
        mergesortish_check(&pool, 50_000, 42);
        let _ = name;
    }
}

#[test]
fn every_policy_set_completes_with_balanced_accounting() {
    // One pool per point of the policy space: each victim selector,
    // backoff, and idle policy must complete real work and keep the
    // attempts == steals + aborts + empties identity.
    let sets = [
        hood::PolicySet::paper(),
        hood::PolicySet::paper().with_victim(hood::VictimKind::RoundRobin),
        hood::PolicySet::paper().with_victim(hood::VictimKind::LastVictim),
        hood::PolicySet::paper().with_backoff(hood::BackoffKind::None),
        hood::PolicySet::paper().with_backoff(hood::BackoffKind::ExpJitter { base: 4, cap: 64 }),
        hood::PolicySet::paper().with_backoff(hood::BackoffKind::SpinThenYield {
            spin: 8,
            threshold: 3,
        }),
        hood::PolicySet::paper().with_idle(hood::IdleKind::ParkAfter {
            threshold: 16,
            park_len: 50,
        }),
    ];
    for policies in sets {
        let pool = ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(4)
                .with_policies(policies),
        );
        mergesortish_check(&pool, 20_000, 99);
        let report = pool.shutdown();
        assert!(
            report.stats.attempts_balance(),
            "steal accounting out of balance under {}",
            policies.label()
        );
        for w in &report.per_worker {
            assert!(w.attempts_balance());
        }
    }
}

#[test]
fn oversubscribed_pool_completes() {
    // P far above the machine's processor count: the multiprogrammed
    // setting the paper is about. Yields keep this from collapsing.
    let pool = ThreadPool::new(16);
    mergesortish_check(&pool, 30_000, 7);
    let stats = pool.stats();
    assert!(stats.yields > 0, "oversubscribed run should have yielded");
}

#[test]
fn pool_reuse_across_many_installs() {
    let pool = ThreadPool::new(4);
    for round in 0..50 {
        let n = 500 + round * 37;
        let total = pool.install(|| {
            let data: Vec<u64> = (0..n).collect();
            fn sum(s: &[u64]) -> u64 {
                if s.len() <= 64 {
                    return s.iter().sum();
                }
                let (a, b) = join(|| sum(&s[..s.len() / 2]), || sum(&s[s.len() / 2..]));
                a + b
            }
            sum(&data)
        });
        assert_eq!(total, n * (n - 1) / 2);
    }
}

#[test]
fn mixed_join_and_scope() {
    let pool = ThreadPool::new(4);
    let hits = AtomicU64::new(0);
    let (a, b) = pool.install(|| {
        join(
            || {
                scope(|s| {
                    for _ in 0..32 {
                        s.spawn(|_| {
                            hits.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
                1u32
            },
            || {
                scope(|s| {
                    s.spawn(|s2| {
                        s2.spawn(|_| {
                            hits.fetch_add(10, Ordering::Relaxed);
                        });
                        hits.fetch_add(10, Ordering::Relaxed);
                    });
                });
                2u32
            },
        )
    });
    assert_eq!((a, b), (1, 2));
    assert_eq!(hits.load(Ordering::Relaxed), 32 + 20);
}

#[test]
fn install_from_external_threads_concurrently() {
    let pool = std::sync::Arc::new(ThreadPool::new(4));
    let mut handles = Vec::new();
    for t in 0..4u64 {
        let pool = std::sync::Arc::clone(&pool);
        handles.push(std::thread::spawn(move || {
            let mut acc = 0u64;
            for i in 0..20 {
                acc += pool.install(|| {
                    let (a, b) = join(|| t * 1000 + i, || i);
                    a + b
                });
            }
            acc
        }));
    }
    for (t, h) in handles.into_iter().enumerate() {
        let got = h.join().unwrap();
        let expect: u64 = (0..20).map(|i| (t as u64) * 1000 + 2 * i).sum();
        assert_eq!(got, expect);
    }
}

#[test]
fn tiny_capacity_falls_back_to_inline_execution() {
    // A deque with room for 2 jobs forces constant overflow; everything
    // must still compute correctly (just with less parallelism).
    let pool = ThreadPool::with_config(PoolConfig {
        num_procs: 3,
        backend: Backend::Abp { capacity: 2 },
        ..PoolConfig::default()
    });
    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }
    assert_eq!(pool.install(|| fib(18)), 2584);
}

#[test]
fn deeply_unbalanced_work() {
    // A degenerate "linked list" recursion: one side trivial, one side
    // deep. Stresses steal-back and wait paths.
    let pool = ThreadPool::new(4);
    fn count(n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let (a, b) = join(|| 1u64, || count(n - 1));
        a + b
    }
    assert_eq!(pool.install(|| count(3_000)), 3_000);
}

#[test]
fn results_flow_through_nested_generics() {
    let pool = ThreadPool::new(2);
    let (strings, lengths) = pool.install(|| {
        join(
            || (0..100).map(|i| format!("item-{i}")).collect::<Vec<_>>(),
            || (0..100).map(|i| i * 2).collect::<Vec<u32>>(),
        )
    });
    assert_eq!(strings.len(), 100);
    assert_eq!(strings[99], "item-99");
    assert_eq!(lengths[50], 100);
}
