//! Property-based tests (proptest) over the core data structures and the
//! cross-crate pipeline: random dags are valid and schedule correctly;
//! random deque op sequences match the specification; random kernel
//! patterns never break the invariants.

use multiprog_ws::dag::{gen, DagBuilder, NodeId};
use multiprog_ws::deque::{DequeOp, SimDeque, StepOutcome};
use multiprog_ws::kernel::{BenignKernel, CountSource, KernelTable, Tail, YieldPolicy};
use multiprog_ws::sim::{greedy, run_ws, WsConfig};
use proptest::prelude::*;

// ------------------------------------------------------------- generators

/// A random series-parallel dag described by (seed, size).
fn arb_dag() -> impl Strategy<Value = multiprog_ws::dag::Dag> {
    (0u64..1_000, 10usize..800)
        .prop_map(|(seed, size)| gen::random_series_parallel(seed, size))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Generated dags always satisfy the paper's structural assumptions.
    #[test]
    fn random_dags_are_structurally_valid(dag in arb_dag()) {
        prop_assert_eq!(dag.in_degree(dag.root()), 0);
        prop_assert_eq!(dag.out_degree(dag.final_node()), 0);
        prop_assert!(dag.critical_path() <= dag.work());
        prop_assert!(dag.parallelism() >= 1.0);
        let mut roots = 0;
        let mut finals = 0;
        for i in 0..dag.num_nodes() {
            let u = NodeId(i as u32);
            prop_assert!(dag.out_degree(u) <= 2, "out-degree of {} is {}", u, dag.out_degree(u));
            if dag.in_degree(u) == 0 { roots += 1; }
            if dag.out_degree(u) == 0 { finals += 1; }
        }
        prop_assert_eq!(roots, 1);
        prop_assert_eq!(finals, 1);
    }

    /// Topological order is consistent with every edge.
    #[test]
    fn topo_order_sound(dag in arb_dag()) {
        let mut pos = vec![usize::MAX; dag.num_nodes()];
        for (i, &u) in dag.topo_order().iter().enumerate() {
            pos[u.index()] = i;
        }
        for e in dag.edges() {
            prop_assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }

    /// Greedy offline schedules are valid and meet the Theorem-2 bound for
    /// arbitrary cyclic kernel count patterns.
    #[test]
    fn greedy_meets_theorem2_on_random_inputs(
        dag in arb_dag(),
        counts in proptest::collection::vec(0usize..6, 1..12),
        p in 1usize..6,
    ) {
        // Ensure the schedule can finish: at least one positive count.
        let mut counts = counts;
        if counts.iter().all(|&c| c == 0) {
            counts.push(1);
        }
        let counts: Vec<usize> = counts.into_iter().map(|c| c.min(p)).collect();
        let table = KernelTable::from_counts(p, &counts, Tail::Cycle);
        let sched = greedy(&dag, &table, 50_000_000);
        prop_assert!(sched.validate(&dag, &table).is_ok());
        let t = sched.length() as f64;
        let pa = sched.processor_average();
        let bound = (dag.work() as f64 + dag.critical_path() as f64 * (p as f64 - 1.0)) / pa;
        prop_assert!(t <= bound + 1e-9, "T={} > bound={}", t, bound);
        prop_assert!(t >= dag.work() as f64 / pa - 1e-9, "T={} below T1/PA", t);
    }

    /// The simulated work stealer executes every node exactly once and
    /// keeps all invariants, for random dags, process counts, and benign
    /// kernel patterns.
    #[test]
    fn ws_sim_clean_on_random_inputs(
        dag in arb_dag(),
        p in 1usize..9,
        kseed in 0u64..500,
        sseed in 0u64..500,
        lo in 1usize..4,
    ) {
        let mut k = BenignKernel::new(p, CountSource::UniformBetween(lo.min(p), p), kseed);
        let cfg = WsConfig {
            yield_policy: YieldPolicy::ToAll,
            check_structural: true,
            check_potential: true,
            seed: sseed,
            max_rounds: 5_000_000,
            ..WsConfig::default()
        };
        let r = run_ws(&dag, p, &mut k, cfg);
        prop_assert!(r.completed);
        prop_assert_eq!(r.executed, r.work);
        prop_assert_eq!(r.structural_violations, 0);
        prop_assert_eq!(r.potential_violations, 0);
        prop_assert_eq!(r.milestone_violations, 0);
    }

    /// Sequentially interleaved sim-deque operations agree with a
    /// VecDeque specification for arbitrary op sequences.
    #[test]
    fn sim_deque_matches_spec(ops in proptest::collection::vec(0u8..4, 1..400)) {
        let mut d = SimDeque::new();
        let mut spec = std::collections::VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                0 | 1 => {
                    match DequeOp::push_bottom(next).run_to_completion(&mut d) {
                        StepOutcome::PushDone => {}
                        o => prop_assert!(false, "unexpected {:?}", o),
                    }
                    spec.push_back(next);
                    next += 1;
                }
                2 => {
                    let got = match DequeOp::pop_bottom().run_to_completion(&mut d) {
                        StepOutcome::PopBottomDone(r) => r,
                        o => { prop_assert!(false, "unexpected {:?}", o); None }
                    };
                    prop_assert_eq!(got, spec.pop_back());
                }
                _ => {
                    let got = match DequeOp::pop_top().run_to_completion(&mut d) {
                        StepOutcome::PopTopDone(r) => r.taken(),
                        o => { prop_assert!(false, "unexpected {:?}", o); None }
                    };
                    prop_assert_eq!(got, spec.pop_front());
                }
            }
            prop_assert_eq!(d.len(), spec.len());
        }
    }

    /// Same for the real atomic deque used sequentially.
    #[test]
    fn atomic_deque_matches_spec(ops in proptest::collection::vec(0u8..4, 1..400)) {
        let (w, s) = multiprog_ws::deque::new::<u64>(512);
        let mut spec = std::collections::VecDeque::new();
        let mut next = 0u64;
        for op in ops {
            match op {
                0 | 1 => {
                    prop_assert!(w.push_bottom(next).is_ok());
                    spec.push_back(next);
                    next += 1;
                }
                2 => prop_assert_eq!(w.pop_bottom(), spec.pop_back()),
                _ => prop_assert_eq!(s.pop_top().taken(), spec.pop_front()),
            }
        }
    }

    /// Builder round-trip: a random fork-join construction always
    /// validates, and its metrics satisfy the composition laws.
    #[test]
    fn builder_composition_laws(depth in 0u32..7, seq in 1usize..5) {
        let d = gen::fork_join_tree(depth, seq);
        // T∞ grows linearly in depth; work exponentially.
        let d2 = gen::fork_join_tree(depth + 1, seq);
        prop_assert!(d2.work() > 2 * d.work());
        prop_assert!(d2.critical_path() > d.critical_path());
        // One extra level adds a constant number of nodes to the critical
        // path (prologue + spawn + entry + join + epilogue ≤ seq·2 + 4).
        prop_assert!(d2.critical_path() <= d.critical_path() + 2 * seq as u64 + 4);
    }

    /// A dag built from random thread chains with random (forward) sync
    /// edges either validates or fails with a *specific* error — never
    /// panics.
    #[test]
    fn builder_never_panics_on_random_syncs(
        lens in proptest::collection::vec(1usize..6, 1..5),
        syncs in proptest::collection::vec((0usize..20, 0usize..20), 0..8),
    ) {
        let mut b = DagBuilder::new();
        let mut all_nodes = Vec::new();
        let mut threads = Vec::new();
        for (ti, &len) in lens.iter().enumerate() {
            let t = b.thread();
            threads.push(t);
            let mut prev_spawn_source: Option<NodeId> = None;
            for _ in 0..len {
                let n = b.node(t);
                all_nodes.push(n);
                prev_spawn_source.get_or_insert(n);
            }
            // Spawn each non-root thread from some node of thread 0.
            let _ = ti;
        }
        // Wire spawns: root thread must exist; spawn every other thread's
        // first node from the root thread's first node region.
        for (ti, t) in threads.iter().enumerate().skip(1) {
            let first = b.node(*t); // ensure a target node exists
            all_nodes.push(first);
            let from = all_nodes[0];
            let _ = (ti, from);
            b.spawn(all_nodes[0], first);
        }
        for &(a, c) in &syncs {
            if a < all_nodes.len() && c < all_nodes.len() && a != c {
                b.sync(all_nodes[a], all_nodes[c]);
            }
        }
        // Must not panic; error is fine.
        let _ = b.finish();
    }
}
