//! Randomized property tests over the core data structures and the
//! cross-crate pipeline: random dags are valid and schedule correctly;
//! random deque op sequences match the specification; random kernel
//! patterns never break the invariants.
//!
//! The workspace is dependency-free, so instead of proptest these use the
//! deterministic [`DetRng`] with fixed seeds: every case is reproducible
//! by its printed seed, and the case counts are chosen to cover at least
//! what the proptest defaults did.

use multiprog_ws::dag::{gen, DagBuilder, DetRng, NodeId};
use multiprog_ws::deque::{DequeOp, SimDeque, StepOutcome};
use multiprog_ws::kernel::{BenignKernel, CountSource, KernelTable, Tail, YieldPolicy};
use multiprog_ws::sim::{greedy, run_ws, WsConfig};

/// A random series-parallel dag from a per-case RNG.
fn arb_dag(rng: &mut DetRng) -> multiprog_ws::dag::Dag {
    let seed = rng.below(1_000);
    let size = 10 + rng.below_usize(790);
    gen::random_series_parallel(seed, size)
}

/// Generated dags always satisfy the paper's structural assumptions.
#[test]
fn random_dags_are_structurally_valid() {
    let mut rng = DetRng::new(0xDA61);
    for case in 0..64 {
        let dag = arb_dag(&mut rng);
        assert_eq!(dag.in_degree(dag.root()), 0, "case {case}");
        assert_eq!(dag.out_degree(dag.final_node()), 0, "case {case}");
        assert!(dag.critical_path() <= dag.work(), "case {case}");
        assert!(dag.parallelism() >= 1.0, "case {case}");
        let mut roots = 0;
        let mut finals = 0;
        for i in 0..dag.num_nodes() {
            let u = NodeId(i as u32);
            assert!(
                dag.out_degree(u) <= 2,
                "case {case}: out-degree of {} is {}",
                u,
                dag.out_degree(u)
            );
            if dag.in_degree(u) == 0 {
                roots += 1;
            }
            if dag.out_degree(u) == 0 {
                finals += 1;
            }
        }
        assert_eq!(roots, 1, "case {case}");
        assert_eq!(finals, 1, "case {case}");
    }
}

/// Topological order is consistent with every edge.
#[test]
fn topo_order_sound() {
    let mut rng = DetRng::new(0x1090);
    for case in 0..64 {
        let dag = arb_dag(&mut rng);
        let mut pos = vec![usize::MAX; dag.num_nodes()];
        for (i, &u) in dag.topo_order().iter().enumerate() {
            pos[u.index()] = i;
        }
        for e in dag.edges() {
            assert!(pos[e.from.index()] < pos[e.to.index()], "case {case}");
        }
    }
}

/// Greedy offline schedules are valid and meet the Theorem-2 bound for
/// arbitrary cyclic kernel count patterns.
#[test]
fn greedy_meets_theorem2_on_random_inputs() {
    let mut rng = DetRng::new(0x6EED);
    for case in 0..64 {
        let dag = arb_dag(&mut rng);
        let p = 1 + rng.below_usize(5);
        let len = 1 + rng.below_usize(11);
        let mut counts: Vec<usize> = (0..len).map(|_| rng.below_usize(6).min(p)).collect();
        // Ensure the schedule can finish: at least one positive count.
        if counts.iter().all(|&c| c == 0) {
            counts.push(1);
        }
        let table = KernelTable::from_counts(p, &counts, Tail::Cycle);
        let sched = greedy(&dag, &table, 50_000_000);
        assert!(sched.validate(&dag, &table).is_ok(), "case {case}");
        let t = sched.length() as f64;
        let pa = sched.processor_average();
        let bound = (dag.work() as f64 + dag.critical_path() as f64 * (p as f64 - 1.0)) / pa;
        assert!(t <= bound + 1e-9, "case {case}: T={t} > bound={bound}");
        assert!(
            t >= dag.work() as f64 / pa - 1e-9,
            "case {case}: T={t} below T1/PA"
        );
    }
}

/// The simulated work stealer executes every node exactly once and keeps
/// all invariants, for random dags, process counts, and benign kernel
/// patterns.
#[test]
fn ws_sim_clean_on_random_inputs() {
    let mut rng = DetRng::new(0x5EED);
    for case in 0..48 {
        let dag = arb_dag(&mut rng);
        let p = 1 + rng.below_usize(8);
        let kseed = rng.below(500);
        let sseed = rng.below(500);
        let lo = (1 + rng.below_usize(3)).min(p);
        let mut k = BenignKernel::new(p, CountSource::UniformBetween(lo, p), kseed);
        let cfg = WsConfig {
            yield_policy: YieldPolicy::ToAll,
            check_structural: true,
            check_potential: true,
            seed: sseed,
            max_rounds: 5_000_000,
            ..WsConfig::default()
        };
        let r = run_ws(&dag, p, &mut k, cfg);
        assert!(r.completed, "case {case}");
        assert_eq!(r.executed, r.work, "case {case}");
        assert_eq!(r.structural_violations, 0, "case {case}");
        assert_eq!(r.potential_violations, 0, "case {case}");
        assert_eq!(r.milestone_violations, 0, "case {case}");
    }
}

/// Sequentially interleaved sim-deque operations agree with a VecDeque
/// specification for arbitrary op sequences.
#[test]
fn sim_deque_matches_spec() {
    let mut rng = DetRng::new(0xD0_0D);
    for case in 0..64 {
        let n_ops = 1 + rng.below_usize(399);
        let mut d = SimDeque::new();
        let mut spec = std::collections::VecDeque::new();
        let mut next = 0u64;
        for _ in 0..n_ops {
            match rng.below(4) {
                0 | 1 => {
                    match DequeOp::push_bottom(next).run_to_completion(&mut d) {
                        StepOutcome::PushDone => {}
                        o => panic!("case {case}: unexpected {o:?}"),
                    }
                    spec.push_back(next);
                    next += 1;
                }
                2 => {
                    let got = match DequeOp::pop_bottom().run_to_completion(&mut d) {
                        StepOutcome::PopBottomDone(r) => r,
                        o => panic!("case {case}: unexpected {o:?}"),
                    };
                    assert_eq!(got, spec.pop_back(), "case {case}");
                }
                _ => {
                    let got = match DequeOp::pop_top().run_to_completion(&mut d) {
                        StepOutcome::PopTopDone(r) => r.taken(),
                        o => panic!("case {case}: unexpected {o:?}"),
                    };
                    assert_eq!(got, spec.pop_front(), "case {case}");
                }
            }
            assert_eq!(d.len(), spec.len(), "case {case}");
        }
    }
}

/// Same for the real atomic deque used sequentially.
#[test]
fn atomic_deque_matches_spec() {
    let mut rng = DetRng::new(0xA70);
    for case in 0..64 {
        let n_ops = 1 + rng.below_usize(399);
        let (w, s) = multiprog_ws::deque::new::<u64>(512);
        let mut spec = std::collections::VecDeque::new();
        let mut next = 0u64;
        for _ in 0..n_ops {
            match rng.below(4) {
                0 | 1 => {
                    assert!(w.push_bottom(next).is_ok(), "case {case}");
                    spec.push_back(next);
                    next += 1;
                }
                2 => assert_eq!(w.pop_bottom(), spec.pop_back(), "case {case}"),
                _ => assert_eq!(s.pop_top().taken(), spec.pop_front(), "case {case}"),
            }
        }
    }
}

/// Builder round-trip: a random fork-join construction always validates,
/// and its metrics satisfy the composition laws.
#[test]
fn builder_composition_laws() {
    let mut rng = DetRng::new(0xB11D);
    for case in 0..28 {
        let depth = rng.below(7) as u32;
        let seq = 1 + rng.below_usize(4);
        let d = gen::fork_join_tree(depth, seq);
        // T∞ grows linearly in depth; work exponentially.
        let d2 = gen::fork_join_tree(depth + 1, seq);
        assert!(d2.work() > 2 * d.work(), "case {case}");
        assert!(d2.critical_path() > d.critical_path(), "case {case}");
        // One extra level adds a constant number of nodes to the critical
        // path (prologue + spawn + entry + join + epilogue ≤ seq·2 + 4).
        assert!(
            d2.critical_path() <= d.critical_path() + 2 * seq as u64 + 4,
            "case {case}"
        );
    }
}

/// A dag built from random thread chains with random (forward) sync edges
/// either validates or fails with a *specific* error — never panics.
#[test]
fn builder_never_panics_on_random_syncs() {
    let mut rng = DetRng::new(0x5799C);
    for _case in 0..64 {
        let n_threads = 1 + rng.below_usize(4);
        let lens: Vec<usize> = (0..n_threads).map(|_| 1 + rng.below_usize(5)).collect();
        let n_syncs = rng.below_usize(8);
        let syncs: Vec<(usize, usize)> = (0..n_syncs)
            .map(|_| (rng.below_usize(20), rng.below_usize(20)))
            .collect();
        let mut b = DagBuilder::new();
        let mut all_nodes = Vec::new();
        let mut threads = Vec::new();
        for &len in &lens {
            let t = b.thread();
            threads.push(t);
            for _ in 0..len {
                let n = b.node(t);
                all_nodes.push(n);
            }
        }
        // Wire spawns: root thread must exist; spawn every other thread's
        // first node from the root thread's first node region.
        for t in threads.iter().skip(1) {
            let first = b.node(*t); // ensure a target node exists
            all_nodes.push(first);
            b.spawn(all_nodes[0], first);
        }
        for &(a, c) in &syncs {
            if a < all_nodes.len() && c < all_nodes.len() && a != c {
                b.sync(all_nodes[a], all_nodes[c]);
            }
        }
        // Must not panic; error is fine.
        let _ = b.finish();
    }
}

/// Steals-vs-bound regression: a fixed 3-policy × 2-tree golden matrix
/// where every cell must respect the rooted-tree steal bound (applied to
/// the binarized spawn tree, capped by the edge count). The bound check
/// itself is non-vacuous: forging an impossible steal count rejects.
#[test]
fn tree_steals_respect_rooted_tree_bound_golden_matrix() {
    use multiprog_ws::dag::tree;
    use multiprog_ws::kernel::DedicatedKernel;
    use multiprog_ws::sim::{PolicySet, StealBoundCheck, VictimKind};

    let trees = [
        ("kary(3,4)", tree::full_kary(3, 4)),
        ("caterpillar(12,4)", tree::caterpillar(12, 4)),
    ];
    let victims = [
        VictimKind::Uniform,
        VictimKind::RoundRobin,
        VictimKind::LastVictim,
    ];
    for (name, t) in &trees {
        t.check_invariants();
        let dag = t.to_dag(2);
        let h2 = t.spawn_height();
        let edges = t.num_edges() as u64;
        for vk in victims {
            for p in [2usize, 4] {
                for seed in [3u64, 17] {
                    let mut k = DedicatedKernel::new(p);
                    let cfg = WsConfig::default()
                        .with_seed(seed)
                        .with_policies(PolicySet::paper().with_victim(vk));
                    let r = run_ws(&dag, p, &mut k, cfg);
                    assert!(r.completed, "{name} {vk:?} P={p} seed={seed}");
                    let check = StealBoundCheck::rooted_tree(r.successful_steals, 2, h2, edges, p);
                    assert!(
                        check.holds(),
                        "{name} {vk:?} P={p} seed={seed}: {} steals > bound {}",
                        check.observed,
                        check.bound,
                    );
                    // Non-vacuity: a forged count past the edge cap fails.
                    let forged = StealBoundCheck::rooted_tree(edges + 1, 2, h2, edges, p);
                    assert!(!forged.holds(), "{name}: forged count must reject");
                }
            }
        }
    }
}

/// The cache bound holds on the golden matrix, and disabling the model
/// is structurally zero: the report then carries no cache block at all.
#[test]
fn cache_bound_holds_on_golden_matrix() {
    use multiprog_ws::dag::tree;
    use multiprog_ws::kernel::DedicatedKernel;
    use multiprog_ws::sim::{CacheBoundCheck, CacheConfig};

    let dag = tree::full_kary(2, 6).to_dag(3);
    let serial = {
        let mut k = DedicatedKernel::new(1);
        let cfg = WsConfig::default().with_cache(CacheConfig::default());
        run_ws(&dag, 1, &mut k, cfg)
    };
    let q1 = serial.cache.as_ref().expect("cache model enabled");
    assert_eq!(q1.deviations, 0, "P=1 cannot deviate");
    for p in [2usize, 4] {
        let mut k = DedicatedKernel::new(p);
        let cfg = WsConfig::default().with_cache(CacheConfig::default());
        let r = run_ws(&dag, p, &mut k, cfg);
        let qp = r.cache.as_ref().expect("cache model enabled");
        let check = CacheBoundCheck {
            serial_misses: q1.misses,
            parallel_misses: qp.misses,
            deviations: qp.deviations,
            cache_lines: qp.lines,
        };
        assert!(
            check.holds(),
            "P={p}: {} extra misses > bound {}",
            check.extra_misses(),
            check.bound(),
        );
    }
    // Disabled model: no stats block, and nothing was counted.
    let mut k = DedicatedKernel::new(4);
    let r = run_ws(&dag, 4, &mut k, WsConfig::default());
    assert!(r.cache.is_none(), "no cache block when the model is off");
}
