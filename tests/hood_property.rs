//! Randomized tests of the hood runtime: randomized join trees, scope
//! storms, and helper functions must always agree with their sequential
//! counterparts. Seeded [`DetRng`] loops replace proptest (the workspace
//! is dependency-free); every case is reproducible from its index.

use abp_dag::DetRng;
use hood::{join, scope, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};

/// A random binary expression tree evaluated both serially and with
/// nested joins.
#[derive(Debug, Clone)]
enum Expr {
    Leaf(u64),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

/// Random expression with bounded depth and node budget (mirrors the old
/// `prop_recursive(8, 128, 2, ..)` shape).
fn arb_expr(rng: &mut DetRng, depth: u32, budget: &mut u32) -> Expr {
    if depth == 0 || *budget == 0 || rng.chance(0.35) {
        return Expr::Leaf(rng.below(100));
    }
    *budget = budget.saturating_sub(2);
    let a = Box::new(arb_expr(rng, depth - 1, budget));
    let b = Box::new(arb_expr(rng, depth - 1, budget));
    if rng.chance(0.5) {
        Expr::Add(a, b)
    } else {
        Expr::Mul(a, b)
    }
}

fn eval_serial(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => eval_serial(a).wrapping_add(eval_serial(b)),
        Expr::Mul(a, b) => eval_serial(a).wrapping_mul(eval_serial(b)),
    }
}

fn eval_parallel(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => {
            let (x, y) = join(|| eval_parallel(a), || eval_parallel(b));
            x.wrapping_add(y)
        }
        Expr::Mul(a, b) => {
            let (x, y) = join(|| eval_parallel(a), || eval_parallel(b));
            x.wrapping_mul(y)
        }
    }
}

/// Parallel evaluation of any expression tree equals serial.
#[test]
fn join_trees_evaluate_correctly() {
    let mut rng = DetRng::new(0x3012);
    for case in 0..48 {
        let mut budget = 128;
        let e = arb_expr(&mut rng, 8, &mut budget);
        let p = 1 + rng.below_usize(4);
        let pool = ThreadPool::new(p);
        let expect = eval_serial(&e);
        let got = pool.install(|| eval_parallel(&e));
        assert_eq!(got, expect, "case {case} (p={p})");
    }
}

/// Scoped spawns execute exactly once each, at any fan-out, even with
/// nested scopes.
#[test]
fn scope_spawn_counts() {
    let mut rng = DetRng::new(0x5C0F);
    for case in 0..32 {
        let p = 1 + rng.below_usize(4);
        let outer = rng.below_usize(40);
        let inner = rng.below_usize(5);
        let pool = ThreadPool::new(p);
        let counter = AtomicU64::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..outer {
                    s.spawn(|s2| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..inner {
                            s2.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            (outer + outer * inner) as u64,
            "case {case} (p={p}, outer={outer}, inner={inner})"
        );
    }
}

/// The parallel sort agrees with std's sort for arbitrary data.
#[test]
fn parallel_sort_matches_std() {
    let mut rng = DetRng::new(0x5021);
    for case in 0..24 {
        let len = rng.below_usize(3000);
        let mut v: Vec<u32> = (0..len).map(|_| rng.next_u64() as u32).collect();
        let pool = ThreadPool::new(3);
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.install(|| hood::sort_unstable(&mut v));
        assert_eq!(v, expect, "case {case} (len={len})");
    }
}

/// map_reduce with (+, 0) equals the serial sum for any grain.
#[test]
fn map_reduce_any_grain() {
    let mut rng = DetRng::new(0x0A12);
    for case in 0..24 {
        let len = rng.below_usize(2000);
        let grain = 1 + rng.below_usize(599);
        let v: Vec<u64> = (0..len).map(|_| rng.below(1000)).collect();
        let pool = ThreadPool::new(4);
        let expect: u64 = v.iter().sum();
        let got = pool.install(|| hood::map_reduce(&v, grain, 0u64, &|&x| x, &|a, b| a + b));
        assert_eq!(got, expect, "case {case} (len={len}, grain={grain})");
    }
}
