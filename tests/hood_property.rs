//! Property-based tests of the hood runtime: randomized join trees,
//! scope storms, and helper functions must always agree with their
//! sequential counterparts.

use hood::{join, scope, ThreadPool};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// A random binary expression tree evaluated both serially and with
/// nested joins.
#[derive(Debug, Clone)]
enum Expr {
    Leaf(u64),
    Add(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0u64..100).prop_map(Expr::Leaf);
    leaf.prop_recursive(8, 128, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| Expr::Mul(Box::new(a), Box::new(b))),
        ]
    })
}

fn eval_serial(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => eval_serial(a).wrapping_add(eval_serial(b)),
        Expr::Mul(a, b) => eval_serial(a).wrapping_mul(eval_serial(b)),
    }
}

fn eval_parallel(e: &Expr) -> u64 {
    match e {
        Expr::Leaf(v) => *v,
        Expr::Add(a, b) => {
            let (x, y) = join(|| eval_parallel(a), || eval_parallel(b));
            x.wrapping_add(y)
        }
        Expr::Mul(a, b) => {
            let (x, y) = join(|| eval_parallel(a), || eval_parallel(b));
            x.wrapping_mul(y)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Parallel evaluation of any expression tree equals serial.
    #[test]
    fn join_trees_evaluate_correctly(e in arb_expr(), p in 1usize..5) {
        let pool = ThreadPool::new(p);
        let expect = eval_serial(&e);
        let got = pool.install(|| eval_parallel(&e));
        prop_assert_eq!(got, expect);
    }

    /// Scoped spawns execute exactly once each, at any fan-out, even with
    /// nested scopes.
    #[test]
    fn scope_spawn_counts(p in 1usize..5, outer in 0usize..40, inner in 0usize..5) {
        let pool = ThreadPool::new(p);
        let counter = AtomicU64::new(0);
        pool.install(|| {
            scope(|s| {
                for _ in 0..outer {
                    s.spawn(|s2| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        for _ in 0..inner {
                            s2.spawn(|_| {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        });
        prop_assert_eq!(
            counter.load(Ordering::Relaxed),
            (outer + outer * inner) as u64
        );
    }

    /// The parallel sort agrees with std's sort for arbitrary data.
    #[test]
    fn parallel_sort_matches_std(mut v in proptest::collection::vec(any::<u32>(), 0..3000)) {
        let pool = ThreadPool::new(3);
        let mut expect = v.clone();
        expect.sort_unstable();
        pool.install(|| hood::sort_unstable(&mut v));
        prop_assert_eq!(v, expect);
    }

    /// map_reduce with (+, 0) equals the serial sum for any grain.
    #[test]
    fn map_reduce_any_grain(v in proptest::collection::vec(0u64..1000, 0..2000), grain in 1usize..600) {
        let pool = ThreadPool::new(4);
        let expect: u64 = v.iter().sum();
        let got = pool.install(|| hood::map_reduce(&v, grain, 0u64, &|&x| x, &|a, b| a + b));
        prop_assert_eq!(got, expect);
    }
}
