//! Randomized exactly-once properties of the federated (K-pool)
//! topology, plus the flat-pool structural-zero golden and the
//! `Backend::parse` matrix.
//!
//! External submitter threads are spread across the K pools by client
//! affinity, so every pool's injector shard-set sees traffic while the
//! workers churn on internal fork-join work. Every submitted job must
//! execute exactly once — no loss at a pool boundary (a job routed to
//! pool j must not be dropped because pool j's workers were asleep or
//! busy robbing pool i) and no duplication via the cross-pool steal
//! path. The pools are built from `PoolConfig::default()`, so CI's
//! `HOOD_BACKEND` matrix re-runs this suite against every deque
//! backend unchanged.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

use multiprog_ws::dag::DetRng;
use multiprog_ws::runtime::{
    join, Backend, BatchKind, PolicySet, PoolConfig, PoolReport, ThreadPool,
};

/// One seeded churn episode against a `pools`-way federated topology:
/// `submitters` external threads push `jobs_per_submitter` jobs each
/// (singly or in seeded batches) while the pool runs a recursive join
/// workload. Asserts exactly-once delivery, the extended accounting
/// identity, and per-pool/aggregate reconciliation, then returns the
/// report for extra checks.
fn federated_episode(
    seed: u64,
    workers: usize,
    pools: usize,
    submitters: usize,
    jobs_per_submitter: usize,
    drain_on_shutdown: bool,
) -> PoolReport {
    federated_episode_with(
        seed,
        workers,
        pools,
        submitters,
        jobs_per_submitter,
        drain_on_shutdown,
        PolicySet::default(),
    )
}

/// [`federated_episode`] with an explicit policy set (the batched-steal
/// episodes flip the sixth axis; everything else keeps the default).
fn federated_episode_with(
    seed: u64,
    workers: usize,
    pools: usize,
    submitters: usize,
    jobs_per_submitter: usize,
    drain_on_shutdown: bool,
    policies: PolicySet,
) -> PoolReport {
    let total = submitters * jobs_per_submitter;
    let pool = Arc::new(ThreadPool::with_config(
        PoolConfig::default()
            .with_num_procs(workers)
            .with_pools(pools)
            .with_policies(policies),
    ));
    let counts: Arc<Vec<AtomicU8>> = Arc::new((0..total).map(|_| AtomicU8::new(0)).collect());

    // Internal churn keeps every pool's deques busy while the injectors
    // are being hammered; the fork-join tree spreads via steals.
    let churn_pool = Arc::clone(&pool);
    let churn = std::thread::spawn(move || {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        churn_pool.install(|| fib(17))
    });

    let mut handles = Vec::new();
    for s in 0..submitters {
        let pool = Arc::clone(&pool);
        let counts = Arc::clone(&counts);
        handles.push(std::thread::spawn(move || {
            let mut rng = DetRng::new(seed ^ (0xFED_0000 + s as u64));
            let mut next = s * jobs_per_submitter;
            let end = next + jobs_per_submitter;
            while next < end {
                if rng.chance(0.5) {
                    let len = 1 + rng.below_usize((end - next).min(7));
                    let jobs: Vec<_> = (next..next + len)
                        .map(|id| {
                            let counts = Arc::clone(&counts);
                            move || {
                                counts[id].fetch_add(1, Ordering::Relaxed);
                            }
                        })
                        .collect();
                    pool.spawn_batch(jobs);
                    next += len;
                } else {
                    let id = next;
                    let counts = Arc::clone(&counts);
                    pool.spawn(move || {
                        counts[id].fetch_add(1, Ordering::Relaxed);
                    });
                    next += 1;
                }
                if rng.chance(0.25) {
                    std::thread::yield_now();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(churn.join().unwrap(), 1597, "fib(17)");

    if !drain_on_shutdown {
        // Wait for all jobs before shutdown; otherwise shutdown itself
        // must deliver the backlog of every pool's injector.
        while counts.iter().any(|c| c.load(Ordering::Relaxed) == 0) {
            std::thread::yield_now();
        }
    }
    let report = Arc::try_unwrap(pool)
        .unwrap_or_else(|_| panic!("all clones joined"))
        .shutdown();

    for (id, c) in counts.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "seed {seed:#x} K={pools}: job {id} ran a wrong number of times"
        );
    }
    assert!(
        report.stats.injects >= total as u64,
        "seed {seed:#x} K={pools}: {} injector grabs for {total} submissions",
        report.stats.injects
    );
    assert!(
        report.stats.attempts_balance(),
        "seed {seed:#x} K={pools}: identity broken: {:?}",
        report.stats
    );
    assert!(
        report.stats.locality_consistent(),
        "seed {seed:#x} K={pools}: locality split broken: {:?}",
        report.stats
    );
    // Per-pool stats must partition the aggregate exactly.
    assert_eq!(report.pools, pools);
    assert_eq!(report.per_pool.len(), pools);
    for field in [
        |s: &multiprog_ws::runtime::PoolStats| s.jobs,
        |s: &multiprog_ws::runtime::PoolStats| s.steal_attempts,
        |s: &multiprog_ws::runtime::PoolStats| s.steals,
        |s: &multiprog_ws::runtime::PoolStats| s.remote_steals,
        |s: &multiprog_ws::runtime::PoolStats| s.remote_attempts,
        |s: &multiprog_ws::runtime::PoolStats| s.injects,
        |s: &multiprog_ws::runtime::PoolStats| s.batch_steals,
        |s: &multiprog_ws::runtime::PoolStats| s.batched_tasks,
    ] {
        let sum: u64 = report.per_pool.iter().map(field).sum();
        let agg = field(&report.stats);
        assert_eq!(sum, agg, "seed {seed:#x} K={pools}: per-pool sums diverge");
    }
    report
}

/// Exactly-once across K ∈ {2, 4} pools under churn, across seeds.
#[test]
fn federated_submissions_execute_exactly_once_under_churn() {
    for (seed, pools) in [(0u64, 2), (1, 2), (2, 4), (3, 4)] {
        federated_episode(0xFED5_0000 + seed, 4, pools, 4, 150, false);
    }
}

/// Shutdown drains every pool's injector: jobs submitted and never
/// awaited still execute exactly once before `shutdown` returns, even
/// when their pool's workers parked before the submission landed.
#[test]
fn federated_shutdown_drains_every_pool() {
    for (seed, pools) in [(0u64, 2), (1, 4)] {
        federated_episode(0xD1A1_0000 + seed, 4, pools, 6, 80, true);
    }
}

/// Oversubscription: more workers than cores forces real preemption
/// (the paper's multiprogrammed setting) — exactly-once must survive
/// workers being descheduled mid-poll and mid-cross-pool-rob.
#[test]
fn federated_exactly_once_with_more_workers_than_cores() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let workers = 2 * cores + 2;
    federated_episode(0x0E5B_FED0, workers, 2.min(workers), 3, 100, false);
}

/// The K = 1 structural-zero golden on the real pool: an explicit
/// single-pool topology is the flat pool — one per-pool entry equal to
/// the aggregate and not a single remote attempt or hit recorded (the
/// shutdown assertions enforce the same, but this pins the public
/// report surface).
#[test]
fn flat_topology_reports_structural_zero() {
    let report = federated_episode(0xF1A7_0001, 3, 1, 3, 120, false);
    assert_eq!(report.pools, 1);
    assert_eq!(report.per_pool.len(), 1);
    assert_eq!(report.stats.remote_steals, 0);
    assert_eq!(report.stats.remote_attempts, 0);
    assert_eq!(report.stats.remote_steal_fraction(), 0.0);
    assert_eq!(report.per_pool[0], report.stats);
    // Single-steal default: no batch can ever form (the shutdown
    // asserts enforce the same; this pins the report surface).
    assert_eq!(report.stats.batch_steals, 0);
    assert_eq!(report.stats.batched_tasks, 0);
}

/// Exactly-once survives batched stealing: with `BatchKind::Half` the
/// cross-pool thieves move multi-task batches and the injector drains
/// under one lock per poll, and still no job is lost or duplicated.
/// Batch accounting must stay consistent (every batched task is a
/// counted steal; a batch moves at least two tasks).
#[test]
fn batched_federation_is_exactly_once_and_batch_consistent() {
    for (seed, pools, cap) in [(0u64, 2, 4), (1, 4, 8), (2, 4, 2)] {
        let report = federated_episode_with(
            0xBA7C_0000 + seed,
            4,
            pools,
            4,
            150,
            seed == 1,
            PolicySet::default().with_batch(BatchKind::Half { cap }),
        );
        assert!(
            report.stats.batch_consistent(),
            "seed {seed:#x} K={pools} cap={cap}: batch accounting broken: {:?}",
            report.stats
        );
    }
}

/// `Backend::parse` accepts exactly the documented names (the empty
/// string meaning "unset" maps to the default ABP deque).
#[test]
fn backend_parse_accepts_documented_names() {
    assert!(matches!(Backend::parse(""), Backend::Abp { .. }));
    assert!(matches!(Backend::parse("abp"), Backend::Abp { .. }));
    assert!(matches!(
        Backend::parse("abp-growable"),
        Backend::AbpGrowable { .. }
    ));
    assert!(matches!(Backend::parse("locking"), Backend::Locking));
    assert!(matches!(
        Backend::parse("fence-free"),
        Backend::FenceFree { .. }
    ));
}

/// An unrecognized backend name panics with the valid names, instead of
/// silently testing the wrong backend (the old behavior fell back to
/// ABP, which made a typo in CI's matrix vacuously green).
#[test]
#[should_panic(expected = "expected abp, abp-growable, locking, or fence-free")]
fn backend_parse_rejects_unknown_names() {
    let _ = Backend::parse("wavefront");
}

/// `PoolConfig::with_cross_steal` accepts exactly the unit interval —
/// a probability — and names the argument when it panics.
#[test]
fn cross_steal_accepts_the_unit_interval() {
    for p in [0.0, 0.125, 0.5, 1.0] {
        // Building the config must not panic; a tiny pool proves the
        // value also survives construction.
        let pool =
            ThreadPool::with_config(PoolConfig::default().with_num_procs(1).with_cross_steal(p));
        pool.shutdown();
    }
}

#[test]
#[should_panic(expected = "cross_steal must be a probability in [0.0, 1.0], got -0.1")]
fn cross_steal_rejects_negative() {
    let _ = PoolConfig::default().with_cross_steal(-0.1);
}

#[test]
#[should_panic(expected = "cross_steal must be a probability in [0.0, 1.0], got 1.5")]
fn cross_steal_rejects_above_one() {
    let _ = PoolConfig::default().with_cross_steal(1.5);
}

#[test]
#[should_panic(expected = "cross_steal must be a probability in [0.0, 1.0], got NaN")]
fn cross_steal_rejects_nan() {
    let _ = PoolConfig::default().with_cross_steal(f64::NAN);
}

#[test]
#[should_panic(expected = "cross_steal must be a probability in [0.0, 1.0], got inf")]
fn cross_steal_rejects_infinity() {
    let _ = PoolConfig::default().with_cross_steal(f64::INFINITY);
}
