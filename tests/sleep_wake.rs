//! Integration tests for the `hood::sleep` eventcount subsystem: the
//! missed-wakeup regression, targeted wake-one accounting, the
//! `parks == unparks` shutdown invariant, and runtime selection of the
//! legacy condvar fallback.
//!
//! Every test pins its `SleepKind` explicitly through
//! [`PoolConfig::with_sleep`], so the whole file passes unchanged under
//! both the default build and `--features sleep-condvar-fallback` (the
//! feature only moves `SleepKind::default()`, which these tests never
//! rely on).

use hood::{IdleKind, PolicySet, PoolConfig, SleepKind, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Untimed-park policy with a tiny threshold so workers reach the
/// parked state quickly instead of after 64 failed scans.
fn park_policies() -> PolicySet {
    PolicySet::paper().with_idle(IdleKind::ParkUntilWake { threshold: 4 })
}

fn pool_with(sleep: SleepKind, workers: usize) -> ThreadPool {
    ThreadPool::with_config(
        PoolConfig::default()
            .with_num_procs(workers)
            .with_policies(park_policies())
            .with_sleep(sleep),
    )
}

/// Spin until `cond` holds or the deadline passes; returns success.
fn wait_for(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    cond()
}

/// The regression the eventcount exists to close: a single submission
/// to a pool whose workers are ALL parked under an *untimed* policy
/// must still run. Under the old pool-wide lock a producer could check
/// the sleeper count before a worker finished falling asleep and skip
/// the notify; with no park timeout that job would hang forever.
#[test]
fn single_submit_to_fully_parked_pool_runs() {
    let pool = pool_with(SleepKind::Eventcount, 4);
    assert!(
        wait_for(Duration::from_secs(10), || pool.sleeping_workers() == 4),
        "workers never parked: {} of 4 asleep",
        pool.sleeping_workers()
    );

    let hits = Arc::new(AtomicU64::new(0));
    for round in 0..8u64 {
        let h = Arc::clone(&hits);
        pool.spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            wait_for(Duration::from_secs(10), || hits.load(Ordering::Relaxed)
                > round),
            "job {round} never ran against a parked pool (lost wakeup)"
        );
        // Let the woken worker drain back to a full-pool park so every
        // round re-tests the cold all-asleep path.
        assert!(wait_for(Duration::from_secs(10), || pool
            .sleeping_workers()
            == 4));
    }

    let report = pool.shutdown();
    assert_eq!(hits.load(Ordering::Relaxed), 8);
    // Untimed parks cannot time out by construction.
    assert_eq!(report.sleep.timed_out_parks, 0);
}

/// Satellite 2: one job wakes exactly one of the eight sleepers — not
/// the herd. `wakes_sent` is read before shutdown because shutdown
/// wakes every remaining sleeper (and counts those wakes too).
#[test]
fn one_job_wakes_exactly_one_of_eight() {
    let pool = pool_with(SleepKind::Eventcount, 8);
    assert!(
        wait_for(Duration::from_secs(10), || pool.sleeping_workers() == 8),
        "workers never parked: {} of 8 asleep",
        pool.sleeping_workers()
    );
    assert_eq!(pool.sleep_stats().wakes_sent, 0);

    let hits = Arc::new(AtomicU64::new(0));
    let h = Arc::clone(&hits);
    pool.spawn(move || {
        h.fetch_add(1, Ordering::Relaxed);
    });
    assert!(wait_for(Duration::from_secs(10), || {
        hits.load(Ordering::Relaxed) == 1
    }));

    let stats = pool.sleep_stats();
    assert_eq!(
        stats.wakes_sent, 1,
        "a single submission must wake exactly one worker, not the herd"
    );

    let report = pool.shutdown();
    // Shutdown wakes the remaining sleepers; the job's single wake plus
    // at most one per worker is the ceiling.
    assert!(report.sleep.wakes_sent >= 1);
    assert!(report.sleep.wakes_sent <= 1 + 8);
}

/// A batch of `k` jobs wakes `min(k, sleepers)` workers in one epoch
/// bump, never more.
#[test]
fn batch_wakes_at_most_batch_len() {
    let pool = pool_with(SleepKind::Eventcount, 8);
    assert!(wait_for(Duration::from_secs(10), || pool
        .sleeping_workers()
        == 8));

    let hits = Arc::new(AtomicU64::new(0));
    let jobs: Vec<_> = (0..3)
        .map(|_| {
            let h = Arc::clone(&hits);
            move || {
                h.fetch_add(1, Ordering::Relaxed);
            }
        })
        .collect();
    pool.spawn_batch(jobs);
    assert!(wait_for(Duration::from_secs(10), || {
        hits.load(Ordering::Relaxed) == 3
    }));

    // Exactly the batch's worth of wakes from the submission itself;
    // woken workers may push/wake nothing further for closure jobs this
    // small, but allow the re-wake slack of one per job.
    let sent = pool.sleep_stats().wakes_sent;
    assert!(
        (3..=6).contains(&sent),
        "3-job batch against 8 sleepers sent {sent} wakes"
    );
    pool.shutdown();
}

/// Satellite 3: the pool-level accounting invariants. Every committed
/// park is matched by an unpark, and (eventcount only) a worker can
/// credit at most one post-unpark work find per wake it was sent.
#[test]
fn park_accounting_balances_at_shutdown() {
    for kind in [SleepKind::Eventcount, SleepKind::CondvarFallback] {
        let pool = pool_with(kind, 4);
        let hits = Arc::new(AtomicU64::new(0));
        for _ in 0..64 {
            let h = Arc::clone(&hits);
            pool.spawn(move || {
                h.fetch_add(1, Ordering::Relaxed);
            });
            // A trickle, so workers park between submissions.
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(wait_for(Duration::from_secs(10), || {
            hits.load(Ordering::Relaxed) == 64
        }));
        let report = pool.shutdown();
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(
            report.stats.parks, report.stats.unparks,
            "{kind:?}: park/unpark accounting must balance at shutdown"
        );
        assert!(report.stats.parks_balance());
        if kind == SleepKind::Eventcount {
            assert!(
                report.sleep.wakes_sent >= report.sleep.hits_after_unpark,
                "{} wakes sent but {} post-unpark hits",
                report.sleep.wakes_sent,
                report.sleep.hits_after_unpark
            );
        }
    }
}

/// The legacy condvar backend stays runtime-selectable and correct:
/// jobs run, nothing hangs, and its bounded naps substitute for the
/// untimed park (so `timed_out_parks` may be nonzero — that is the
/// baseline behaviour ID1 measures against).
#[test]
fn condvar_fallback_still_serves_parked_pool() {
    let pool = pool_with(SleepKind::CondvarFallback, 4);
    assert_eq!(pool.sleep_kind(), SleepKind::CondvarFallback);

    // The fallback's sleepers oscillate (100 µs naps), so don't demand
    // a steady all-asleep state — just give workers time to go idle.
    std::thread::sleep(Duration::from_millis(20));

    let hits = Arc::new(AtomicU64::new(0));
    for _ in 0..16 {
        let h = Arc::clone(&hits);
        pool.spawn(move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
    }
    assert!(wait_for(Duration::from_secs(10), || {
        hits.load(Ordering::Relaxed) == 16
    }));
    let report = pool.shutdown();
    assert_eq!(report.sleep_kind, SleepKind::CondvarFallback);
    assert!(report.stats.parks_balance());
}

/// The report's backend stamp matches what the config asked for, under
/// both runtime selections.
#[test]
fn report_stamps_selected_backend() {
    for kind in [SleepKind::Eventcount, SleepKind::CondvarFallback] {
        let pool = pool_with(kind, 2);
        assert_eq!(pool.sleep_kind(), kind);
        let report = pool.shutdown();
        assert_eq!(report.sleep_kind, kind);
    }
}
