//! End-to-end integration: every workload family under every adversary
//! class, with the paper's invariants checked live and the theorem bounds
//! verified on the results.

use multiprog_ws::dag::{gen, Dag};
use multiprog_ws::kernel::{
    AdaptiveCriticalStarver, AdaptiveThiefStarver, AdaptiveWorkerStarver, BenignKernel,
    CountSource, DedicatedKernel, Kernel, ObliviousKernel, YieldPolicy,
};
use multiprog_ws::sim::{run_ws, RunReport, WsConfig};

fn workload_suite() -> Vec<(&'static str, Dag)> {
    vec![
        ("chain", gen::chain(300)),
        ("fork-join", gen::fork_join_tree(6, 2)),
        ("fib", gen::fib(12, 3)),
        ("wide", gen::wide_shallow(24, 15)),
        ("series-parallel", gen::random_series_parallel(3, 2_000)),
        ("pipeline", gen::sync_pipeline(4, 30)),
    ]
}

fn adversary_suite(p: usize, seed: u64) -> Vec<(&'static str, Box<dyn Kernel>, YieldPolicy)> {
    vec![
        (
            "dedicated",
            Box::new(DedicatedKernel::new(p)),
            YieldPolicy::None,
        ),
        (
            "benign",
            Box::new(BenignKernel::new(
                p,
                CountSource::UniformBetween(1, p),
                seed,
            )),
            YieldPolicy::None,
        ),
        (
            "oblivious-rotating",
            Box::new(ObliviousKernel::rotating(p, 2, 10, 500_000)),
            YieldPolicy::ToRandom,
        ),
        (
            "oblivious-random",
            Box::new(ObliviousKernel::precommitted_random(
                p,
                CountSource::UniformBetween(1, p),
                500_000,
                seed,
            )),
            YieldPolicy::ToRandom,
        ),
        (
            "adaptive-worker-starver",
            Box::new(AdaptiveWorkerStarver::new(
                p,
                CountSource::Constant(p / 2),
                seed,
            )),
            YieldPolicy::ToAll,
        ),
        (
            "adaptive-thief-starver",
            Box::new(AdaptiveThiefStarver::new(
                p,
                CountSource::Constant(p / 2),
                seed,
            )),
            YieldPolicy::ToAll,
        ),
        (
            "adaptive-critical-starver",
            Box::new(AdaptiveCriticalStarver::new(
                p,
                CountSource::Constant(p / 2),
                seed,
            )),
            YieldPolicy::ToAll,
        ),
    ]
}

fn assert_clean(label: &str, r: &RunReport) {
    assert!(r.completed, "{label}: did not complete ({r})");
    assert_eq!(
        r.executed, r.work,
        "{label}: executed {} of {}",
        r.executed, r.work
    );
    assert_eq!(
        r.structural_violations, 0,
        "{label}: structural lemma violated"
    );
    assert_eq!(r.potential_violations, 0, "{label}: potential increased");
    assert_eq!(
        r.milestone_violations, 0,
        "{label}: milestone guarantee violated"
    );
}

/// The big matrix: every workload × every adversary, fully checked.
#[test]
fn every_workload_under_every_adversary_is_clean() {
    let p = 6;
    for (wname, dag) in workload_suite() {
        for (kname, mut kernel, yp) in adversary_suite(p, 11) {
            let cfg = WsConfig {
                yield_policy: yp,
                check_structural: true,
                check_potential: true,
                max_rounds: 5_000_000,
                seed: 23,
                ..WsConfig::default()
            };
            let r = run_ws(&dag, p, kernel.as_mut(), cfg);
            assert_clean(&format!("{wname}/{kname}"), &r);
            // The theorem bound with a generous constant, in round units:
            // one round hands each scheduled process ≤ 3C = 48
            // instructions, so the bound constant is well under 1.
            assert!(
                r.bound_ratio() < 1.0,
                "{wname}/{kname}: bound ratio {} out of range ({r})",
                r.bound_ratio()
            );
        }
    }
}

/// The bound is *stable*: across adversaries on the same workload, the
/// worst environment costs at most a small factor over the best once
/// normalized by the bound denominator.
#[test]
fn bound_ratio_is_stable_across_adversaries() {
    let dag = gen::fib(14, 3);
    let p = 8;
    let mut ratios = Vec::new();
    for (kname, mut kernel, yp) in adversary_suite(p, 5) {
        let cfg = WsConfig {
            yield_policy: yp,
            max_rounds: 5_000_000,
            seed: 3,
            ..WsConfig::default()
        };
        let r = run_ws(&dag, p, kernel.as_mut(), cfg);
        assert!(r.completed, "{kname}");
        ratios.push(r.bound_ratio());
    }
    let max = ratios.iter().cloned().fold(0.0f64, f64::max);
    let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 8.0,
        "ratio spread {max}/{min} = {:.1}x is too wide: {ratios:?}",
        max / min
    );
}

/// Dedicated speedup: with parallelism ≫ P, time scales down ~linearly.
#[test]
fn dedicated_linear_speedup_regime() {
    let dag = gen::wide_shallow(128, 60); // parallelism ~ 100+
    let mut prev_rounds = None;
    for p in [1usize, 2, 4, 8] {
        let mut k = DedicatedKernel::new(p);
        let r = run_ws(&dag, p, &mut k, WsConfig::default());
        assert!(r.completed);
        if let Some(prev) = prev_rounds {
            let gain = prev as f64 / r.rounds as f64;
            assert!(
                gain > 1.5,
                "doubling P={p} gained only {gain:.2}x ({prev} -> {})",
                r.rounds
            );
        }
        prev_rounds = Some(r.rounds);
    }
}

/// A chain admits no speedup; the scheduler must not *lose* ground either.
#[test]
fn serial_chain_is_not_hurt_by_more_processes() {
    let dag = gen::chain(2_000);
    let mut baseline = None;
    for p in [1usize, 4, 16] {
        let mut k = DedicatedKernel::new(p);
        let r = run_ws(&dag, p, &mut k, WsConfig::default());
        assert!(r.completed);
        let base = *baseline.get_or_insert(r.rounds);
        // Thieves burn instructions but never delay the worker: rounds
        // must stay within a small factor of the P=1 run.
        assert!(
            r.rounds <= base + base / 4 + 8,
            "P={p}: {} rounds vs baseline {base}",
            r.rounds
        );
    }
}

/// Identical seeds → identical runs, across the full adversary matrix.
#[test]
fn full_matrix_determinism() {
    let dag = gen::random_series_parallel(9, 1_500);
    let p = 5;
    for (kname, _, yp) in adversary_suite(p, 77) {
        let run = |seed_k: u64| {
            let mut kernel = adversary_suite(p, seed_k)
                .into_iter()
                .find(|(n, _, _)| *n == kname)
                .unwrap()
                .1;
            let cfg = WsConfig {
                yield_policy: yp,
                max_rounds: 5_000_000,
                seed: 41,
                ..WsConfig::default()
            };
            run_ws(&dag, p, kernel.as_mut(), cfg)
        };
        let (a, b) = (run(77), run(77));
        assert_eq!(a.rounds, b.rounds, "{kname}");
        assert_eq!(a.instructions, b.instructions, "{kname}");
        assert_eq!(a.throws, b.throws, "{kname}");
    }
}

/// Starvation safety-valve: with no yields, the worker-starving adaptive
/// adversary prevents completion (this is the behaviour the yields exist
/// to rule out) — and the run report says so instead of hanging.
#[test]
fn starvation_reported_not_hung() {
    let dag = gen::fork_join_tree(5, 2);
    let p = 4;
    let mut k = AdaptiveWorkerStarver::new(p, CountSource::Constant(2), 1);
    let cfg = WsConfig {
        yield_policy: YieldPolicy::None,
        max_rounds: 50_000,
        ..WsConfig::default()
    };
    let r = run_ws(&dag, p, &mut k, cfg);
    assert!(!r.completed);
    assert_eq!(r.rounds, 50_000);
    assert!(r.executed < r.work);
}
