//! Randomized exactly-once properties of the sharded external-submission
//! injector ("front door").
//!
//! K non-worker threads submit jobs through [`ThreadPool::spawn`] and
//! [`ThreadPool::spawn_batch`] while the pool is churning on internal
//! fork-join work, so externally injected jobs contend with ordinary
//! deque traffic for the workers' attention. Every submitted job must
//! execute exactly once — no loss (a dropped segment, a pop that misses
//! a shard) and no duplication (two workers grabbing the same slot).
//! As everywhere else, randomness comes from the deterministic
//! [`DetRng`] with fixed seeds, so every failure is reproducible.
//!
//! [`ThreadPool::spawn`]: multiprog_ws::runtime::ThreadPool::spawn
//! [`ThreadPool::spawn_batch`]: multiprog_ws::runtime::ThreadPool::spawn_batch

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use multiprog_ws::dag::DetRng;
use multiprog_ws::runtime::{join, BatchKind, PolicySet, PoolConfig, ThreadPool};

/// Runs one seeded churn episode: `submitters` external threads push
/// `jobs_per_submitter` jobs each (singly or in seeded batches) into a
/// `workers`-wide pool that is simultaneously running a recursive join
/// workload. Returns after asserting every job ran exactly once.
fn exactly_once_episode(seed: u64, workers: usize, submitters: usize, jobs_per_submitter: usize) {
    let total = submitters * jobs_per_submitter;
    let pool = Arc::new(ThreadPool::with_config(
        PoolConfig::default()
            .with_num_procs(workers)
            .with_injector_shards(if seed.is_multiple_of(2) { 0 } else { 1 }),
    ));
    let counts: Arc<Vec<AtomicU8>> = Arc::new((0..total).map(|_| AtomicU8::new(0)).collect());

    // Internal churn: a worker-side fork-join computation keeps the
    // deques busy while the injector is being hammered.
    let churn_pool = Arc::clone(&pool);
    let churn = std::thread::spawn(move || {
        fn fib(n: u64) -> u64 {
            if n < 2 {
                return n;
            }
            let (a, b) = join(|| fib(n - 1), || fib(n - 2));
            a + b
        }
        churn_pool.install(|| fib(18))
    });

    let mut handles = Vec::new();
    for s in 0..submitters {
        let pool = Arc::clone(&pool);
        let counts = Arc::clone(&counts);
        handles.push(std::thread::spawn(move || {
            let mut rng = DetRng::new(seed ^ (0x51AB_0000 + s as u64));
            let mut next = s * jobs_per_submitter;
            let end = next + jobs_per_submitter;
            while next < end {
                if rng.chance(0.5) {
                    // A seeded batch through the single-shard-lock path.
                    let len = 1 + rng.below_usize((end - next).min(7));
                    let jobs: Vec<_> = (next..next + len)
                        .map(|id| {
                            let counts = Arc::clone(&counts);
                            move || {
                                counts[id].fetch_add(1, Ordering::Relaxed);
                            }
                        })
                        .collect();
                    pool.spawn_batch(jobs);
                    next += len;
                } else {
                    let id = next;
                    let counts = Arc::clone(&counts);
                    pool.spawn(move || {
                        counts[id].fetch_add(1, Ordering::Relaxed);
                    });
                    next += 1;
                }
                if rng.chance(0.25) {
                    std::thread::yield_now();
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(churn.join().unwrap(), 2584, "fib(18)");

    // Wait for the injector to drain and all jobs to run.
    while counts.iter().any(|c| c.load(Ordering::Relaxed) == 0) {
        std::thread::yield_now();
    }
    let report = Arc::try_unwrap(pool)
        .unwrap_or_else(|_| panic!("all clones joined"))
        .shutdown();

    for (id, c) in counts.iter().enumerate() {
        assert_eq!(
            c.load(Ordering::Relaxed),
            1,
            "seed {seed:#x}: job {id} ran a wrong number of times"
        );
    }
    assert!(
        report.stats.injects >= total as u64,
        "seed {seed:#x}: {} injector grabs for {total} submissions",
        report.stats.injects
    );
    assert!(
        report.stats.attempts_balance(),
        "seed {seed:#x}: identity broken: {:?}",
        report.stats
    );
}

/// Exactly-once under churn from 4 external submitters, across seeds
/// (alternating between per-worker sharding and a single shared shard).
#[test]
fn external_submissions_execute_exactly_once_under_churn() {
    for seed in 0..6u64 {
        exactly_once_episode(0xF00D_0000 + seed, 4, 4, 200);
    }
}

/// Oversubscription: more workers than cores forces real preemption (the
/// paper's multiprogrammed setting) — exactly-once must survive workers
/// being descheduled mid-poll.
#[test]
fn exactly_once_with_more_workers_than_cores() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    exactly_once_episode(0x0E5B_0001, 2 * cores + 1, 3, 150);
}

/// Shutdown drains the injector: jobs submitted and never awaited still
/// execute exactly once before `shutdown` returns.
#[test]
fn shutdown_drains_pending_submissions() {
    for seed in 0..4u64 {
        let pool = ThreadPool::new(2);
        let total = 300usize;
        let counts: Arc<Vec<AtomicU8>> = Arc::new((0..total).map(|_| AtomicU8::new(0)).collect());
        let mut rng = DetRng::new(0xD12A_0000 + seed);
        let mut next = 0usize;
        while next < total {
            let len = 1 + rng.below_usize((total - next).min(9));
            let jobs: Vec<_> = (next..next + len)
                .map(|id| {
                    let counts = Arc::clone(&counts);
                    move || {
                        counts[id].fetch_add(1, Ordering::Relaxed);
                    }
                })
                .collect();
            pool.spawn_batch(jobs);
            next += len;
        }
        // No waiting: shutdown itself must deliver the backlog.
        let report = pool.shutdown();
        for (id, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "seed {seed}: job {id}");
        }
        assert_eq!(report.stats.jobs, total as u64);
        assert!(report.stats.attempts_balance(), "{:?}", report.stats);
    }
}

/// The `pending` gauge stays sane under concurrent *batched* draining:
/// workers pull up to 8 jobs per shard lock (one `fetch_sub` of the
/// whole batch size), so a double-subtraction bug would underflow the
/// unsigned gauge and wrap it to an absurd value. Seeded submitters
/// hammer the injector while a monitor thread samples the gauge the
/// whole time; every sample must stay bounded by the jobs actually
/// submitted so far, and the gauge must read exactly zero after the
/// shutdown `pop_blocking` drain.
#[test]
fn backlog_gauge_never_underflows_under_batched_drain() {
    for seed in 0..4u64 {
        let submitters = 4usize;
        let per = 250usize;
        let total = submitters * per;
        let pool = Arc::new(ThreadPool::with_config(
            PoolConfig::default()
                .with_num_procs(4)
                .with_injector_shards(if seed.is_multiple_of(2) { 0 } else { 1 })
                .with_policies(PolicySet::default().with_batch(BatchKind::Half { cap: 8 })),
        ));
        let counts: Arc<Vec<AtomicU8>> = Arc::new((0..total).map(|_| AtomicU8::new(0)).collect());
        let submitted = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));

        // The gauge monitor: an underflow wraps `pending` past the
        // number of jobs ever submitted, which no honest backlog can do.
        let monitor = {
            let pool = Arc::clone(&pool);
            let submitted = Arc::clone(&submitted);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut samples = 0u64;
                while !stop.load(Ordering::Acquire) {
                    // Read the gauge *before* the submission counter: a
                    // job counted in the gauge is always counted in
                    // `submitted` first, so backlog <= submitted holds
                    // for any interleaving unless the gauge underflowed.
                    let backlog = pool.injector_backlog();
                    let ceiling = submitted.load(Ordering::Acquire);
                    assert!(
                        backlog as u64 <= ceiling,
                        "pending gauge underflow: backlog {backlog} with only {ceiling} submitted"
                    );
                    samples += 1;
                    std::thread::yield_now();
                }
                samples
            })
        };

        let mut handles = Vec::new();
        for s in 0..submitters {
            let pool = Arc::clone(&pool);
            let counts = Arc::clone(&counts);
            let submitted = Arc::clone(&submitted);
            handles.push(std::thread::spawn(move || {
                let mut rng = DetRng::new(seed ^ (0xBA7C_5000 + s as u64));
                let mut next = s * per;
                let end = next + per;
                while next < end {
                    let len = 1 + rng.below_usize((end - next).min(6));
                    // Count the jobs as submitted before they can appear
                    // in the gauge, keeping the monitor's bound exact.
                    submitted.fetch_add(len as u64, Ordering::Release);
                    let jobs: Vec<_> = (next..next + len)
                        .map(|id| {
                            let counts = Arc::clone(&counts);
                            move || {
                                counts[id].fetch_add(1, Ordering::Relaxed);
                            }
                        })
                        .collect();
                    pool.spawn_batch(jobs);
                    next += len;
                    if rng.chance(0.2) {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        while counts.iter().any(|c| c.load(Ordering::Relaxed) == 0) {
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Release);
        let samples = monitor.join().unwrap();
        assert!(samples > 0, "monitor never sampled the gauge");

        // After the drain the gauge must read exactly zero — not "small".
        while pool.injector_backlog() != 0 {
            std::thread::yield_now();
        }
        let pool = Arc::try_unwrap(pool).unwrap_or_else(|_| panic!("all clones joined"));
        assert_eq!(pool.injector_backlog(), 0);
        let report = pool.shutdown();
        for (id, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "seed {seed}: job {id}");
        }
        assert!(report.stats.attempts_balance(), "{:?}", report.stats);
        assert!(report.stats.batch_consistent(), "{:?}", report.stats);
    }
}

/// The backlog gauge reflects pending submissions and returns to zero.
#[test]
fn injector_backlog_gauge() {
    let pool = ThreadPool::new(2);
    assert_eq!(pool.injector_backlog(), 0);
    let ran = Arc::new(AtomicU64::new(0));
    for _ in 0..32 {
        let ran = Arc::clone(&ran);
        pool.spawn(move || {
            ran.fetch_add(1, Ordering::Relaxed);
        });
    }
    while ran.load(Ordering::Relaxed) < 32 {
        std::thread::yield_now();
    }
    while pool.injector_backlog() != 0 {
        std::thread::yield_now();
    }
    pool.shutdown();
    assert_eq!(ran.load(Ordering::Relaxed), 32);
}
