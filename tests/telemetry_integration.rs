//! End-to-end telemetry pipeline tests: a real pool run and a simulator
//! run export through the same Chrome trace-event schema, and the event
//! streams agree *exactly* with the independent scheduler counters.

use abp_telemetry::{chrome_trace, json, metrics_json, StealOutcome, TelemetryConfig};
use hood::{join, PoolConfig, ThreadPool};
use multiprog_ws::dag::gen;
use multiprog_ws::kernel::{BenignKernel, CountSource};
use multiprog_ws::sim::{run_ws, telemetry_from_trace, WsConfig};

/// A latency-bound dependency chain: each round, one side spins until the
/// other side (which must be stolen by a different worker) sets the flag.
/// Guarantees the trace contains real steal hits.
fn ping_pong(rounds: u32) {
    use std::sync::atomic::{AtomicBool, Ordering};
    for _ in 0..rounds {
        let flag = AtomicBool::new(false);
        join(
            || {
                while !flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            },
            || flag.store(true, Ordering::Release),
        );
    }
}

fn fib(n: u64) -> u64 {
    if n < 12 {
        let (mut a, mut b) = (0u64, 1u64);
        for _ in 0..n {
            let c = a + b;
            a = b;
            b = c;
        }
        return a;
    }
    let (x, y) = join(|| fib(n - 1), || fib(n - 2));
    x + y
}

/// Parses a Chrome trace export and returns, per worker `tid`, the number
/// of steal-attempt instant events with each outcome plus injector-poll
/// hits and misses (`[hits, aborts, empties, inject_hits,
/// inject_misses]`), checking the required keys on every event on the
/// way.
fn steal_counts_by_tid(trace: &str, workers: usize) -> Vec<[u64; 5]> {
    let parsed = json::parse(trace).expect("chrome trace parses");
    let events = parsed.as_array().expect("top level is an array");
    assert!(!events.is_empty());
    let mut counts = vec![[0u64; 5]; workers];
    for e in events {
        let name = e.get("name").and_then(|v| v.as_str()).expect("name");
        let ph = e.get("ph").and_then(|v| v.as_str()).expect("ph");
        // "C" covers the aggregate counter events (cache model, batch
        // steals, the injector fast path), emitted only when nonzero.
        assert!(
            matches!(ph, "M" | "B" | "E" | "i" | "C"),
            "unexpected phase {ph:?} on {name:?}"
        );
        let ts = e.get("ts").and_then(|v| v.as_f64()).expect("ts");
        assert!(ts >= 0.0);
        let pid = e.get("pid").and_then(|v| v.as_f64()).expect("pid");
        assert_eq!(pid, 0.0);
        let tid = e.get("tid").and_then(|v| v.as_f64()).expect("tid") as usize;
        assert!(tid < workers, "tid {tid} out of range");
        let slot = match name {
            "steal_hit" => 0,
            "steal_abort" => 1,
            "steal_empty" => 2,
            "inject_hit" => 3,
            "inject_empty" => 4,
            _ => continue,
        };
        assert_eq!(
            ph, "i",
            "steal attempts and injector polls are instant events"
        );
        if slot < 3 {
            let victim = e
                .get("args")
                .and_then(|a| a.get("victim"))
                .and_then(|v| v.as_f64())
                .expect("steal event carries its victim") as usize;
            assert!(victim < workers);
        }
        counts[tid][slot] += 1;
    }
    counts
}

/// A real pool run: the Chrome export parses, and per-worker steal counts
/// reconstructed from the trace events equal the pool's own counters.
#[test]
fn pool_trace_matches_pool_stats() {
    let p = 3;
    let pool = ThreadPool::with_config(PoolConfig {
        num_procs: p,
        telemetry: Some(TelemetryConfig {
            ring_capacity: 1 << 17,
        }),
        ..PoolConfig::default()
    });
    assert_eq!(pool.install(|| fib(20)), 6_765);
    pool.install(|| ping_pong(16));
    let report = pool.shutdown();
    let snap = report.telemetry.as_ref().expect("telemetry configured");
    assert_eq!(snap.total_dropped(), 0, "ring sized to keep everything");
    assert!(report.stats.steals > 0, "ping-pong forces real steals");
    assert!(report.stats.attempts_balance());

    // Trace-derived counts vs the snapshot's own accessors.
    let trace = chrome_trace(snap);
    let counts = steal_counts_by_tid(&trace, p);
    for (i, (w, st)) in snap.workers.iter().zip(&report.per_worker).enumerate() {
        let [hits, aborts, empties, inj_hits, inj_misses] = counts[i];
        assert_eq!(hits, st.steals, "worker {i} hits");
        assert_eq!(aborts, st.aborts, "worker {i} aborts");
        // Stats fold injector misses into `empties`; the trace keeps
        // them distinct as `inject_empty` instants.
        assert_eq!(empties + inj_misses, st.empties, "worker {i} empties");
        assert_eq!(inj_hits, st.injects, "worker {i} injects");
        assert_eq!(
            hits + aborts + empties + inj_hits + inj_misses,
            st.steal_attempts,
            "worker {i}"
        );
        assert_eq!(
            w.steal_attempts() + w.injector_polls(),
            st.steal_attempts,
            "worker {i}"
        );
        assert_eq!(w.injector_hits(), st.injects, "worker {i}");
        assert_eq!(w.steals_with(StealOutcome::Hit), st.steals, "worker {i}");
        assert!(st.attempts_balance(), "worker {i}");
    }
    assert_eq!(
        snap.workers
            .iter()
            .map(|w| w.steal_attempts() + w.injector_polls())
            .collect::<Vec<_>>(),
        report
            .per_worker
            .iter()
            .map(|s| s.steal_attempts)
            .collect::<Vec<_>>()
    );
    // The two installs flowed through the front door: the injector
    // section records them, and some worker's counted poll grabbed each.
    assert_eq!(snap.injector.submissions, 2);
    assert_eq!(snap.injector.hits, 2);
    assert_eq!(report.stats.injects, 2);
    assert_eq!(
        snap.injector.polls,
        report
            .per_worker
            .iter()
            .map(|s| s.steal_attempts)
            .sum::<u64>()
            - snap.workers.iter().map(|w| w.steal_attempts()).sum::<u64>()
    );
    assert!(snap.injector.shards >= 1);
    assert_eq!(snap.injector.latency.count(), 2, "one sample per grab");
    // Histograms saw every hit and every job execution.
    assert_eq!(snap.steal_latency_all().count(), report.stats.steals);
    assert!(snap.job_run_time_all().count() >= report.stats.jobs);
}

/// The flat metrics export is valid JSON and its per-worker fields agree
/// with the same counters.
#[test]
fn pool_metrics_json_matches_stats() {
    let pool = ThreadPool::with_config(PoolConfig {
        num_procs: 2,
        telemetry: Some(TelemetryConfig {
            ring_capacity: 1 << 16,
        }),
        ..PoolConfig::default()
    });
    pool.install(|| ping_pong(8));
    let report = pool.shutdown();
    let snap = report.telemetry.as_ref().unwrap();
    let parsed = json::parse(&metrics_json(snap)).expect("metrics json parses");
    let workers = parsed
        .get("workers")
        .and_then(|w| w.as_array())
        .expect("workers array");
    assert_eq!(workers.len(), 2);
    for (i, w) in workers.iter().enumerate() {
        let field = |k: &str| w.get(k).and_then(|v| v.as_f64()).expect("field") as u64;
        assert_eq!(field("worker"), i as u64);
        assert_eq!(
            field("steal_hits"),
            report.per_worker[i].steals,
            "worker {i}"
        );
        assert_eq!(
            field("steal_empties") + field("inject_polls") - field("inject_hits"),
            report.per_worker[i].empties,
            "worker {i}"
        );
        assert_eq!(
            field("inject_hits"),
            report.per_worker[i].injects,
            "worker {i}"
        );
        assert_eq!(
            field("steal_aborts"),
            report.per_worker[i].aborts,
            "worker {i}"
        );
        assert_eq!(field("parks"), report.per_worker[i].parks, "worker {i}");
    }
}

/// A simulator run adapted through [`telemetry_from_trace`] exports the
/// same schema: the Chrome trace parses with the same loader, and its
/// per-worker steal events equal the simulator's counters.
#[test]
fn sim_trace_exports_same_schema() {
    let dag = gen::fib(13, 3);
    let p = 5;
    let mut k = BenignKernel::new(p, CountSource::UniformBetween(2, 5), 9);
    let cfg = WsConfig {
        trace: true,
        seed: 41,
        ..WsConfig::default()
    };
    let r = run_ws(&dag, p, &mut k, cfg);
    assert!(r.completed);
    let snap = telemetry_from_trace(r.trace.as_ref().unwrap());
    assert_eq!(snap.workers.len(), p);
    assert_eq!(snap.total_dropped(), 0);

    let trace = chrome_trace(&snap);
    let counts = steal_counts_by_tid(&trace, p);
    let attempts: u64 = counts.iter().map(|c| c.iter().sum::<u64>()).sum();
    let hits: u64 = counts.iter().map(|c| c[0]).sum();
    assert_eq!(attempts, r.steal_attempts, "trace attempts = sim counter");
    assert_eq!(hits, r.successful_steals, "trace hits = sim counter");
    for (i, w) in snap.workers.iter().enumerate() {
        assert_eq!(
            w.steal_attempts(),
            counts[i].iter().sum::<u64>(),
            "worker {i}"
        );
    }
    // Same loader, same process metadata convention as the pool export.
    let parsed = json::parse(&trace).unwrap();
    let first = &parsed.as_array().unwrap()[0];
    assert_eq!(
        first.get("name").and_then(|v| v.as_str()),
        Some("process_name")
    );
    assert_eq!(
        first
            .get("args")
            .and_then(|a| a.get("name"))
            .and_then(|v| v.as_str()),
        Some("abp-sim")
    );
}
