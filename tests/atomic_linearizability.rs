//! History-based linearizability checking of the **real** atomic deque.
//!
//! The bounded-exhaustive model checker (`deque::model`) judges every
//! interleaving of the instruction-stepped deque; this test turns the
//! same judge (`deque::history`) on the production lock-free deque
//! (`deque::atomic`) running on real threads. Each case records a
//! timestamped invoke/response history — a global logical clock is
//! ticked immediately before each operation is invoked and immediately
//! after it returns, so recorded intervals contain the true real-time
//! intervals and every real-time overlap survives into the history —
//! and then checks the §3.2 relaxed semantics:
//!
//! * conservation (no value duplicated or materialized — the property
//!   the untagged ABA variant breaks),
//! * the Abort excuse (every `cas`-losing NIL overlaps a removal by
//!   another process),
//! * Wing–Gong linearizability of the non-Abort operations against a
//!   serial deque.
//!
//! Histories are kept small (an owner running ~8 ops against three
//! thieves running 4 `popTop`s each) so the Wing–Gong search stays
//! cheap, and the case count high (800 seeded histories — 10× the
//! original suite, re-validating the relaxed memory-ordering protocol;
//! run under `--features seqcst-fallback` it covers the blanket-SeqCst
//! profile too) so real interleavings — aborts, empty steals, races on
//! the last element — actually occur.

use std::sync::{Arc, Barrier};

use multiprog_ws::dag::DetRng;
use multiprog_ws::deque::history::{check, OpResult, ProgOp, Recorder};
use multiprog_ws::deque::{new, SimSteal, Steal};

const OWNER_OPS: usize = 8;
const THIEVES: usize = 3;
const STEALS_PER_THIEF: usize = 4;
const HISTORIES: u64 = 800;

/// Runs one seeded owner-vs-thieves episode over the real deque and
/// returns its recorded history.
fn record_history(seed: u64) -> Vec<multiprog_ws::deque::history::Invocation> {
    let (worker, stealer) = new::<u64>(64);
    let rec = Arc::new(Recorder::new());
    let barrier = Arc::new(Barrier::new(1 + THIEVES));

    let mut thieves = Vec::new();
    for t in 0..THIEVES {
        let stealer = stealer.clone();
        let rec = Arc::clone(&rec);
        let barrier = Arc::clone(&barrier);
        thieves.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..STEALS_PER_THIEF {
                let start = rec.invoked();
                let res = stealer.pop_top();
                let sim = match res {
                    Steal::Taken(v) => SimSteal::Taken(v),
                    Steal::Empty => SimSteal::Empty,
                    Steal::Abort => SimSteal::Abort,
                };
                rec.responded(1 + t, start, ProgOp::PopTop, OpResult::Stolen(sim));
            }
        }));
    }

    // Owner: a seeded mix of unique-value pushes and popBottoms. Values
    // are unique within the history, as conservation requires.
    let mut rng = DetRng::new(seed);
    let mut next_val = 1u64;
    barrier.wait();
    for _ in 0..OWNER_OPS {
        if rng.chance(0.55) {
            let v = next_val;
            next_val += 1;
            let start = rec.invoked();
            worker.push_bottom(v).expect("capacity is ample");
            rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
        } else {
            let start = rec.invoked();
            let r = worker.pop_bottom();
            rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
        }
    }
    for th in thieves {
        th.join().unwrap();
    }
    rec.history()
}

/// 800 seeded concurrent histories over the real atomic deque all
/// satisfy the relaxed semantics of §3.2.
#[test]
fn atomic_deque_histories_satisfy_relaxed_semantics() {
    let mut aborts = 0u64;
    let mut takes = 0u64;
    for seed in 0..HISTORIES {
        let history = record_history(0xAB90_0000 + seed);
        assert_eq!(
            history.len(),
            OWNER_OPS + THIEVES * STEALS_PER_THIEF,
            "seed {seed}: incomplete history"
        );
        for inv in &history {
            match inv.result {
                OpResult::Stolen(SimSteal::Abort) => aborts += 1,
                OpResult::Stolen(SimSteal::Taken(_)) => takes += 1,
                _ => {}
            }
        }
        if let Err(reason) = check(&history) {
            panic!("seed {seed}: relaxed-semantics violation: {reason}\nhistory: {history:#?}");
        }
    }
    // The episodes must actually exercise contention: across the suite
    // thieves steal real values. (Aborts are timing-dependent, so only
    // report them rather than asserting.)
    assert!(takes > 0, "no steal ever succeeded across {HISTORIES} runs");
    eprintln!("checked {HISTORIES} histories: {takes} takes, {aborts} aborts");
}

/// The checker is not vacuous on real histories: corrupting a recorded
/// history (duplicating a consumed value) makes it fail.
#[test]
fn checker_rejects_a_corrupted_real_history() {
    let mut history = record_history(0xBAD_5EED);
    // Find a consumed value and forge a second consumption of it.
    let stolen = history.iter().find_map(|inv| match inv.result {
        OpResult::Stolen(SimSteal::Taken(v)) => Some(v),
        OpResult::Popped(Some(v)) => Some(v),
        _ => None,
    });
    // Seeded episode is deterministic enough that something is consumed;
    // if not, push/pop a value sequentially to get one.
    let v = match stolen {
        Some(v) => v,
        None => {
            // Extremely unlikely, but keep the test self-contained.
            history.push(multiprog_ws::deque::history::Invocation {
                proc: 0,
                start: 1_000,
                end: 1_001,
                kind: ProgOp::Push(77),
                result: OpResult::Pushed,
            });
            history.push(multiprog_ws::deque::history::Invocation {
                proc: 0,
                start: 1_002,
                end: 1_003,
                kind: ProgOp::PopBottom,
                result: OpResult::Popped(Some(77)),
            });
            77
        }
    };
    history.push(multiprog_ws::deque::history::Invocation {
        proc: 1,
        start: 2_000,
        end: 2_001,
        kind: ProgOp::PopTop,
        result: OpResult::Stolen(SimSteal::Taken(v)),
    });
    assert!(check(&history).is_err(), "forged duplicate must be caught");
}
