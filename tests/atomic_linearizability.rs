//! History-based linearizability checking of the **real** atomic deque.
//!
//! The bounded-exhaustive model checker (`deque::model`) judges every
//! interleaving of the instruction-stepped deque; this test turns the
//! same judge (`deque::history`) on the production lock-free deque
//! (`deque::atomic`) running on real threads. Each case records a
//! timestamped invoke/response history — a global logical clock is
//! ticked immediately before each operation is invoked and immediately
//! after it returns, so recorded intervals contain the true real-time
//! intervals and every real-time overlap survives into the history —
//! and then checks the §3.2 relaxed semantics:
//!
//! * conservation (no value duplicated or materialized — the property
//!   the untagged ABA variant breaks),
//! * the Abort excuse (every `cas`-losing NIL overlaps a removal by
//!   another process),
//! * Wing–Gong linearizability of the non-Abort operations against a
//!   serial deque.
//!
//! Histories are kept small (an owner running ~8 ops against three
//! thieves running 4 `popTop`s each) so the Wing–Gong search stays
//! cheap, and the case count high (800 seeded histories — 10× the
//! original suite, re-validating the relaxed memory-ordering protocol;
//! run under `--features seqcst-fallback` it covers the blanket-SeqCst
//! profile too) so real interleavings — aborts, empty steals, races on
//! the last element — actually occur.
//!
//! The same harness then turns the *multiplicity* judge
//! (`history::check_multiplicity`) on the real fence-free deque
//! (`deque::fence_free`): guarded steals must be exactly-once
//! (`k = 1`, Duplicates excused), raw `steal_relaxed` steals must stay
//! within the structural bound `k = 1 + THIEVES`, and forged
//! over-extractions or lost values must be rejected.

use std::sync::{Arc, Barrier};

use multiprog_ws::dag::DetRng;
use multiprog_ws::deque::history::{
    check, check_multiplicity, check_multiplicity_with_batches, check_with_batches,
    BatchInvocation, Invocation, MultiplicitySpec, OpResult, ProgOp, Recorder,
};
use multiprog_ws::deque::{new, new_fence_free, SimSteal, Steal};

const OWNER_OPS: usize = 8;
const THIEVES: usize = 3;
const STEALS_PER_THIEF: usize = 4;
const HISTORIES: u64 = 800;

/// Runs one seeded owner-vs-thieves episode over the real deque and
/// returns its recorded history.
fn record_history(seed: u64) -> Vec<multiprog_ws::deque::history::Invocation> {
    let (worker, stealer) = new::<u64>(64);
    let rec = Arc::new(Recorder::new());
    let barrier = Arc::new(Barrier::new(1 + THIEVES));

    let mut thieves = Vec::new();
    for t in 0..THIEVES {
        let stealer = stealer.clone();
        let rec = Arc::clone(&rec);
        let barrier = Arc::clone(&barrier);
        thieves.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..STEALS_PER_THIEF {
                let start = rec.invoked();
                let res = stealer.pop_top();
                let sim = match res {
                    Steal::Taken(v) => SimSteal::Taken(v),
                    Steal::Empty => SimSteal::Empty,
                    Steal::Abort => SimSteal::Abort,
                    Steal::Duplicate => unreachable!("ABP deque is exact: no duplicates"),
                };
                rec.responded(1 + t, start, ProgOp::PopTop, OpResult::Stolen(sim));
            }
        }));
    }

    // Owner: a seeded mix of unique-value pushes and popBottoms. Values
    // are unique within the history, as conservation requires.
    let mut rng = DetRng::new(seed);
    let mut next_val = 1u64;
    barrier.wait();
    for _ in 0..OWNER_OPS {
        if rng.chance(0.55) {
            let v = next_val;
            next_val += 1;
            let start = rec.invoked();
            worker.push_bottom(v).expect("capacity is ample");
            rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
        } else {
            let start = rec.invoked();
            let r = worker.pop_bottom();
            rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
        }
    }
    for th in thieves {
        th.join().unwrap();
    }
    rec.history()
}

/// 800 seeded concurrent histories over the real atomic deque all
/// satisfy the relaxed semantics of §3.2.
#[test]
fn atomic_deque_histories_satisfy_relaxed_semantics() {
    let mut aborts = 0u64;
    let mut takes = 0u64;
    for seed in 0..HISTORIES {
        let history = record_history(0xAB90_0000 + seed);
        assert_eq!(
            history.len(),
            OWNER_OPS + THIEVES * STEALS_PER_THIEF,
            "seed {seed}: incomplete history"
        );
        for inv in &history {
            match inv.result {
                OpResult::Stolen(SimSteal::Abort) => aborts += 1,
                OpResult::Stolen(SimSteal::Taken(_)) => takes += 1,
                _ => {}
            }
        }
        if let Err(reason) = check(&history) {
            panic!("seed {seed}: relaxed-semantics violation: {reason}\nhistory: {history:#?}");
        }
    }
    // The episodes must actually exercise contention: across the suite
    // thieves steal real values. (Aborts are timing-dependent, so only
    // report them rather than asserting.)
    assert!(takes > 0, "no steal ever succeeded across {HISTORIES} runs");
    eprintln!("checked {HISTORIES} histories: {takes} takes, {aborts} aborts");
}

/// Runs one seeded owner-vs-thieves episode over the real *fence-free*
/// deque and returns its recorded history. Thieves use the guarded
/// `steal` (`raw = false`, exactly-once via the claim word) or the
/// unguarded `steal_relaxed` (`raw = true`, at most once per handle);
/// after the thieves finish, the owner drains to `None` so the
/// `drained` half of the multiplicity spec applies.
fn record_fence_free_history(seed: u64, raw: bool) -> Vec<Invocation> {
    let (worker, stealer) = new_fence_free::<u64>(256);
    let rec = Arc::new(Recorder::new());
    let barrier = Arc::new(Barrier::new(1 + THIEVES));

    let mut thieves = Vec::new();
    for t in 0..THIEVES {
        let mut stealer = stealer.clone();
        let rec = Arc::clone(&rec);
        let barrier = Arc::clone(&barrier);
        thieves.push(std::thread::spawn(move || {
            barrier.wait();
            for _ in 0..STEALS_PER_THIEF {
                let start = rec.invoked();
                let res = if raw {
                    stealer.steal_relaxed()
                } else {
                    stealer.steal()
                };
                let sim = match res {
                    Steal::Taken(v) => SimSteal::Taken(v),
                    Steal::Empty => SimSteal::Empty,
                    Steal::Duplicate => SimSteal::Duplicate,
                    Steal::Abort => unreachable!("fence-free popTop never aborts"),
                };
                rec.responded(1 + t, start, ProgOp::PopTop, OpResult::Stolen(sim));
            }
        }));
    }

    let mut rng = DetRng::new(seed);
    let mut next_val = 1u64;
    barrier.wait();
    for _ in 0..OWNER_OPS {
        if rng.chance(0.55) {
            let v = next_val;
            next_val += 1;
            let start = rec.invoked();
            worker.push_bottom(v).expect("capacity is ample");
            rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
        } else {
            let start = rec.invoked();
            let r = worker.pop_bottom();
            rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
        }
    }
    for th in thieves {
        th.join().unwrap();
    }
    // Quiesce: the owner pops until None, so every pushed value has been
    // extracted at least once by the time the history closes.
    loop {
        let start = rec.invoked();
        let r = worker.pop_bottom();
        let done = r.is_none();
        rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
        if done {
            break;
        }
    }
    rec.history()
}

/// Per-value extraction counts of a recorded history.
fn extraction_counts(history: &[Invocation]) -> std::collections::HashMap<u64, u32> {
    let mut counts = std::collections::HashMap::new();
    for inv in history {
        match inv.result {
            OpResult::Popped(Some(v)) | OpResult::Stolen(SimSteal::Taken(v)) => {
                *counts.entry(v).or_insert(0) += 1;
            }
            _ => {}
        }
    }
    counts
}

/// 800 seeded histories of the fence-free deque under *guarded* steals:
/// the claim word makes extraction exactly-once, so the multiplicity
/// spec degenerates to `k = 1` + drained, with losing claim races
/// surfacing as excused Duplicates rather than double extractions.
#[test]
fn fence_free_guarded_histories_are_exactly_once() {
    let spec = MultiplicitySpec {
        k: 1,
        drained: true,
    };
    let (mut takes, mut duplicates) = (0u64, 0u64);
    for seed in 0..HISTORIES {
        let history = record_fence_free_history(0xFF00_0000 + seed, false);
        for inv in &history {
            match inv.result {
                OpResult::Stolen(SimSteal::Taken(_)) => takes += 1,
                OpResult::Stolen(SimSteal::Duplicate) => duplicates += 1,
                _ => {}
            }
        }
        if let Err(reason) = check_multiplicity(&history, &spec) {
            panic!("seed {seed}: multiplicity violation: {reason}\nhistory: {history:#?}");
        }
    }
    assert!(takes > 0, "no steal ever succeeded across {HISTORIES} runs");
    eprintln!(
        "checked {HISTORIES} guarded fence-free histories: {takes} takes, {duplicates} duplicates"
    );
}

/// 800 seeded histories of the fence-free deque under *raw* steals
/// (`steal_relaxed`: no claim guard): extraction is at least once and
/// at most `1 + THIEVES` times per value — the structural bound of one
/// extraction per thief handle plus the owner, which the drain makes
/// live (the owner's walk-down ignores raw extractions, so every
/// raw-taken value is re-taken by the drain).
#[test]
fn fence_free_raw_histories_respect_the_structural_bound() {
    let spec = MultiplicitySpec {
        k: 1 + THIEVES as u32,
        drained: true,
    };
    let (mut takes, mut multi) = (0u64, 0u64);
    for seed in 0..HISTORIES {
        let history = record_fence_free_history(0xFFAA_0000 + seed, true);
        if let Err(reason) = check_multiplicity(&history, &spec) {
            panic!("seed {seed}: multiplicity violation: {reason}\nhistory: {history:#?}");
        }
        for (_, c) in extraction_counts(&history) {
            takes += c as u64;
            if c > 1 {
                multi += 1;
            }
        }
    }
    assert!(takes > 0, "no extraction across {HISTORIES} runs");
    assert!(
        multi > 0,
        "raw mode never exhibited multiplicity > 1 across {HISTORIES} runs — the relaxation is not being exercised"
    );
    eprintln!("checked {HISTORIES} raw fence-free histories: {takes} extractions, {multi} values taken more than once");
}

/// The multiplicity checker is not vacuous on real fence-free histories:
/// forging a (k+1)-th extraction of a consumed value, or erasing every
/// extraction of a pushed value from a drained history, must be caught.
#[test]
fn multiplicity_checker_rejects_corrupted_real_histories() {
    let spec = MultiplicitySpec {
        k: 1 + THIEVES as u32,
        drained: true,
    };
    let history = record_fence_free_history(0xBAD_F00D, true);
    assert!(check_multiplicity(&history, &spec).is_ok());

    // Forgery 1: take some consumed value k+1 times in total.
    let counts = extraction_counts(&history);
    let (&v, &c) = counts.iter().next().expect("drained history consumes");
    let mut over = history.clone();
    for i in 0..(spec.k + 1 - c) {
        over.push(Invocation {
            proc: 1,
            start: 10_000 + 2 * i as u64,
            end: 10_001 + 2 * i as u64,
            kind: ProgOp::PopTop,
            result: OpResult::Stolen(SimSteal::Taken(v)),
        });
    }
    assert!(
        check_multiplicity(&over, &spec).is_err(),
        "forged {}-th extraction of {v} must be caught",
        spec.k + 1
    );

    // Forgery 2: a pushed value that is never extracted in a drained
    // history (turn each of its extractions into an Empty).
    let mut lost = history.clone();
    for inv in &mut lost {
        match inv.result {
            OpResult::Popped(Some(w)) if w == v => inv.result = OpResult::Popped(None),
            OpResult::Stolen(SimSteal::Taken(w)) if w == v => {
                inv.result = OpResult::Stolen(SimSteal::Empty)
            }
            _ => {}
        }
    }
    assert!(
        check_multiplicity(&lost, &spec).is_err(),
        "value {v} pushed but never extracted must be caught in a drained history"
    );
}

/// The checker is not vacuous on real histories: corrupting a recorded
/// history (duplicating a consumed value) makes it fail.
#[test]
fn checker_rejects_a_corrupted_real_history() {
    let mut history = record_history(0xBAD_5EED);
    // Find a consumed value and forge a second consumption of it.
    let stolen = history.iter().find_map(|inv| match inv.result {
        OpResult::Stolen(SimSteal::Taken(v)) => Some(v),
        OpResult::Popped(Some(v)) => Some(v),
        _ => None,
    });
    // Seeded episode is deterministic enough that something is consumed;
    // if not, push/pop a value sequentially to get one.
    let v = match stolen {
        Some(v) => v,
        None => {
            // Extremely unlikely, but keep the test self-contained.
            history.push(multiprog_ws::deque::history::Invocation {
                proc: 0,
                start: 1_000,
                end: 1_001,
                kind: ProgOp::Push(77),
                result: OpResult::Pushed,
            });
            history.push(multiprog_ws::deque::history::Invocation {
                proc: 0,
                start: 1_002,
                end: 1_003,
                kind: ProgOp::PopBottom,
                result: OpResult::Popped(Some(77)),
            });
            77
        }
    };
    history.push(multiprog_ws::deque::history::Invocation {
        proc: 1,
        start: 2_000,
        end: 2_001,
        kind: ProgOp::PopTop,
        result: OpResult::Stolen(SimSteal::Taken(v)),
    });
    assert!(check(&history).is_err(), "forged duplicate must be caught");
}

/// Runs one seeded episode where thieves alternate single `popTop`s and
/// multi-task `pop_top_batch(3)` grabs against the real atomic deque.
/// The owner pre-loads a burst so the early batches see real backlog,
/// then churns as usual. Returns the plain history plus the batch log.
fn record_batch_history(seed: u64) -> (Vec<Invocation>, Vec<BatchInvocation>) {
    let (worker, stealer) = new::<u64>(64);
    let rec = Arc::new(Recorder::new());
    let barrier = Arc::new(Barrier::new(1 + THIEVES));

    let mut thieves = Vec::new();
    for t in 0..THIEVES {
        let stealer = stealer.clone();
        let rec = Arc::clone(&rec);
        let barrier = Arc::clone(&barrier);
        thieves.push(std::thread::spawn(move || {
            barrier.wait();
            for round in 0..STEALS_PER_THIEF {
                let start = rec.invoked();
                if round % 2 == 0 {
                    let batch = stealer.pop_top_batch(3);
                    if !batch.tasks.is_empty() {
                        rec.responded_batch(1 + t, start, batch.tasks, batch.duplicates);
                    } else {
                        // An empty batch is the ordinary Empty (or Abort)
                        // observation: record it as a plain popTop so the
                        // abort excuse applies to it.
                        let sim = if batch.aborted {
                            SimSteal::Abort
                        } else {
                            SimSteal::Empty
                        };
                        rec.responded(1 + t, start, ProgOp::PopTop, OpResult::Stolen(sim));
                    }
                } else {
                    let sim = match stealer.pop_top() {
                        Steal::Taken(v) => SimSteal::Taken(v),
                        Steal::Empty => SimSteal::Empty,
                        Steal::Abort => SimSteal::Abort,
                        Steal::Duplicate => unreachable!("ABP deque is exact"),
                    };
                    rec.responded(1 + t, start, ProgOp::PopTop, OpResult::Stolen(sim));
                }
            }
        }));
    }

    let mut rng = DetRng::new(seed);
    let mut next_val = 1u64;
    // Pre-load a burst so the first batched grabs see a deep deque.
    for _ in 0..5 {
        let v = next_val;
        next_val += 1;
        let start = rec.invoked();
        worker.push_bottom(v).expect("capacity is ample");
        rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
    }
    barrier.wait();
    for _ in 0..OWNER_OPS {
        if rng.chance(0.55) {
            let v = next_val;
            next_val += 1;
            let start = rec.invoked();
            worker.push_bottom(v).expect("capacity is ample");
            rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
        } else {
            let start = rec.invoked();
            let r = worker.pop_bottom();
            rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
        }
    }
    for th in thieves {
        th.join().unwrap();
    }
    (rec.history(), rec.batch_history())
}

/// 400 seeded batched histories over the real atomic deque all satisfy
/// the batch invariants (claim conservation, top order) on top of the
/// relaxed semantics — and multi-task grabs actually happen.
#[test]
fn atomic_deque_batched_histories_satisfy_relaxed_semantics() {
    let (mut batches, mut multi_task) = (0u64, 0u64);
    for seed in 0..HISTORIES / 2 {
        let (history, batch_log) = record_batch_history(0xBA7C_0000 + seed);
        batches += batch_log.len() as u64;
        multi_task += batch_log.iter().filter(|b| b.tasks.len() >= 2).count() as u64;
        if let Err(reason) = check_with_batches(&history, &batch_log, false) {
            panic!(
                "seed {seed}: batched violation: {reason}\nhistory: {history:#?}\nbatches: {batch_log:#?}"
            );
        }
    }
    assert!(batches > 0, "no batch ever claimed a task");
    assert!(
        multi_task > 0,
        "no batch ever claimed >= 2 tasks across {} runs — batching is not being exercised",
        HISTORIES / 2
    );
    eprintln!(
        "checked {} batched histories: {batches} non-empty batches, {multi_task} multi-task",
        HISTORIES / 2
    );
}

/// Runs one seeded *shallow* batched episode: the owner pre-loads only
/// 2–6 values and then pops aggressively (pop-biased churn), while
/// every thief grab is batched with `max` close to the backlog. This is
/// the schedule shape that maximizes the overlap between a thief's
/// claim chain and the owner's keep-path pops — the window where a
/// stale `bot` bound would let the chain re-take an owner-returned
/// index (the INV-SB-REVAL race; the deep-burst episode above almost
/// never generates it because the owner rarely drains to within the
/// claimed range mid-chain).
fn record_batch_history_shallow(seed: u64) -> (Vec<Invocation>, Vec<BatchInvocation>) {
    let (worker, stealer) = new::<u64>(64);
    let rec = Arc::new(Recorder::new());
    let barrier = Arc::new(Barrier::new(1 + THIEVES));
    let backlog = 2 + (seed % 5) as usize; // 2..=6

    let mut thieves = Vec::new();
    for t in 0..THIEVES {
        let stealer = stealer.clone();
        let rec = Arc::clone(&rec);
        let barrier = Arc::clone(&barrier);
        thieves.push(std::thread::spawn(move || {
            barrier.wait();
            for round in 0..STEALS_PER_THIEF {
                // max tracks the backlog (2..=6): want lands right at
                // the range the owner is draining into.
                let max = 2 + (backlog + round + t) % 5;
                let start = rec.invoked();
                let batch = stealer.pop_top_batch(max);
                if !batch.tasks.is_empty() {
                    rec.responded_batch(1 + t, start, batch.tasks, batch.duplicates);
                } else {
                    let sim = if batch.aborted {
                        SimSteal::Abort
                    } else {
                        SimSteal::Empty
                    };
                    rec.responded(1 + t, start, ProgOp::PopTop, OpResult::Stolen(sim));
                }
            }
        }));
    }

    let mut rng = DetRng::new(seed);
    let mut next_val = 1u64;
    for _ in 0..backlog {
        let v = next_val;
        next_val += 1;
        let start = rec.invoked();
        worker.push_bottom(v).expect("capacity is ample");
        rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
    }
    barrier.wait();
    // Pop-biased churn: the owner spends most of its ops draining
    // toward (and past) the thieves' claimed ranges via the keep path.
    for _ in 0..OWNER_OPS {
        if rng.chance(0.3) {
            let v = next_val;
            next_val += 1;
            let start = rec.invoked();
            worker.push_bottom(v).expect("capacity is ample");
            rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
        } else {
            let start = rec.invoked();
            let r = worker.pop_bottom();
            rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
        }
    }
    for th in thieves {
        th.join().unwrap();
    }
    (rec.history(), rec.batch_history())
}

/// 400 seeded shallow batched histories (backlog 2–6, pop-heavy owner,
/// batch `max` near the backlog) all satisfy the batch invariants on
/// top of the relaxed semantics. Targets the keep-path/chain overlap
/// window directly; the double take a stale-`bot` chain produces there
/// is caught as a conservation violation by `check_with_batches`.
#[test]
fn atomic_deque_shallow_batched_histories_satisfy_relaxed_semantics() {
    let (mut batches, mut multi_task) = (0u64, 0u64);
    for seed in 0..HISTORIES / 2 {
        let (history, batch_log) = record_batch_history_shallow(0x5A11_0000 + seed);
        batches += batch_log.len() as u64;
        multi_task += batch_log.iter().filter(|b| b.tasks.len() >= 2).count() as u64;
        if let Err(reason) = check_with_batches(&history, &batch_log, false) {
            panic!(
                "seed {seed}: shallow batched violation: {reason}\nhistory: {history:#?}\nbatches: {batch_log:#?}"
            );
        }
    }
    assert!(batches > 0, "no batch ever claimed a task");
    assert!(
        multi_task > 0,
        "no batch ever claimed >= 2 tasks across {} shallow runs — the overlap window is not being exercised",
        HISTORIES / 2
    );
    eprintln!(
        "checked {} shallow batched histories: {batches} non-empty batches, {multi_task} multi-task",
        HISTORIES / 2
    );
}

/// The batch judge is not vacuous on real histories: erasing one task
/// from the middle of a real multi-task batch (keeping the claimed
/// count) forges a task lost inside a claimed range, which INV-SB-1
/// must reject.
#[test]
fn batch_checker_rejects_a_forged_lost_task_in_range() {
    for seed in 0..HISTORIES / 2 {
        let (history, mut batch_log) = record_batch_history(0xDEAD_0000 + seed);
        let Some(b) = batch_log.iter_mut().find(|b| b.tasks.len() >= 2) else {
            continue;
        };
        b.tasks.remove(b.tasks.len() / 2);
        let err = check_with_batches(&history, &batch_log, false)
            .expect_err("a lost-in-range forgery must be caught");
        assert!(err.contains("INV-SB-1"), "wrong rejection: {err}");
        return;
    }
    panic!("no multi-task batch occurred to forge against");
}

/// Batched guarded steals on the real fence-free deque stay exactly
/// once: the per-slot claim words are the ground truth of the range
/// grab (INV-SB-GUARD), so the multiplicity spec degenerates to `k = 1`
/// + drained with lost claim races surfacing as excused duplicates.
#[test]
fn fence_free_batched_histories_are_exactly_once() {
    let spec = MultiplicitySpec {
        k: 1,
        drained: true,
    };
    let (mut takes, mut duplicates) = (0u64, 0u64);
    for seed in 0..HISTORIES / 2 {
        let (worker, stealer) = new_fence_free::<u64>(256);
        let rec = Arc::new(Recorder::new());
        let barrier = Arc::new(Barrier::new(1 + THIEVES));
        let mut thieves = Vec::new();
        for t in 0..THIEVES {
            let stealer = stealer.clone();
            let rec = Arc::clone(&rec);
            let barrier = Arc::clone(&barrier);
            thieves.push(std::thread::spawn(move || {
                barrier.wait();
                for _ in 0..STEALS_PER_THIEF {
                    let start = rec.invoked();
                    let batch = stealer.steal_batch(3);
                    if batch.tasks.is_empty() && batch.duplicates == 0 {
                        rec.responded(
                            1 + t,
                            start,
                            ProgOp::PopTop,
                            OpResult::Stolen(SimSteal::Empty),
                        );
                    } else {
                        rec.responded_batch(1 + t, start, batch.tasks, batch.duplicates);
                    }
                }
            }));
        }
        let mut rng = DetRng::new(0xFFBA_0000 + seed);
        let mut next_val = 1u64;
        barrier.wait();
        for _ in 0..OWNER_OPS {
            if rng.chance(0.55) {
                let v = next_val;
                next_val += 1;
                let start = rec.invoked();
                worker.push_bottom(v).expect("capacity is ample");
                rec.responded(0, start, ProgOp::Push(v), OpResult::Pushed);
            } else {
                let start = rec.invoked();
                let r = worker.pop_bottom();
                rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
            }
        }
        for th in thieves {
            th.join().unwrap();
        }
        loop {
            let start = rec.invoked();
            let r = worker.pop_bottom();
            let done = r.is_none();
            rec.responded(0, start, ProgOp::PopBottom, OpResult::Popped(r));
            if done {
                break;
            }
        }
        let (history, batch_log) = (rec.history(), rec.batch_history());
        for b in &batch_log {
            takes += b.tasks.len() as u64;
            duplicates += b.duplicates;
        }
        if let Err(reason) = check_multiplicity_with_batches(&history, &batch_log, &spec) {
            panic!(
                "seed {seed}: batched multiplicity violation: {reason}\nhistory: {history:#?}\nbatches: {batch_log:#?}"
            );
        }
    }
    assert!(takes > 0, "no batched steal ever succeeded");
    eprintln!(
        "checked {} batched fence-free histories: {takes} takes, {duplicates} duplicates",
        HISTORIES / 2
    );
}
