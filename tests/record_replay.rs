//! Cross-crate test: record an adaptive adversary's behaviour against one
//! run, replay it obliviously, and compare. Also checks that the recorded
//! processor average matches the live run's.

use multiprog_ws::dag::gen;
use multiprog_ws::kernel::{
    AdaptiveWorkerStarver, CountSource, Kernel, ObliviousKernel, RecordingKernel, Tail, YieldPolicy,
};
use multiprog_ws::sim::{run_ws, WsConfig};

#[test]
fn recorded_adaptive_replays_identically_with_same_seed() {
    let dag = gen::fib(13, 3);
    let p = 6;
    let cfg = WsConfig {
        yield_policy: YieldPolicy::ToAll,
        seed: 99,
        ..WsConfig::default()
    };

    // Live adaptive run, recorded.
    let mut rec = RecordingKernel::new(AdaptiveWorkerStarver::new(p, CountSource::Constant(3), 5));
    let live = run_ws(&dag, p, &mut rec, cfg.clone());
    assert!(live.completed);

    // Replaying the recording with the SAME scheduler seed reproduces the
    // run exactly: the adaptive kernel's choices were a deterministic
    // function of scheduler state, which is itself seed-determined.
    let mut replay = ObliviousKernel::new(rec.to_table(Tail::AllProcs));
    let replayed = run_ws(&dag, p, &mut replay, cfg.clone());
    assert!(replayed.completed);
    assert_eq!(replayed.rounds, live.rounds);
    assert_eq!(replayed.instructions, live.instructions);
    assert_eq!(replayed.throws, live.throws);
    assert!((replayed.pa - live.pa).abs() < 1e-12);
}

#[test]
fn recorded_schedule_loses_its_teeth_against_fresh_seeds() {
    // The adaptive worker-starver with NO yields starves the computation
    // forever (live). Its recorded schedule, replayed against a scheduler
    // with a *different* seed, is merely an oblivious kernel — Theorem 11
    // vs Theorem 12 in action: obliviousness plus yieldToRandom suffices.
    let dag = gen::fork_join_tree(6, 2);
    let p = 6;
    let cap = 150_000;

    let mut rec = RecordingKernel::new(AdaptiveWorkerStarver::new(p, CountSource::Constant(3), 5));
    let live = run_ws(
        &dag,
        p,
        &mut rec,
        WsConfig {
            yield_policy: YieldPolicy::None,
            seed: 1,
            max_rounds: cap,
            ..WsConfig::default()
        },
    );
    assert!(
        !live.completed,
        "worker-starver with no yields should starve the run"
    );
    assert_eq!(rec.rounds_recorded() as u64, cap);

    // Same schedule, replayed obliviously against a different seed, with
    // yieldToRandom: completes comfortably within the cap.
    let mut replay = ObliviousKernel::new(rec.to_table(Tail::AllProcs));
    let replayed = run_ws(
        &dag,
        p,
        &mut replay,
        WsConfig {
            yield_policy: YieldPolicy::ToRandom,
            seed: 2,
            max_rounds: cap,
            ..WsConfig::default()
        },
    );
    assert!(
        replayed.completed,
        "the recorded schedule should be harmless once oblivious: {replayed}"
    );
    assert!(replayed.rounds < cap / 10);
}

#[test]
fn recording_is_transparent() {
    // Wrapping a kernel in a recorder must not change scheduling results.
    let dag = gen::wide_shallow(32, 10);
    let p = 4;
    let cfg = WsConfig {
        seed: 7,
        ..WsConfig::default()
    };
    let mut plain =
        multiprog_ws::kernel::BenignKernel::new(p, CountSource::UniformBetween(1, 4), 3);
    let a = run_ws(&dag, p, &mut plain, cfg.clone());
    let mut recorded = RecordingKernel::new(multiprog_ws::kernel::BenignKernel::new(
        p,
        CountSource::UniformBetween(1, 4),
        3,
    ));
    let b = run_ws(&dag, p, &mut recorded, cfg);
    assert_eq!(a.rounds, b.rounds);
    assert_eq!(a.instructions, b.instructions);
    assert_eq!(recorded.rounds_recorded() as u64, b.rounds);
    let _ = &mut recorded as &mut dyn Kernel;
}
