//! Counters and power-of-two-bucketed histograms.
//!
//! Histograms cover the two distributions the paper's measurement section
//! cares about — steal latency and job run time — but are generic over any
//! `u64` sample. Buckets are powers of two: bucket `i` (for `i ≥ 1`)
//! counts samples in `[2^(i-1), 2^i)`, bucket 0 counts zeros. Recording is
//! one relaxed atomic increment; merging and quantile estimation happen at
//! snapshot time.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotone counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: zeros + one per possible bit position.
pub const BUCKETS: usize = 65;

/// A lock-free histogram with power-of-two buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index for a sample: 0 for 0, else `floor(log2(v)) + 1`.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: Box::new([0u64; BUCKETS].map(AtomicU64::new)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample. Two relaxed atomic adds.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// A point-in-time copy.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `buckets[0]` counts zeros; `buckets[i]` counts `[2^(i-1), 2^i)`.
    pub buckets: Vec<u64>,
    /// Sum of all recorded samples.
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: vec![0; BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Mean sample value (0 if empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`); 0 if empty. Power-of-two buckets make this an
    /// order-of-magnitude estimate, which is what it is for.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= target {
                return if i == 0 {
                    0
                } else {
                    (1u64 << i).wrapping_sub(1)
                };
            }
        }
        u64::MAX
    }

    /// Adds another snapshot into this one (for aggregating workers).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn record_and_quantiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 100, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 8);
        assert_eq!(s.sum, 1306);
        assert!((s.mean() - 1306.0 / 8.0).abs() < 1e-9);
        assert_eq!(s.quantile_upper_bound(0.0), 0);
        // Median falls in the [2,4) bucket (values 0,1,2,3 below it).
        assert_eq!(s.quantile_upper_bound(0.5), 3);
        // p99 falls in the bucket of 1000: [512, 1024).
        assert_eq!(s.quantile_upper_bound(0.99), 1023);
        assert_eq!(HistogramSnapshot::default().quantile_upper_bound(0.5), 0);
    }

    #[test]
    fn merge_adds() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        b.record(5);
        b.record(7);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.count(), 3);
        assert_eq!(sa.sum, 17);
    }
}
