//! A minimal JSON value model, parser, and string escaper.
//!
//! The workspace is dependency-free by design (the build environment has
//! no registry access), so the exporters hand-write JSON and the tests
//! verify it with this ~150-line recursive-descent parser. It accepts
//! standard JSON; it is not streaming and not tuned — it exists for
//! validation, not production parsing.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in a JSON string literal (no quotes
/// added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Parses a complete JSON document.
pub fn parse(input: &str) -> Result<Json, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf-8")?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" -12.5e1 ").unwrap(), Json::Num(-125.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
        assert_eq!(v.get("d"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\"}").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn escape_roundtrip() {
        let s = "he said \"hi\\there\"\n\tok\u{1}";
        let parsed = parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn parses_unicode_passthrough() {
        assert_eq!(parse("\"héllo→\"").unwrap().as_str(), Some("héllo→"));
    }
}
