//! The per-worker event ring: a fixed-capacity, lock-free,
//! single-producer buffer with concurrent tear-free snapshots.
//!
//! Design:
//!
//! * one worker thread is the only **producer** (enforced by the
//!   [`Producer`] handle, which can be claimed exactly once and is
//!   `!Sync`);
//! * any thread may take a **snapshot** at any time without stopping the
//!   producer;
//! * on overflow the producer overwrites the **oldest** record and
//!   increments a `dropped` counter — recording never blocks and never
//!   allocates;
//! * every slot is a tiny seqlock: a sequence word that is odd while the
//!   slot is being rewritten and carries the record's global index when
//!   even. A snapshot re-reads the sequence word after the payload and
//!   retries (bounded) on mismatch, so it can never observe half of one
//!   record spliced with half of another.
//!
//! The ring is single-producer, so no access needs `SeqCst`; the seqlock
//! uses the standard acquire/release discipline (Boehm, *Can seqlocks get
//! along with programming language memory models?*, MSPC 2012):
//!
//! * writer: odd `seq` store (Relaxed), **release fence**, payload stores
//!   (Relaxed), even `seq` store (Release), `head` store (Release);
//! * reader: `head` load (Acquire), `seq` load s1 (Acquire), payload
//!   loads (Relaxed), **acquire fence**, `seq` load s2 (Relaxed).
//!
//! If the reader's payload loads observed any store from a write in
//! progress, the release fence forces its odd `seq` store to be visible
//! to the reader's acquire fence + s2 reload, so `s1 != s2` and the read
//! retries. A matching even pair therefore brackets an untorn payload,
//! and the Acquire on s1 (pairing with the previous write's Release on
//! the even store) makes that payload's values visible. `head`'s
//! Release/Acquire pair publishes every record below it; the producer's
//! own `head`/`seq` loads are Relaxed (it is their only writer).

use crate::event::{Event, EventKind};
use std::marker::PhantomData;
use std::sync::atomic::{
    fence, AtomicBool, AtomicU64,
    Ordering::{AcqRel, Acquire, Relaxed, Release},
};
use std::sync::Arc;

/// Cache-line padding so the producer's hot counters never false-share
/// with snapshot readers or neighbouring rings.
#[repr(align(128))]
struct Padded<T>(T);

struct Slot {
    /// `2*(index+1)` once record `index` is fully written; `2*index + 1`
    /// while record `index` is being written; `0` if never written.
    seq: AtomicU64,
    ts: AtomicU64,
    kind: AtomicU64,
}

/// The ring itself. Shared between one [`Producer`] and any number of
/// snapshotting readers.
pub struct EventRing {
    mask: u64,
    slots: Box<[Slot]>,
    /// Total records ever pushed (monotone).
    head: Padded<AtomicU64>,
    /// Records overwritten before any snapshot could keep them.
    dropped: Padded<AtomicU64>,
    producer_claimed: AtomicBool,
}

// The UnsafeCell-free design (payload words are atomics) makes this
// trivially Sync; the single-producer discipline lives in `Producer`.
impl EventRing {
    /// A ring holding up to `capacity` events (rounded up to a power of
    /// two, minimum 8).
    pub fn new(capacity: usize) -> Arc<Self> {
        let cap = capacity.next_power_of_two().max(8);
        Arc::new(EventRing {
            mask: (cap - 1) as u64,
            slots: (0..cap)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    ts: AtomicU64::new(0),
                    kind: AtomicU64::new(0),
                })
                .collect(),
            head: Padded(AtomicU64::new(0)),
            dropped: Padded(AtomicU64::new(0)),
            producer_claimed: AtomicBool::new(false),
        })
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed.
    pub fn pushed(&self) -> u64 {
        // Acquire: pairs with the producer's Release store so records
        // below the returned head are fully published.
        self.head.0.load(Acquire)
    }

    /// Records lost to overflow so far.
    pub fn dropped(&self) -> u64 {
        // Monotone counter read standalone; no payload rides on it.
        self.dropped.0.load(Relaxed)
    }

    /// Claims the unique producer handle. Panics on a second claim.
    pub fn producer(self: &Arc<Self>) -> Producer {
        assert!(
            // AcqRel: the winning claim orders any (pathological) ring
            // reuse; this is a cold one-shot guard, not a hot-path access.
            !self.producer_claimed.swap(true, AcqRel),
            "EventRing::producer claimed twice"
        );
        Producer {
            ring: Arc::clone(self),
            _not_sync: PhantomData,
        }
    }

    /// A consistent copy of the currently retained events, oldest first,
    /// together with the drop counter. Never blocks the producer; events
    /// overwritten *while* the snapshot runs are simply absent from it.
    pub fn snapshot(&self) -> RingSnapshot {
        // Acquire: pairs with the producer's Release head store, so every
        // record below `head` has its even seq + payload visible.
        let head = self.head.0.load(Acquire);
        let cap = self.slots.len() as u64;
        let start = head.saturating_sub(cap);
        let mut events: Vec<(u64, Event)> = Vec::with_capacity((head - start) as usize);
        for index in start..head {
            let slot = &self.slots[(index & self.mask) as usize];
            // Bounded retry: the producer may lap us; give up on a slot
            // that keeps changing rather than spin unboundedly.
            for _ in 0..64 {
                // Acquire: pairs with the writer's Release even store, so
                // an even s1 makes that record's payload values visible.
                let s1 = slot.seq.load(Acquire);
                if s1 % 2 == 1 {
                    // Mid-write; the producer will complete it promptly.
                    std::hint::spin_loop();
                    continue;
                }
                if s1 == 0 {
                    break; // never written (cannot happen for index < head)
                }
                let got_index = s1 / 2 - 1;
                if got_index < index {
                    // Stale view of a slot the producer is about to reuse;
                    // retry to pick up the record we want.
                    std::hint::spin_loop();
                    continue;
                }
                let ts = slot.ts.load(Relaxed);
                let kind = slot.kind.load(Relaxed);
                // Acquire fence before the seq re-read: if the payload
                // loads saw any store of an in-progress write, the
                // writer's release fence makes its odd seq store visible
                // to this reload, so the tear is detected below.
                fence(Acquire);
                let s2 = slot.seq.load(Relaxed);
                if s1 != s2 {
                    continue; // torn: the producer rewrote the slot under us
                }
                if got_index > index {
                    // Already overwritten by a newer lap — record `index`
                    // is gone, but `got_index`'s payload is consistent;
                    // keep it (dedup below keeps each index once).
                    if let Some(k) = EventKind::unpack(kind) {
                        events.push((got_index, Event { ts_ns: ts, kind: k }));
                    }
                } else if let Some(k) = EventKind::unpack(kind) {
                    events.push((index, Event { ts_ns: ts, kind: k }));
                }
                break;
            }
        }
        events.sort_by_key(|&(i, _)| i);
        events.dedup_by_key(|&mut (i, _)| i);
        RingSnapshot {
            events: events.into_iter().map(|(_, e)| e).collect(),
            // Relaxed is enough: drops for records below `head` were
            // counted before the Release head store this snapshot
            // acquired, so this read cannot miss them.
            dropped: self.dropped.0.load(Relaxed),
            pushed: head,
        }
    }
}

/// The unique writing handle to an [`EventRing`]. `Send` (the owning
/// worker may move) but deliberately `!Sync`/`!Clone`: one producer.
pub struct Producer {
    ring: Arc<EventRing>,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

impl Producer {
    /// Appends an event, overwriting the oldest on overflow. Lock-free
    /// and allocation-free: four atomic stores.
    #[inline]
    pub fn record(&self, ev: Event) {
        let ring = &*self.ring;
        // Relaxed: this producer is head's only writer (coherence).
        let h = ring.head.0.load(Relaxed);
        let slot = &ring.slots[(h & ring.mask) as usize];
        if h >= ring.slots.len() as u64 {
            // Overwriting the oldest retained record. Relaxed: the count
            // is published by the Release head store below.
            ring.dropped.0.fetch_add(1, Relaxed);
        }
        // Odd marker first; the release fence keeps the payload stores
        // from becoming visible before it (the seqlock tear-detection
        // half of the module-level argument).
        slot.seq.store(2 * h + 1, Relaxed);
        fence(Release);
        slot.ts.store(ev.ts_ns, Relaxed);
        slot.kind.store(ev.kind.pack(), Relaxed);
        // Release: an even value read with Acquire publishes the payload.
        slot.seq.store(2 * (h + 1), Release);
        // Release: publishes record h (and its drop count) to snapshot().
        ring.head.0.store(h + 1, Release);
    }

    /// The ring this producer writes to.
    pub fn ring(&self) -> &Arc<EventRing> {
        &self.ring
    }
}

/// What [`EventRing::snapshot`] returns.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RingSnapshot {
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events overwritten before this snapshot (the producer-side drop
    /// counter at snapshot time).
    pub dropped: u64,
    /// Total events ever pushed at snapshot time.
    pub pushed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::StealOutcome;
    use std::sync::atomic::Ordering::SeqCst;

    fn ev(ts: u64) -> Event {
        Event {
            ts_ns: ts,
            kind: EventKind::Yield,
        }
    }

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(EventRing::new(0).capacity(), 8);
        assert_eq!(EventRing::new(9).capacity(), 16);
        assert_eq!(EventRing::new(64).capacity(), 64);
    }

    #[test]
    fn records_in_order_without_overflow() {
        let ring = EventRing::new(16);
        let p = ring.producer();
        for i in 0..10 {
            p.record(ev(i));
        }
        let s = ring.snapshot();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.pushed, 10);
        assert_eq!(s.events.len(), 10);
        for (i, e) in s.events.iter().enumerate() {
            assert_eq!(e.ts_ns, i as u64);
        }
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let ring = EventRing::new(8);
        let p = ring.producer();
        for i in 0..20 {
            p.record(ev(i));
        }
        let s = ring.snapshot();
        assert_eq!(s.pushed, 20);
        assert_eq!(s.dropped, 12, "20 pushed into 8 slots drops 12");
        assert_eq!(s.events.len(), 8);
        // The *newest* 8 events survive, still in order.
        let ts: Vec<u64> = s.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, (12..20).collect::<Vec<u64>>());
    }

    #[test]
    fn second_producer_claim_panics() {
        let ring = EventRing::new(8);
        let _p = ring.producer();
        assert!(std::panic::catch_unwind(|| ring.producer()).is_err());
    }

    #[test]
    fn snapshot_of_empty_ring() {
        let ring = EventRing::new(8);
        let s = ring.snapshot();
        assert!(s.events.is_empty());
        assert_eq!(s.dropped, 0);
    }

    #[test]
    fn payload_kinds_roundtrip_through_ring() {
        let ring = EventRing::new(8);
        let p = ring.producer();
        let kinds = [
            EventKind::Spawn,
            EventKind::StealAttempt {
                victim: 3,
                outcome: StealOutcome::Abort,
            },
            EventKind::Park,
        ];
        for (i, k) in kinds.iter().enumerate() {
            p.record(Event {
                ts_ns: i as u64,
                kind: *k,
            });
        }
        let s = ring.snapshot();
        let got: Vec<EventKind> = s.events.iter().map(|e| e.kind).collect();
        assert_eq!(got, kinds);
    }

    /// Snapshots taken while the producer hammers the ring never tear: a
    /// record's timestamp and kind always agree (we encode the same
    /// counter in both words and check the invariant).
    #[test]
    fn concurrent_snapshots_never_tear() {
        let ring = EventRing::new(64);
        let p = ring.producer();
        let stop = Arc::new(AtomicBool::new(false));
        let writer_stop = Arc::clone(&stop);
        let writer = std::thread::spawn(move || {
            let mut i: u64 = 0;
            while !writer_stop.load(SeqCst) {
                // Victim encodes (i % 2^32): ties the payload words
                // together so a splice of two records is detectable.
                p.record(Event {
                    ts_ns: i,
                    kind: EventKind::StealAttempt {
                        victim: (i % (1 << 20)) as u32,
                        outcome: StealOutcome::Empty,
                    },
                });
                i += 1;
            }
            i
        });
        let mut seen = 0u64;
        for _ in 0..200 {
            let s = ring.snapshot();
            let mut prev: Option<u64> = None;
            for e in &s.events {
                match e.kind {
                    EventKind::StealAttempt { victim, .. } => {
                        assert_eq!(
                            victim as u64,
                            e.ts_ns % (1 << 20),
                            "torn record: ts {} vs victim {}",
                            e.ts_ns,
                            victim
                        );
                    }
                    k => panic!("unexpected kind {k:?}"),
                }
                if let Some(p) = prev {
                    assert!(e.ts_ns > p, "events out of order: {} after {}", e.ts_ns, p);
                }
                prev = Some(e.ts_ns);
                seen += 1;
            }
            std::thread::yield_now();
        }
        stop.store(true, SeqCst);
        let total = writer.join().unwrap();
        assert!(seen > 0, "snapshots saw no events");
        let s = ring.snapshot();
        assert_eq!(s.pushed, total);
        assert_eq!(s.dropped, total.saturating_sub(64));
    }
}
