//! The registry ties per-worker rings and metrics together and produces
//! whole-system snapshots.

use crate::event::{Event, EventKind, StealOutcome};
use crate::metrics::{Histogram, HistogramSnapshot};
use crate::ring::{EventRing, Producer};
use std::sync::Arc;
use std::time::Instant;

/// Construction parameters for a telemetry registry.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Per-worker event-ring capacity (rounded up to a power of two).
    /// When a worker emits more events than this between snapshots, the
    /// oldest are dropped and counted.
    pub ring_capacity: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            ring_capacity: 1 << 14,
        }
    }
}

struct WorkerSlot {
    ring: Arc<EventRing>,
    steal_latency: Histogram,
    job_run_time: Histogram,
}

/// All telemetry state for one pool (or one simulated run): a ring and
/// two histograms per worker, plus the common clock epoch and one
/// pool-wide inject-to-start latency histogram (samples are recorded by
/// whichever worker grabs an external submission, so the histogram is
/// registry-level, not per-worker).
pub struct Registry {
    epoch: Instant,
    workers: Vec<WorkerSlot>,
    inject_latency: Histogram,
    unpark_to_work: Histogram,
    policy: String,
}

impl Registry {
    /// A registry for `workers` workers with no policy identity.
    pub fn new(workers: usize, config: &TelemetryConfig) -> Arc<Self> {
        Registry::with_policy(workers, config, "")
    }

    /// A registry for `workers` workers whose snapshots carry the given
    /// scheduling-policy identity label.
    pub fn with_policy(
        workers: usize,
        config: &TelemetryConfig,
        policy: impl Into<String>,
    ) -> Arc<Self> {
        Arc::new(Registry {
            epoch: Instant::now(),
            workers: (0..workers)
                .map(|_| WorkerSlot {
                    ring: EventRing::new(config.ring_capacity),
                    steal_latency: Histogram::new(),
                    job_run_time: Histogram::new(),
                })
                .collect(),
            inject_latency: Histogram::new(),
            unpark_to_work: Histogram::new(),
            policy: policy.into(),
        })
    }

    /// Number of worker slots.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Nanoseconds since the registry was created — the timestamp base
    /// for every event.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Claims worker `index`'s recording handle. Panics if claimed twice
    /// (each ring has exactly one producer).
    pub fn worker(self: &Arc<Self>, index: usize) -> WorkerTelemetry {
        WorkerTelemetry {
            producer: self.workers[index].ring.producer(),
            registry: Arc::clone(self),
            index,
            last_now: std::cell::Cell::new(0),
        }
    }

    /// Records one inject-to-start latency sample (nanoseconds from
    /// submission to a worker beginning the job). Lock-free; callable
    /// from any thread.
    #[inline]
    pub fn inject_latency_ns(&self, ns: u64) {
        self.inject_latency.record(ns);
    }

    /// Records one unpark-to-work latency sample (nanoseconds from a
    /// worker returning from a wake-caused park to it finding work).
    /// Registry-level for the same reason as the inject latency: the
    /// woken worker records it, whichever worker that is.
    #[inline]
    pub fn unpark_to_work_ns(&self, ns: u64) {
        self.unpark_to_work.record(ns);
    }

    /// Snapshots every ring and histogram. Lock-free with respect to the
    /// producers; safe to call at any time, from any thread.
    ///
    /// The injector section carries the latency histogram; the scalar
    /// injector counters (submissions, contention, ...) live with the
    /// injector itself, and the owning pool stamps them into the
    /// snapshot after calling this.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot {
            process_name: "hood".to_string(),
            workers: self
                .workers
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let s = w.ring.snapshot();
                    WorkerTrace {
                        worker: i,
                        events: s.events,
                        dropped: s.dropped,
                        pushed: s.pushed,
                        steal_latency: w.steal_latency.snapshot(),
                        job_run_time: w.job_run_time.snapshot(),
                    }
                })
                .collect(),
            counters: Vec::new(),
            injector: InjectorSnapshot {
                latency: self.inject_latency.snapshot(),
                ..InjectorSnapshot::default()
            },
            sleep: SleepSnapshot {
                unpark_to_work: self.unpark_to_work.snapshot(),
                ..SleepSnapshot::default()
            },
            policy: self.policy.clone(),
        }
    }
}

/// Per-worker recording handle held by the worker thread. `Send` but not
/// `Sync`/`Clone`: exactly one per worker.
pub struct WorkerTelemetry {
    producer: Producer,
    registry: Arc<Registry>,
    index: usize,
    /// Most recent timestamp this worker read from the clock, reused by
    /// [`WorkerTelemetry::record_coarse`] so hot-path events (e.g. a
    /// `join`'s spawn) cost a ring write but no clock read.
    last_now: std::cell::Cell<u64>,
}

impl WorkerTelemetry {
    /// This worker's index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Nanoseconds since the registry epoch. Also refreshes the coarse
    /// timestamp used by [`WorkerTelemetry::record_coarse`].
    #[inline]
    pub fn now_ns(&self) -> u64 {
        let now = self.registry.now_ns();
        self.last_now.set(now);
        now
    }

    /// Records `kind` stamped with the current time.
    #[inline]
    pub fn record(&self, kind: EventKind) {
        self.record_at(self.now_ns(), kind);
    }

    /// Records `kind` stamped with the *last* time this worker read the
    /// clock (0 before any read), skipping the clock call entirely. Meant
    /// for high-frequency instant events whose exact position inside the
    /// enclosing job does not matter — ring order still sequences them
    /// correctly relative to every other event this worker records.
    #[inline]
    pub fn record_coarse(&self, kind: EventKind) {
        self.record_at(self.last_now.get(), kind);
    }

    /// Records `kind` at an explicit timestamp (the simulator's logical
    /// clocks use this).
    #[inline]
    pub fn record_at(&self, ts_ns: u64, kind: EventKind) {
        self.producer.record(Event { ts_ns, kind });
    }

    /// Records one steal-latency sample (nanoseconds per completed
    /// `popTop`).
    #[inline]
    pub fn steal_latency_ns(&self, ns: u64) {
        self.registry.workers[self.index].steal_latency.record(ns);
    }

    /// Records one job-run-time sample.
    #[inline]
    pub fn job_run_ns(&self, ns: u64) {
        self.registry.workers[self.index].job_run_time.record(ns);
    }

    /// Records one inject-to-start latency sample on the registry-wide
    /// histogram (the worker that grabs the submission records it).
    #[inline]
    pub fn inject_latency_ns(&self, ns: u64) {
        self.registry.inject_latency_ns(ns);
    }

    /// Records one unpark-to-work latency sample on the registry-wide
    /// histogram (the woken worker records it).
    #[inline]
    pub fn unpark_to_work_ns(&self, ns: u64) {
        self.registry.unpark_to_work_ns(ns);
    }
}

/// One worker's timeline inside a [`TelemetrySnapshot`].
#[derive(Debug, Clone, Default)]
pub struct WorkerTrace {
    pub worker: usize,
    /// Retained events, oldest first.
    pub events: Vec<Event>,
    /// Events lost to ring overflow before this snapshot.
    pub dropped: u64,
    /// Events ever recorded by this worker.
    pub pushed: u64,
    pub steal_latency: HistogramSnapshot,
    pub job_run_time: HistogramSnapshot,
}

impl WorkerTrace {
    /// Completed steal attempts visible in the retained events.
    pub fn steal_attempts(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::StealAttempt { .. }))
            .count() as u64
    }

    /// Retained steal attempts with the given outcome.
    pub fn steals_with(&self, want: StealOutcome) -> u64 {
        self.events
            .iter()
            .filter(
                |e| matches!(e.kind, EventKind::StealAttempt { outcome, .. } if outcome == want),
            )
            .count() as u64
    }

    /// Injector polls visible in the retained events.
    pub fn injector_polls(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::InjectorPoll { .. }))
            .count() as u64
    }

    /// Injector polls that grabbed a job.
    pub fn injector_hits(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::InjectorPoll { hit: true }))
            .count() as u64
    }
}

/// External-submission injector metrics inside a [`TelemetrySnapshot`].
/// The latency histogram is filled by [`Registry::snapshot`]; the scalar
/// counters are stamped by the pool that owns the injector (they stay
/// zero for runs without one, e.g. the simulator).
#[derive(Debug, Clone, Default)]
pub struct InjectorSnapshot {
    /// Jobs submitted from outside the pool (`spawn` + batched items).
    pub submissions: u64,
    /// Shard try-lock failures observed by submitters and pollers.
    pub contention: u64,
    /// Injector polls by workers (hits + misses).
    pub polls: u64,
    /// Jobs grabbed by polls (a batched poll counts one poll, n hits).
    pub hits: u64,
    /// Polls resolved by the `pending == 0` fast path without touching
    /// a shard lock.
    pub empty_fast: u64,
    /// Number of shards the injector was built with.
    pub shards: u64,
    /// Inject-to-start latency (ns from submission to job start).
    pub latency: HistogramSnapshot,
}

/// Sleep/wake-subsystem metrics inside a [`TelemetrySnapshot`]. The
/// latency histogram is filled by [`Registry::snapshot`]; the scalar
/// counters are stamped by the pool that owns the sleep state (they stay
/// zero for runs without one, e.g. the simulator).
#[derive(Debug, Clone, Default)]
pub struct SleepSnapshot {
    /// Targeted wakes delivered by producers.
    pub wakes_sent: u64,
    /// Wake budget that found the sleeper stack already drained.
    pub wakes_skipped: u64,
    /// Wakes whose target found no work before re-committing to sleep.
    pub wakes_spurious: u64,
    /// Woken workers that found work on their first post-wake hunt.
    pub hits_after_unpark: u64,
    /// Timed parks that elapsed without a wake (zero under the
    /// eventcount protocol, whose parks are untimed).
    pub timed_out_parks: u64,
    /// Unpark-to-work latency (ns from a wake-caused unpark to the woken
    /// worker finding work).
    pub unpark_to_work: HistogramSnapshot,
}

/// A whole-system snapshot: every worker's events and histograms plus
/// free-form named counters. The real runtime and the simulator both
/// export through this type, so their traces are directly comparable.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySnapshot {
    /// Label used as the Chrome trace process name.
    pub process_name: String,
    pub workers: Vec<WorkerTrace>,
    /// Named scalar metrics (sorted into the metrics dump as-is).
    pub counters: Vec<(String, u64)>,
    /// External-submission injector metrics (all-zero when the run had
    /// no injector).
    pub injector: InjectorSnapshot,
    /// Sleep/wake-subsystem metrics (all-zero when the run had no sleep
    /// subsystem).
    pub sleep: SleepSnapshot,
    /// Scheduling-policy identity of the run that produced this snapshot
    /// (`"victim+backoff+idle/yield-policy"`; empty when unknown).
    pub policy: String,
}

impl TelemetrySnapshot {
    /// Total events dropped across all rings.
    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// Per-worker completed steal attempts, from the event streams.
    pub fn steal_attempts_per_worker(&self) -> Vec<u64> {
        self.workers.iter().map(|w| w.steal_attempts()).collect()
    }

    /// Steal-latency distribution aggregated over all workers.
    pub fn steal_latency_all(&self) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::default();
        for w in &self.workers {
            h.merge(&w.steal_latency);
        }
        h
    }

    /// Job-run-time distribution aggregated over all workers.
    pub fn job_run_time_all(&self) -> HistogramSnapshot {
        let mut h = HistogramSnapshot::default();
        for w in &self.workers {
            h.merge(&w.job_run_time);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_roundtrip() {
        let reg = Registry::new(2, &TelemetryConfig { ring_capacity: 64 });
        let w0 = reg.worker(0);
        let w1 = reg.worker(1);
        w0.record_at(10, EventKind::Spawn);
        w0.record_at(
            20,
            EventKind::StealAttempt {
                victim: 1,
                outcome: StealOutcome::Hit,
            },
        );
        w1.record_at(
            15,
            EventKind::StealAttempt {
                victim: 0,
                outcome: StealOutcome::Empty,
            },
        );
        w0.steal_latency_ns(100);
        w1.job_run_ns(50);
        let snap = reg.snapshot();
        assert_eq!(snap.workers.len(), 2);
        assert_eq!(snap.steal_attempts_per_worker(), vec![1, 1]);
        assert_eq!(snap.workers[0].steals_with(StealOutcome::Hit), 1);
        assert_eq!(snap.workers[1].steals_with(StealOutcome::Empty), 1);
        assert_eq!(snap.steal_latency_all().count(), 1);
        assert_eq!(snap.job_run_time_all().count(), 1);
        assert_eq!(snap.total_dropped(), 0);
    }

    #[test]
    fn policy_identity_flows_into_snapshots() {
        let reg = Registry::with_policy(1, &TelemetryConfig::default(), "uniform+yield+spin");
        assert_eq!(reg.snapshot().policy, "uniform+yield+spin");
        let plain = Registry::new(1, &TelemetryConfig::default());
        assert_eq!(plain.snapshot().policy, "");
    }

    #[test]
    fn injector_latency_and_poll_counts_roundtrip() {
        let reg = Registry::new(1, &TelemetryConfig { ring_capacity: 16 });
        let w = reg.worker(0);
        w.record_at(5, EventKind::InjectorPoll { hit: false });
        w.record_at(9, EventKind::InjectorPoll { hit: true });
        w.inject_latency_ns(2_000);
        reg.inject_latency_ns(3_000);
        let snap = reg.snapshot();
        assert_eq!(snap.workers[0].injector_polls(), 2);
        assert_eq!(snap.workers[0].injector_hits(), 1);
        assert_eq!(snap.injector.latency.count(), 2);
        // Scalar counters are the pool's to stamp; the registry leaves
        // them zero.
        assert_eq!(snap.injector.submissions, 0);
        assert_eq!(snap.injector.shards, 0);
        // Injector polls are not steal attempts.
        assert_eq!(snap.workers[0].steal_attempts(), 0);
    }

    #[test]
    fn sleep_latency_and_wake_events_roundtrip() {
        let reg = Registry::new(1, &TelemetryConfig { ring_capacity: 16 });
        let w = reg.worker(0);
        w.record_at(5, EventKind::WakeOne { target: 3 });
        w.record_at(9, EventKind::WakeSkipped);
        w.unpark_to_work_ns(1_500);
        reg.unpark_to_work_ns(2_500);
        let snap = reg.snapshot();
        assert_eq!(snap.workers[0].events.len(), 2);
        assert_eq!(
            snap.workers[0].events[0].kind,
            EventKind::WakeOne { target: 3 }
        );
        assert_eq!(snap.sleep.unpark_to_work.count(), 2);
        // Scalar counters are the pool's to stamp; the registry leaves
        // them zero.
        assert_eq!(snap.sleep.wakes_sent, 0);
        assert_eq!(snap.sleep.timed_out_parks, 0);
    }

    #[test]
    fn monotone_clock() {
        let reg = Registry::new(1, &TelemetryConfig::default());
        let a = reg.now_ns();
        let b = reg.now_ns();
        assert!(b >= a);
    }
}
