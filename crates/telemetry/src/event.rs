//! The structured event schema shared by the real runtime and the
//! simulator.
//!
//! Events are deliberately word-packable: the ring buffer stores each
//! record as two `u64` payload words (timestamp + packed kind), so a
//! record can be published with a handful of atomic stores and snapshot
//! readers can detect torn reads at word granularity.

/// Outcome of one completed `popTop` invocation against a victim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StealOutcome {
    /// The attempt returned a job.
    Hit,
    /// The victim's deque was empty.
    Empty,
    /// The attempt lost the `cas` race (the paper's abort).
    Abort,
    /// The attempt reached a task another process had already extracted
    /// (a multiplicity-relaxed backend's lost once-guard; exact backends
    /// never produce this).
    Duplicate,
}

impl StealOutcome {
    /// Stable short name used by the exporters (`steal_hit`, ...).
    pub fn name(self) -> &'static str {
        match self {
            StealOutcome::Hit => "steal_hit",
            StealOutcome::Empty => "steal_empty",
            StealOutcome::Abort => "steal_abort",
            StealOutcome::Duplicate => "steal_duplicate",
        }
    }
}

/// What happened. One scheduler action per variant, mirroring the
/// vocabulary of the paper's Figure-3 loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A job was pushed onto this worker's deque (a spawn).
    Spawn,
    /// This worker began executing a job (an assigned node).
    ExecStart,
    /// This worker finished executing a job.
    ExecEnd,
    /// This worker completed a `popTop` against `victim`.
    StealAttempt { victim: u32, outcome: StealOutcome },
    /// This worker polled the external-submission injector between
    /// steal attempts; `hit` is whether a job was grabbed.
    InjectorPoll { hit: bool },
    /// A yield between steal scans (§4.4).
    Yield,
    /// The worker parked for lack of work.
    Park,
    /// The worker woke from a park.
    Unpark,
    /// A producer delivered a targeted wake to sleeping worker `target`
    /// (recorded on the producer's timeline when the producer is a
    /// worker; external submitters record nothing).
    WakeOne { target: u32 },
    /// A producer budgeted a wake but found the sleeper stack already
    /// drained (the sleeper count it read was stale by pop time).
    WakeSkipped,
}

/// A timestamped event on one worker's timeline. Timestamps are
/// nanoseconds from the registry's epoch (the real runtime) or scaled
/// logical time (the simulator); either way they only need to be
/// comparable within one snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    pub ts_ns: u64,
    pub kind: EventKind,
}

// Packed representation: one u64.
//   bits 0..8    tag
//   bits 8..16   steal outcome (for StealAttempt)
//   bits 32..64  victim       (for StealAttempt)
const TAG_SPAWN: u64 = 1;
const TAG_EXEC_START: u64 = 2;
const TAG_EXEC_END: u64 = 3;
const TAG_STEAL: u64 = 4;
const TAG_YIELD: u64 = 5;
const TAG_PARK: u64 = 6;
const TAG_UNPARK: u64 = 7;
const TAG_INJECT: u64 = 8;
const TAG_WAKE_ONE: u64 = 9;
const TAG_WAKE_SKIPPED: u64 = 10;

impl EventKind {
    /// Packs the kind into one word for the ring buffer.
    pub(crate) fn pack(self) -> u64 {
        match self {
            EventKind::Spawn => TAG_SPAWN,
            EventKind::ExecStart => TAG_EXEC_START,
            EventKind::ExecEnd => TAG_EXEC_END,
            EventKind::StealAttempt { victim, outcome } => {
                let o = match outcome {
                    StealOutcome::Hit => 0u64,
                    StealOutcome::Empty => 1,
                    StealOutcome::Abort => 2,
                    StealOutcome::Duplicate => 3,
                };
                TAG_STEAL | (o << 8) | ((victim as u64) << 32)
            }
            EventKind::InjectorPoll { hit } => TAG_INJECT | ((hit as u64) << 8),
            EventKind::Yield => TAG_YIELD,
            EventKind::Park => TAG_PARK,
            EventKind::Unpark => TAG_UNPARK,
            EventKind::WakeOne { target } => TAG_WAKE_ONE | ((target as u64) << 32),
            EventKind::WakeSkipped => TAG_WAKE_SKIPPED,
        }
    }

    /// Unpacks a word written by [`EventKind::pack`]. Returns `None` for
    /// words that were never written (zero-initialized slots).
    pub(crate) fn unpack(w: u64) -> Option<Self> {
        Some(match w & 0xFF {
            TAG_SPAWN => EventKind::Spawn,
            TAG_EXEC_START => EventKind::ExecStart,
            TAG_EXEC_END => EventKind::ExecEnd,
            TAG_STEAL => {
                let outcome = match (w >> 8) & 0xFF {
                    0 => StealOutcome::Hit,
                    1 => StealOutcome::Empty,
                    3 => StealOutcome::Duplicate,
                    _ => StealOutcome::Abort,
                };
                EventKind::StealAttempt {
                    victim: (w >> 32) as u32,
                    outcome,
                }
            }
            TAG_INJECT => EventKind::InjectorPoll {
                hit: (w >> 8) & 1 == 1,
            },
            TAG_YIELD => EventKind::Yield,
            TAG_PARK => EventKind::Park,
            TAG_UNPARK => EventKind::Unpark,
            TAG_WAKE_ONE => EventKind::WakeOne {
                target: (w >> 32) as u32,
            },
            TAG_WAKE_SKIPPED => EventKind::WakeSkipped,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_roundtrip() {
        let kinds = [
            EventKind::Spawn,
            EventKind::ExecStart,
            EventKind::ExecEnd,
            EventKind::StealAttempt {
                victim: 0,
                outcome: StealOutcome::Hit,
            },
            EventKind::StealAttempt {
                victim: u32::MAX,
                outcome: StealOutcome::Empty,
            },
            EventKind::StealAttempt {
                victim: 7,
                outcome: StealOutcome::Abort,
            },
            EventKind::StealAttempt {
                victim: 11,
                outcome: StealOutcome::Duplicate,
            },
            EventKind::InjectorPoll { hit: true },
            EventKind::InjectorPoll { hit: false },
            EventKind::Yield,
            EventKind::Park,
            EventKind::Unpark,
            EventKind::WakeOne { target: 0 },
            EventKind::WakeOne { target: u32::MAX },
            EventKind::WakeSkipped,
        ];
        for k in kinds {
            assert_eq!(EventKind::unpack(k.pack()), Some(k), "{k:?}");
        }
        assert_eq!(EventKind::unpack(0), None);
    }

    #[test]
    fn outcome_names_are_stable() {
        assert_eq!(StealOutcome::Hit.name(), "steal_hit");
        assert_eq!(StealOutcome::Empty.name(), "steal_empty");
        assert_eq!(StealOutcome::Abort.name(), "steal_abort");
        assert_eq!(StealOutcome::Duplicate.name(), "steal_duplicate");
    }
}
