//! **abp-telemetry** — lock-free structured tracing and metrics for the
//! ABP work-stealing stack.
//!
//! The paper's empirical argument rests on *measuring* execution: steals,
//! throws, yields, and the `T₁/P_A + T∞·P/P_A` time bound. This crate is
//! the shared observability layer that makes those measurements
//! first-class for both the real [`hood`] runtime and the `abp-sim`
//! simulator:
//!
//! * [`EventRing`] — a fixed-capacity, cache-line-padded, single-producer
//!   event ring per worker. Recording is a handful of atomic stores;
//!   overflow drops the oldest events and counts them; snapshots are
//!   tear-free and never block the producer.
//! * [`Event`]/[`EventKind`] — the structured schema (`Spawn`,
//!   `ExecStart`/`ExecEnd`, `StealAttempt { victim, outcome }`, `Yield`,
//!   `Park`/`Unpark`) shared by runtime and simulator, so their traces
//!   are directly comparable.
//! * [`Counter`]/[`Histogram`] — lock-free metrics; histograms use
//!   power-of-two buckets (steal latency, job run time).
//! * [`Registry`]/[`TelemetrySnapshot`] — one registry per pool snapshots
//!   all rings and histograms at once.
//! * [`chrome_trace`] — Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`; one track per worker); [`metrics_json`] — a flat
//!   machine-readable metrics dump; [`json`] — the tiny parser the tests
//!   validate both with.
//!
//! ```
//! use abp_telemetry::{EventKind, Registry, StealOutcome, TelemetryConfig};
//!
//! let registry = Registry::new(2, &TelemetryConfig::default());
//! let worker0 = registry.worker(0);
//! worker0.record(EventKind::ExecStart);
//! worker0.record(EventKind::StealAttempt { victim: 1, outcome: StealOutcome::Empty });
//! worker0.record(EventKind::ExecEnd);
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.steal_attempts_per_worker(), vec![1, 0]);
//! let trace = abp_telemetry::chrome_trace(&snapshot); // → Perfetto
//! assert!(trace.starts_with("[\n"));
//! ```
//!
//! [`hood`]: https://docs.rs/hood

pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod registry;
pub mod ring;

pub use chrome::{chrome_trace, metrics_json};
pub use event::{Event, EventKind, StealOutcome};
pub use metrics::{Counter, Histogram, HistogramSnapshot};
pub use registry::{
    InjectorSnapshot, Registry, SleepSnapshot, TelemetryConfig, TelemetrySnapshot, WorkerTelemetry,
    WorkerTrace,
};
pub use ring::{EventRing, Producer, RingSnapshot};
