//! Chrome trace-event export.
//!
//! [`chrome_trace`] renders a [`TelemetrySnapshot`] as the JSON array
//! flavour of the Trace Event Format, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`: one track (`tid`)
//! per worker, `B`/`E` spans for job execution and parks, instant events
//! for spawns, steals, and yields.
//!
//! The output is deterministic byte-for-byte for a given snapshot: fixed
//! key order, fixed number formatting (microseconds with three decimals),
//! one event per line.

use crate::event::EventKind;
use crate::registry::TelemetrySnapshot;
use std::fmt::Write as _;

/// Formats `ns` as trace-event microseconds (`123.456`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Looks up a named counter in the snapshot (0 when absent).
fn named_counter(snap: &TelemetrySnapshot, name: &str) -> u64 {
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: &str,
    ts_ns: u64,
    tid: usize,
    extra: &str,
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"{ph}\",\"ts\":{},\"pid\":0,\"tid\":{tid}{extra}}}",
        us(ts_ns)
    );
}

/// Renders the snapshot as a Chrome trace-event JSON array.
pub fn chrome_trace(snap: &TelemetrySnapshot) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    let pname = if snap.process_name.is_empty() {
        "abp"
    } else {
        &snap.process_name
    };
    push_event(
        &mut out,
        &mut first,
        "process_name",
        "M",
        0,
        0,
        &format!(",\"args\":{{\"name\":\"{}\"}}", crate::json::escape(pname)),
    );
    if !snap.policy.is_empty() {
        push_event(
            &mut out,
            &mut first,
            "policy",
            "M",
            0,
            0,
            &format!(
                ",\"args\":{{\"name\":\"{}\"}}",
                crate::json::escape(&snap.policy)
            ),
        );
    }
    for w in &snap.workers {
        push_event(
            &mut out,
            &mut first,
            "thread_name",
            "M",
            0,
            w.worker,
            &format!(",\"args\":{{\"name\":\"worker-{}\"}}", w.worker),
        );
    }
    for w in &snap.workers {
        for e in &w.events {
            match e.kind {
                EventKind::Spawn => push_event(
                    &mut out,
                    &mut first,
                    "spawn",
                    "i",
                    e.ts_ns,
                    w.worker,
                    ",\"s\":\"t\"",
                ),
                EventKind::ExecStart => {
                    push_event(&mut out, &mut first, "job", "B", e.ts_ns, w.worker, "")
                }
                EventKind::ExecEnd => {
                    push_event(&mut out, &mut first, "job", "E", e.ts_ns, w.worker, "")
                }
                EventKind::StealAttempt { victim, outcome } => push_event(
                    &mut out,
                    &mut first,
                    outcome.name(),
                    "i",
                    e.ts_ns,
                    w.worker,
                    &format!(",\"s\":\"t\",\"args\":{{\"victim\":{victim}}}"),
                ),
                EventKind::InjectorPoll { hit } => push_event(
                    &mut out,
                    &mut first,
                    if hit { "inject_hit" } else { "inject_empty" },
                    "i",
                    e.ts_ns,
                    w.worker,
                    ",\"s\":\"t\"",
                ),
                EventKind::Yield => push_event(
                    &mut out,
                    &mut first,
                    "yield",
                    "i",
                    e.ts_ns,
                    w.worker,
                    ",\"s\":\"t\"",
                ),
                EventKind::Park => {
                    push_event(&mut out, &mut first, "park", "B", e.ts_ns, w.worker, "")
                }
                EventKind::Unpark => {
                    push_event(&mut out, &mut first, "park", "E", e.ts_ns, w.worker, "")
                }
                EventKind::WakeOne { target } => push_event(
                    &mut out,
                    &mut first,
                    "wake",
                    "i",
                    e.ts_ns,
                    w.worker,
                    &format!(",\"s\":\"t\",\"args\":{{\"target\":{target}}}"),
                ),
                EventKind::WakeSkipped => push_event(
                    &mut out,
                    &mut first,
                    "wake_skipped",
                    "i",
                    e.ts_ns,
                    w.worker,
                    ",\"s\":\"t\"",
                ),
            }
        }
    }
    // Data-parallel split decisions ride in the snapshot's named
    // counters; render them as one counter-sample event so par-heavy
    // traces show the split/sequential balance. Gated on being nonzero:
    // runs that never touch the par layer (every pinned golden) produce
    // byte-identical output to before the counters existed.
    let par_splits = named_counter(snap, "par_splits");
    let par_seq = named_counter(snap, "par_seq_fallbacks");
    if par_splits > 0 || par_seq > 0 {
        push_event(
            &mut out,
            &mut first,
            "par_split_decisions",
            "C",
            0,
            0,
            &format!(",\"args\":{{\"splits\":{par_splits},\"seq\":{par_seq}}}"),
        );
    }
    // Cache-model counters (simulator LRU model) ride the same gated
    // path: a run without the model performs zero accesses and produces
    // byte-identical output, preserving every pinned golden.
    let cache_accesses = named_counter(snap, "cache_accesses");
    if cache_accesses > 0 {
        let hits = named_counter(snap, "cache_hits");
        let misses = named_counter(snap, "cache_misses");
        let deviations = named_counter(snap, "cache_deviations");
        push_event(
            &mut out,
            &mut first,
            "cache_model",
            "C",
            0,
            0,
            &format!(
                ",\"args\":{{\"hits\":{hits},\"misses\":{misses},\"deviations\":{deviations}}}"
            ),
        );
    }
    // Batched-steal counters ride the same gated path: under the
    // single-steal default no batch ever forms (structural zero), so
    // every pinned golden stays byte-identical.
    let batch_steals = named_counter(snap, "batch_steals");
    if batch_steals > 0 {
        let batched_tasks = named_counter(snap, "batched_tasks");
        push_event(
            &mut out,
            &mut first,
            "steal_batches",
            "C",
            0,
            0,
            &format!(",\"args\":{{\"batches\":{batch_steals},\"tasks\":{batched_tasks}}}"),
        );
    }
    // Injector fast-path counter, gated for the same reason: pinned
    // goldens predate the counter and must not grow an event.
    if snap.injector.empty_fast > 0 {
        push_event(
            &mut out,
            &mut first,
            "injector_fast_path",
            "C",
            0,
            0,
            &format!(",\"args\":{{\"empty_fast\":{}}}", snap.injector.empty_fast),
        );
    }
    out.push_str("\n]\n");
    out
}

/// Renders the flat metrics dump: per-worker scalar counts derived from
/// the event streams, histogram summaries, and the snapshot's named
/// counters. Deterministic for a given snapshot.
pub fn metrics_json(snap: &TelemetrySnapshot) -> String {
    let mut out = String::from("{\n");
    let _ = write!(
        out,
        "\"process\":\"{}\",\n\"policy\":\"{}\",\n\"workers\":[\n",
        crate::json::escape(&snap.process_name),
        crate::json::escape(&snap.policy)
    );
    for (i, w) in snap.workers.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let mut spawns = 0u64;
        let mut execs = 0u64;
        let mut yields = 0u64;
        let mut parks = 0u64;
        let mut unparks = 0u64;
        let (mut hits, mut empties, mut aborts, mut duplicates) = (0u64, 0u64, 0u64, 0u64);
        let (mut inj_polls, mut inj_hits) = (0u64, 0u64);
        let (mut wakes, mut wake_skips) = (0u64, 0u64);
        for e in &w.events {
            match e.kind {
                EventKind::Spawn => spawns += 1,
                EventKind::ExecStart => execs += 1,
                EventKind::ExecEnd => {}
                EventKind::StealAttempt { outcome, .. } => match outcome {
                    crate::StealOutcome::Hit => hits += 1,
                    crate::StealOutcome::Empty => empties += 1,
                    crate::StealOutcome::Abort => aborts += 1,
                    crate::StealOutcome::Duplicate => duplicates += 1,
                },
                EventKind::InjectorPoll { hit } => {
                    inj_polls += 1;
                    inj_hits += hit as u64;
                }
                EventKind::Yield => yields += 1,
                EventKind::Park => parks += 1,
                EventKind::Unpark => unparks += 1,
                EventKind::WakeOne { .. } => wakes += 1,
                EventKind::WakeSkipped => wake_skips += 1,
            }
        }
        let sl = &w.steal_latency;
        let jr = &w.job_run_time;
        // Gated on being nonzero: exact backends never produce
        // duplicates, so every pinned golden metrics dump stays
        // byte-identical to before the counter existed.
        let dup_field = if duplicates > 0 {
            format!(",\"steal_duplicates\":{duplicates}")
        } else {
            String::new()
        };
        let _ = write!(
            out,
            "{{\"worker\":{},\"events\":{},\"dropped\":{},\"spawns\":{},\"execs\":{},\
             \"steal_hits\":{},\"steal_empties\":{},\"steal_aborts\":{}{},\
             \"inject_polls\":{},\"inject_hits\":{},\"yields\":{},\"parks\":{},\
             \"unparks\":{},\"wakes\":{},\"wake_skips\":{},\
             \"steal_latency\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p99_ns\":{}}},\
             \"job_run_time\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p99_ns\":{}}}}}",
            w.worker,
            w.pushed,
            w.dropped,
            spawns,
            execs,
            hits,
            empties,
            aborts,
            dup_field,
            inj_polls,
            inj_hits,
            yields,
            parks,
            unparks,
            wakes,
            wake_skips,
            sl.count(),
            sl.mean(),
            sl.quantile_upper_bound(0.5),
            sl.quantile_upper_bound(0.99),
            jr.count(),
            jr.mean(),
            jr.quantile_upper_bound(0.5),
            jr.quantile_upper_bound(0.99),
        );
    }
    let inj = &snap.injector;
    let lat = &inj.latency;
    // Gated on nonzero like the per-worker duplicates field: golden
    // dumps recorded before the fast-path counter existed stay
    // byte-identical.
    let fast_field = if inj.empty_fast > 0 {
        format!(",\"empty_fast\":{}", inj.empty_fast)
    } else {
        String::new()
    };
    let _ = write!(
        out,
        "\n],\n\"injector\":{{\"shards\":{},\"submissions\":{},\"contention\":{},\
         \"polls\":{},\"hits\":{}{},\
         \"latency\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p99_ns\":{}}}}},\n",
        inj.shards,
        inj.submissions,
        inj.contention,
        inj.polls,
        inj.hits,
        fast_field,
        lat.count(),
        lat.mean(),
        lat.quantile_upper_bound(0.5),
        lat.quantile_upper_bound(0.99),
    );
    let sl = &snap.sleep;
    let uw = &sl.unpark_to_work;
    let _ = writeln!(
        out,
        "\"sleep\":{{\"wakes_sent\":{},\"wakes_skipped\":{},\"wakes_spurious\":{},\
         \"hits_after_unpark\":{},\"timed_out_parks\":{},\
         \"unpark_to_work\":{{\"count\":{},\"mean_ns\":{:.1},\"p50_ns\":{},\"p99_ns\":{}}}}},",
        sl.wakes_sent,
        sl.wakes_skipped,
        sl.wakes_spurious,
        sl.hits_after_unpark,
        sl.timed_out_parks,
        uw.count(),
        uw.mean(),
        uw.quantile_upper_bound(0.5),
        uw.quantile_upper_bound(0.99),
    );
    out.push_str("\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", crate::json::escape(name), v);
    }
    out.push_str("}\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, StealOutcome};
    use crate::registry::WorkerTrace;

    fn tiny_snapshot() -> TelemetrySnapshot {
        let mut w0 = WorkerTrace {
            worker: 0,
            ..WorkerTrace::default()
        };
        w0.events = vec![
            Event {
                ts_ns: 1_000,
                kind: EventKind::Spawn,
            },
            Event {
                ts_ns: 2_500,
                kind: EventKind::ExecStart,
            },
            Event {
                ts_ns: 7_750,
                kind: EventKind::ExecEnd,
            },
        ];
        w0.pushed = 3;
        let mut w1 = WorkerTrace {
            worker: 1,
            ..WorkerTrace::default()
        };
        w1.events = vec![
            Event {
                ts_ns: 1_200,
                kind: EventKind::Yield,
            },
            Event {
                ts_ns: 3_000,
                kind: EventKind::StealAttempt {
                    victim: 0,
                    outcome: StealOutcome::Hit,
                },
            },
            Event {
                ts_ns: 9_000,
                kind: EventKind::Park,
            },
            Event {
                ts_ns: 9_400,
                kind: EventKind::Unpark,
            },
        ];
        w1.pushed = 4;
        TelemetrySnapshot {
            process_name: "golden".to_string(),
            workers: vec![w0, w1],
            counters: vec![("rounds".to_string(), 7)],
            injector: Default::default(),
            sleep: Default::default(),
            policy: String::new(),
        }
    }

    /// The exporter is byte-stable: any change to the format is a
    /// deliberate golden update.
    #[test]
    fn golden_chrome_trace() {
        let expect = "[\n\
{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"golden\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":0,\"tid\":0,\"args\":{\"name\":\"worker-0\"}},\n\
{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0.000,\"pid\":0,\"tid\":1,\"args\":{\"name\":\"worker-1\"}},\n\
{\"name\":\"spawn\",\"ph\":\"i\",\"ts\":1.000,\"pid\":0,\"tid\":0,\"s\":\"t\"},\n\
{\"name\":\"job\",\"ph\":\"B\",\"ts\":2.500,\"pid\":0,\"tid\":0},\n\
{\"name\":\"job\",\"ph\":\"E\",\"ts\":7.750,\"pid\":0,\"tid\":0},\n\
{\"name\":\"yield\",\"ph\":\"i\",\"ts\":1.200,\"pid\":0,\"tid\":1,\"s\":\"t\"},\n\
{\"name\":\"steal_hit\",\"ph\":\"i\",\"ts\":3.000,\"pid\":0,\"tid\":1,\"s\":\"t\",\"args\":{\"victim\":0}},\n\
{\"name\":\"park\",\"ph\":\"B\",\"ts\":9.000,\"pid\":0,\"tid\":1},\n\
{\"name\":\"park\",\"ph\":\"E\",\"ts\":9.400,\"pid\":0,\"tid\":1}\n\
]\n";
        assert_eq!(chrome_trace(&tiny_snapshot()), expect);
    }

    #[test]
    fn chrome_trace_parses_and_has_required_keys() {
        let json = chrome_trace(&tiny_snapshot());
        let v = crate::json::parse(&json).expect("valid JSON");
        let arr = v.as_array().expect("array");
        assert_eq!(arr.len(), 10);
        for obj in arr {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(obj.get(key).is_some(), "missing {key} in {obj:?}");
            }
        }
    }

    #[test]
    fn metrics_json_parses() {
        let json = metrics_json(&tiny_snapshot());
        let v = crate::json::parse(&json).expect("valid JSON");
        let workers = v.get("workers").unwrap().as_array().unwrap();
        assert_eq!(workers.len(), 2);
        assert_eq!(workers[1].get("steal_hits").unwrap().as_f64().unwrap(), 1.0);
        assert_eq!(
            v.get("counters").unwrap().get("rounds").unwrap().as_f64(),
            Some(7.0)
        );
        assert_eq!(v.get("policy").unwrap().as_str(), Some(""));
    }

    /// The duplicates counter is invisible until a Duplicate outcome
    /// actually occurs (golden byte-stability for exact backends), then
    /// surfaces in both exporters under the stable names.
    #[test]
    fn duplicate_outcomes_are_gated_on_nonzero() {
        let base = metrics_json(&tiny_snapshot());
        assert!(!base.contains("steal_duplicates"));
        let mut snap = tiny_snapshot();
        snap.workers[1].events.push(Event {
            ts_ns: 9_800,
            kind: EventKind::StealAttempt {
                victim: 0,
                outcome: StealOutcome::Duplicate,
            },
        });
        let json = metrics_json(&snap);
        let v = crate::json::parse(&json).expect("valid JSON");
        let workers = v.get("workers").unwrap().as_array().unwrap();
        assert_eq!(
            workers[1]
                .get("steal_duplicates")
                .unwrap()
                .as_f64()
                .unwrap(),
            1.0
        );
        assert!(chrome_trace(&snap).contains("\"name\":\"steal_duplicate\""));
    }

    #[test]
    fn injector_metrics_flow_through_both_exporters() {
        let mut snap = tiny_snapshot();
        snap.workers[1].events.push(Event {
            ts_ns: 9_500,
            kind: EventKind::InjectorPoll { hit: true },
        });
        snap.workers[1].events.push(Event {
            ts_ns: 9_600,
            kind: EventKind::InjectorPoll { hit: false },
        });
        snap.injector.shards = 4;
        snap.injector.submissions = 12;
        snap.injector.contention = 1;
        snap.injector.polls = 2;
        snap.injector.hits = 1;
        let trace = chrome_trace(&snap);
        assert!(trace.contains("\"name\":\"inject_hit\""));
        assert!(trace.contains("\"name\":\"inject_empty\""));
        assert!(crate::json::parse(&trace).is_ok());
        let metrics = metrics_json(&snap);
        let v = crate::json::parse(&metrics).expect("valid JSON");
        let inj = v.get("injector").expect("injector section");
        assert_eq!(inj.get("shards").unwrap().as_f64(), Some(4.0));
        assert_eq!(inj.get("submissions").unwrap().as_f64(), Some(12.0));
        assert_eq!(inj.get("hits").unwrap().as_f64(), Some(1.0));
        let w1 = &v.get("workers").unwrap().as_array().unwrap()[1];
        assert_eq!(w1.get("inject_polls").unwrap().as_f64(), Some(2.0));
        assert_eq!(w1.get("inject_hits").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn sleep_metrics_flow_through_both_exporters() {
        let mut snap = tiny_snapshot();
        snap.workers[0].events.push(Event {
            ts_ns: 9_800,
            kind: EventKind::WakeOne { target: 1 },
        });
        snap.workers[0].events.push(Event {
            ts_ns: 9_900,
            kind: EventKind::WakeSkipped,
        });
        snap.sleep.wakes_sent = 5;
        snap.sleep.wakes_skipped = 1;
        snap.sleep.wakes_spurious = 2;
        snap.sleep.hits_after_unpark = 3;
        snap.sleep.timed_out_parks = 0;
        let trace = chrome_trace(&snap);
        assert!(trace.contains("\"name\":\"wake\""));
        assert!(trace.contains("\"args\":{\"target\":1}"));
        assert!(trace.contains("\"name\":\"wake_skipped\""));
        assert!(crate::json::parse(&trace).is_ok());
        let metrics = metrics_json(&snap);
        let v = crate::json::parse(&metrics).expect("valid JSON");
        let sleep = v.get("sleep").expect("sleep section");
        assert_eq!(sleep.get("wakes_sent").unwrap().as_f64(), Some(5.0));
        assert_eq!(sleep.get("wakes_spurious").unwrap().as_f64(), Some(2.0));
        assert_eq!(sleep.get("hits_after_unpark").unwrap().as_f64(), Some(3.0));
        assert_eq!(sleep.get("timed_out_parks").unwrap().as_f64(), Some(0.0));
        let w0 = &v.get("workers").unwrap().as_array().unwrap()[0];
        assert_eq!(w0.get("wakes").unwrap().as_f64(), Some(1.0));
        assert_eq!(w0.get("wake_skips").unwrap().as_f64(), Some(1.0));
        let w1 = &v.get("workers").unwrap().as_array().unwrap()[1];
        assert_eq!(w1.get("parks").unwrap().as_f64(), Some(1.0));
        assert_eq!(w1.get("unparks").unwrap().as_f64(), Some(1.0));
    }

    #[test]
    fn par_counters_flow_through_both_exporters() {
        let mut snap = tiny_snapshot();
        snap.counters.push(("par_splits".to_string(), 9));
        snap.counters.push(("par_seq_fallbacks".to_string(), 4));
        let trace = chrome_trace(&snap);
        assert!(trace.contains("\"name\":\"par_split_decisions\""));
        assert!(trace.contains("\"args\":{\"splits\":9,\"seq\":4}"));
        assert!(crate::json::parse(&trace).is_ok());
        let metrics = metrics_json(&snap);
        let v = crate::json::parse(&metrics).expect("valid JSON");
        let counters = v.get("counters").expect("counters section");
        assert_eq!(counters.get("par_splits").unwrap().as_f64(), Some(9.0));
        assert_eq!(
            counters.get("par_seq_fallbacks").unwrap().as_f64(),
            Some(4.0)
        );
        // Zero par activity leaves the trace byte-identical (goldens).
        let zeroed = {
            let mut s = tiny_snapshot();
            s.counters.push(("par_splits".to_string(), 0));
            s.counters.push(("par_seq_fallbacks".to_string(), 0));
            s
        };
        assert_eq!(chrome_trace(&zeroed), chrome_trace(&tiny_snapshot()));
    }

    #[test]
    fn cache_counters_flow_through_both_exporters() {
        let mut snap = tiny_snapshot();
        snap.counters.push(("cache_accesses".to_string(), 200));
        snap.counters.push(("cache_hits".to_string(), 150));
        snap.counters.push(("cache_misses".to_string(), 50));
        snap.counters.push(("cache_deviations".to_string(), 3));
        let trace = chrome_trace(&snap);
        assert!(trace.contains("\"name\":\"cache_model\""));
        assert!(trace.contains("\"args\":{\"hits\":150,\"misses\":50,\"deviations\":3}"));
        assert!(crate::json::parse(&trace).is_ok());
        let metrics = metrics_json(&snap);
        let v = crate::json::parse(&metrics).expect("valid JSON");
        let counters = v.get("counters").expect("counters section");
        assert_eq!(counters.get("cache_hits").unwrap().as_f64(), Some(150.0));
        assert_eq!(counters.get("cache_misses").unwrap().as_f64(), Some(50.0));
        assert_eq!(
            counters.get("cache_deviations").unwrap().as_f64(),
            Some(3.0)
        );
        // A model that never ran leaves the trace byte-identical.
        let zeroed = {
            let mut s = tiny_snapshot();
            s.counters.push(("cache_accesses".to_string(), 0));
            s.counters.push(("cache_hits".to_string(), 0));
            s.counters.push(("cache_misses".to_string(), 0));
            s
        };
        assert_eq!(chrome_trace(&zeroed), chrome_trace(&tiny_snapshot()));
    }

    #[test]
    fn empty_fast_is_gated_on_nonzero() {
        // Zero fast-path polls: both exporters byte-identical to before
        // the counter existed.
        let base_metrics = metrics_json(&tiny_snapshot());
        assert!(!base_metrics.contains("empty_fast"));
        assert!(!chrome_trace(&tiny_snapshot()).contains("injector_fast_path"));
        let mut snap = tiny_snapshot();
        snap.injector.empty_fast = 17;
        let metrics = metrics_json(&snap);
        let v = crate::json::parse(&metrics).expect("valid JSON");
        let inj = v.get("injector").expect("injector section");
        assert_eq!(inj.get("empty_fast").unwrap().as_f64(), Some(17.0));
        let trace = chrome_trace(&snap);
        assert!(trace.contains("\"name\":\"injector_fast_path\""));
        assert!(trace.contains("\"args\":{\"empty_fast\":17}"));
        assert!(crate::json::parse(&trace).is_ok());
    }

    #[test]
    fn batch_counters_flow_through_both_exporters() {
        let mut snap = tiny_snapshot();
        snap.counters.push(("batch_steals".to_string(), 6));
        snap.counters.push(("batched_tasks".to_string(), 19));
        let trace = chrome_trace(&snap);
        assert!(trace.contains("\"name\":\"steal_batches\""));
        assert!(trace.contains("\"args\":{\"batches\":6,\"tasks\":19}"));
        assert!(crate::json::parse(&trace).is_ok());
        let metrics = metrics_json(&snap);
        let v = crate::json::parse(&metrics).expect("valid JSON");
        let counters = v.get("counters").expect("counters section");
        assert_eq!(counters.get("batch_steals").unwrap().as_f64(), Some(6.0));
        assert_eq!(counters.get("batched_tasks").unwrap().as_f64(), Some(19.0));
        // The structural zero under single-steal policies leaves the
        // trace byte-identical (goldens).
        let zeroed = {
            let mut s = tiny_snapshot();
            s.counters.push(("batch_steals".to_string(), 0));
            s.counters.push(("batched_tasks".to_string(), 0));
            s
        };
        assert_eq!(chrome_trace(&zeroed), chrome_trace(&tiny_snapshot()));
    }

    #[test]
    fn policy_identity_exported_when_present() {
        let mut snap = tiny_snapshot();
        snap.policy = "uniform+yield+spin/to-all".to_string();
        let trace = chrome_trace(&snap);
        let v = crate::json::parse(&trace).expect("valid JSON");
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 11, "one extra policy metadata event");
        let policy_event = arr
            .iter()
            .find(|o| o.get("name").and_then(|n| n.as_str()) == Some("policy"))
            .expect("policy metadata event");
        assert_eq!(
            policy_event
                .get("args")
                .unwrap()
                .get("name")
                .unwrap()
                .as_str(),
            Some("uniform+yield+spin/to-all")
        );
        let metrics = metrics_json(&snap);
        let m = crate::json::parse(&metrics).unwrap();
        assert_eq!(
            m.get("policy").unwrap().as_str(),
            Some("uniform+yield+spin/to-all")
        );
    }
}
