//! Policy-swap regression: the paper-default policy path must produce
//! metrics identical to the pre-policy-layer simulator on a fixed DAG
//! corpus, and swapping any policy axis must still complete the same
//! computations.
//!
//! The golden numbers below were captured from the simulator *before*
//! victim selection, backoff, and idle handling moved behind the
//! `abp-core` traits. Byte-identical randomness is the contract: the
//! default `UniformVictim` draws exactly one `below_usize(p - 1)` per
//! scan from the same forked per-process stream the inlined code used,
//! so every field — not just aggregates — must match.

use abp_dag::{gen, Dag};
use abp_kernel::{BenignKernel, CountSource, DedicatedKernel, Kernel, YieldPolicy};
use abp_sim::{run_ws, BackoffKind, IdleKind, PolicySet, RunReport, VictimKind, WsConfig};

struct Golden {
    name: &'static str,
    rounds: u64,
    proc_rounds: u64,
    instructions: u64,
    wall_steps: u64,
    executed: u64,
    steal_attempts: u64,
    successful_steals: u64,
    throws: u64,
    yields: u64,
}

type KernelFactory = Box<dyn FnMut() -> Box<dyn Kernel>>;

/// The fixed corpus: (dag, p, config, kernel factory) spanning both
/// kernels, all three yield policies, and varied DAG shapes.
fn corpus() -> Vec<(Dag, usize, WsConfig, KernelFactory)> {
    vec![
        (
            gen::fork_join_tree(8, 2),
            4,
            WsConfig::default().with_seed(11),
            Box::new(|| Box::new(DedicatedKernel::new(4)) as Box<dyn Kernel>),
        ),
        (
            gen::fib(14, 3),
            8,
            WsConfig::default().with_seed(7),
            Box::new(|| Box::new(DedicatedKernel::new(8)) as Box<dyn Kernel>),
        ),
        (
            gen::wide_shallow(64, 25),
            6,
            WsConfig::default().with_seed(3),
            Box::new(|| {
                Box::new(BenignKernel::new(6, CountSource::UniformBetween(2, 6), 99))
                    as Box<dyn Kernel>
            }),
        ),
        (
            gen::sync_pipeline(6, 80),
            4,
            WsConfig::default()
                .with_seed(23)
                .with_yield_policy(YieldPolicy::None),
            Box::new(|| {
                Box::new(BenignKernel::new(4, CountSource::Constant(2), 5)) as Box<dyn Kernel>
            }),
        ),
        (
            gen::random_series_parallel(41, 8000),
            8,
            WsConfig::default()
                .with_seed(13)
                .with_yield_policy(YieldPolicy::ToRandom),
            Box::new(|| Box::new(DedicatedKernel::new(8)) as Box<dyn Kernel>),
        ),
    ]
}

/// Captured from the pre-refactor simulator (same corpus, same seeds).
fn goldens() -> Vec<Golden> {
    [
        (
            "fork-join(8,2)/dedicated",
            (34, 136, 5518, 1550, 3575, 21, 5, 3, 23),
        ),
        (
            "fib(14,3)/dedicated",
            (14, 112, 4231, 647, 2002, 103, 23, 15, 108),
        ),
        (
            "wide(64,25)/benign",
            (21, 72, 2859, 929, 1915, 88, 19, 12, 90),
        ),
        (
            "pipeline(6,80)/benign-none",
            (34, 68, 2733, 1467, 490, 543, 25, 44, 0),
        ),
        (
            "series-par(41)/dedicated-torandom",
            (149, 1192, 47583, 6940, 8003, 7847, 26, 984, 7853),
        ),
    ]
    .into_iter()
    .map(|(name, g)| Golden {
        name,
        rounds: g.0,
        proc_rounds: g.1,
        instructions: g.2,
        wall_steps: g.3,
        executed: g.4,
        steal_attempts: g.5,
        successful_steals: g.6,
        throws: g.7,
        yields: g.8,
    })
    .collect()
}

fn check_identity(r: &RunReport, name: &str) {
    assert!(
        r.steal_accounting_balanced(),
        "{name}: attempts {} != steals {} + aborts {} + empties {}",
        r.steal_attempts,
        r.successful_steals,
        r.steal_aborts,
        r.steal_empties
    );
}

#[test]
fn paper_default_matches_pre_refactor_goldens() {
    for ((dag, p, cfg, mut mk_kernel), g) in corpus().into_iter().zip(goldens()) {
        assert_eq!(cfg.policies, PolicySet::paper());
        let r = run_ws(&dag, p, mk_kernel().as_mut(), cfg);
        assert!(r.completed, "{}: did not complete", g.name);
        check_identity(&r, g.name);
        assert_eq!(r.rounds, g.rounds, "{}: rounds drifted", g.name);
        assert_eq!(r.proc_rounds, g.proc_rounds, "{}: proc_rounds", g.name);
        assert_eq!(r.instructions, g.instructions, "{}: instructions", g.name);
        assert_eq!(r.wall_steps, g.wall_steps, "{}: wall_steps", g.name);
        assert_eq!(r.executed, g.executed, "{}: executed", g.name);
        assert_eq!(r.steal_attempts, g.steal_attempts, "{}: attempts", g.name);
        assert_eq!(
            r.successful_steals, g.successful_steals,
            "{}: steals",
            g.name
        );
        assert_eq!(r.throws, g.throws, "{}: throws", g.name);
        assert_eq!(r.yields, g.yields, "{}: yields", g.name);
    }
}

#[test]
fn swapped_policies_complete_the_same_corpus() {
    let swaps = [
        PolicySet::paper().with_victim(VictimKind::RoundRobin),
        PolicySet::paper().with_victim(VictimKind::LastVictim),
        PolicySet::paper().with_backoff(BackoffKind::None),
        PolicySet::paper().with_backoff(BackoffKind::ExpJitter { base: 2, cap: 64 }),
        PolicySet::paper().with_backoff(BackoffKind::SpinThenYield {
            spin: 4,
            threshold: 2,
        }),
        PolicySet::paper().with_idle(IdleKind::ParkAfter {
            threshold: 8,
            park_len: 32,
        }),
    ];
    for set in swaps {
        for (dag, p, cfg, mut mk_kernel) in corpus() {
            let r = run_ws(&dag, p, mk_kernel().as_mut(), cfg.with_policies(set));
            assert!(r.completed, "{}: did not complete", set.label());
            assert_eq!(r.executed, dag.work(), "{}: lost nodes", set.label());
            check_identity(&r, &set.label());
            assert_eq!(
                r.structural_violations,
                0,
                "{}: structural lemma broke",
                set.label()
            );
        }
    }
}

#[test]
fn non_default_victim_changes_the_execution() {
    // Sanity that the policy axis is actually live: round-robin victims
    // must diverge from uniform somewhere on the corpus.
    let mut any_diff = false;
    for (dag, p, cfg, mut mk_kernel) in corpus() {
        let base = run_ws(&dag, p, mk_kernel().as_mut(), cfg.clone());
        let rr = run_ws(
            &dag,
            p,
            mk_kernel().as_mut(),
            cfg.with_policies(PolicySet::paper().with_victim(VictimKind::RoundRobin)),
        );
        if base.instructions != rr.instructions || base.steal_attempts != rr.steal_attempts {
            any_diff = true;
        }
    }
    assert!(any_diff, "round-robin behaved identically to uniform");
}

#[test]
fn same_seed_same_policy_identical_victim_sequence() {
    // Determinism at the finest grain: not just aggregate counters but
    // the full (round, thief, victim, outcome) sequence must repeat.
    let dag = gen::fib(13, 3);
    for set in [
        PolicySet::paper(),
        PolicySet::paper().with_victim(VictimKind::RoundRobin),
        PolicySet::paper().with_victim(VictimKind::LastVictim),
        PolicySet::paper().with_backoff(BackoffKind::ExpJitter { base: 2, cap: 32 }),
    ] {
        let run = || {
            let mut k = BenignKernel::new(6, CountSource::UniformBetween(2, 6), 17);
            run_ws(
                &dag,
                6,
                &mut k,
                WsConfig::default()
                    .with_seed(0xD15C)
                    .with_trace(true)
                    .with_policies(set),
            )
        };
        let (a, b) = (run(), run());
        let (ta, tb) = (a.trace.as_ref().unwrap(), b.trace.as_ref().unwrap());
        assert_eq!(
            ta.steals.len(),
            tb.steals.len(),
            "{}: attempt counts differ",
            set.label()
        );
        for (x, y) in ta.steals.iter().zip(&tb.steals) {
            assert_eq!(
                (x.round, x.thief, x.victim, x.outcome),
                (y.round, y.thief, y.victim, y.outcome),
                "{}: steal sequence diverged",
                set.label()
            );
        }
    }
}

#[test]
fn policy_identity_is_stamped_on_reports() {
    let dag = gen::fork_join_tree(5, 2);
    let mut k = DedicatedKernel::new(4);
    let r = run_ws(&dag, 4, &mut k, WsConfig::default());
    assert_eq!(r.policy, "uniform+yield+spin/to-all");
    let mut k = DedicatedKernel::new(4);
    let r = run_ws(
        &dag,
        4,
        &mut k,
        WsConfig::default()
            .with_yield_policy(YieldPolicy::ToRandom)
            .with_policies(PolicySet::paper().with_victim(VictimKind::LastVictim)),
    );
    assert_eq!(r.policy, "last-victim+yield+spin/to-random");
}
