//! Measurements collected from a simulated execution.

use std::fmt;

/// Everything measured over one run of the simulated work stealer.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Number of kernel rounds until the final node executed.
    pub rounds: u64,
    /// Σ pᵢ — total process-rounds granted by the kernel.
    pub proc_rounds: u64,
    /// Total instructions actually executed across all processes.
    pub instructions: u64,
    /// Wall-clock steps: Σ over rounds of the longest quantum granted in
    /// that round (scheduled processes run in parallel within a round).
    pub wall_steps: u64,
    /// The processor average `P_A = proc_rounds / rounds` (Equation 1,
    /// in round units).
    pub pa: f64,
    /// The computation's work `T₁`.
    pub work: u64,
    /// The computation's critical-path length `T∞`.
    pub critical_path: u64,
    /// The process count `P`.
    pub procs: usize,
    /// Nodes executed (equals `work` on a completed run).
    pub executed: u64,
    /// `popTop` invocations completed.
    pub steal_attempts: u64,
    /// Steal attempts that returned a node.
    pub successful_steals: u64,
    /// Steal attempts that lost a `cas` race (§3.2's ABORT).
    pub steal_aborts: u64,
    /// Steal attempts that found the victim's deque empty.
    pub steal_empties: u64,
    /// Pool count `K` of the topology the run used (1 = flat).
    pub pools: usize,
    /// Successful steals whose victim lived in a different pool than the
    /// thief. A sub-count of `successful_steals`, *outside* the
    /// accounting identity (`steals = local + remote`); structurally
    /// zero on a flat (`pools == 1`) run.
    pub remote_steals: u64,
    /// Completed steal attempts (hit or miss) whose victim lived in a
    /// different pool — the scan-policy property itself, independent of
    /// where the workload happens to put the work. Sub-count of
    /// `steal_attempts`; structurally zero on a flat run.
    pub remote_attempts: u64,
    /// Multi-task steal episodes: cross-pool round trips that claimed
    /// ≥ 2 tasks at once. Outside the accounting identity (each claimed
    /// task is still its own attempt and hit); structurally zero under
    /// the single-steal default batch policy.
    pub batch_steals: u64,
    /// Tasks moved by those episodes, the first kept task included.
    /// Outside the identity; structurally zero under single-steal.
    pub batched_tasks: u64,
    /// Steal attempts that were *throws*: completed at their process's
    /// second milestone in a round (§4.1).
    pub throws: u64,
    /// yield calls performed.
    pub yields: u64,
    /// Identity of the scheduling-policy configuration that produced this
    /// run, `"victim+backoff+idle/yield-policy"` (e.g. the paper default
    /// is `"uniform+yield+spin/to-all"`).
    pub policy: String,
    /// True if the computation ran to completion (vs. hitting the round
    /// cap).
    pub completed: bool,
    /// Structural-lemma violations observed (must be 0).
    pub structural_violations: u64,
    /// Potential-function increases observed (must be 0).
    pub potential_violations: u64,
    /// Scheduled process-rounds that achieved fewer than two milestones
    /// (must be 0 when quanta are ≥ 2C).
    pub milestone_violations: u64,
    /// Potential-function phase statistics (Lemma 8), if tracked.
    pub phases: Option<PhaseStats>,
    /// Cache-model counters, if the LRU model was enabled.
    pub cache: Option<crate::cache::CacheStats>,
    /// Full per-round activity trace, if requested.
    pub trace: Option<crate::trace::Trace>,
}

impl RunReport {
    /// The denominator of the paper's bound: `T₁/P_A + T∞·P/P_A`, in
    /// node-execution units.
    pub fn bound_denominator(&self) -> f64 {
        let pa = self.pa.max(f64::MIN_POSITIVE);
        self.work as f64 / pa + self.critical_path as f64 * self.procs as f64 / pa
    }

    /// Execution time (in rounds) divided by the bound denominator — the
    /// empirical "hidden constant" of the `O(T₁/P_A + T∞·P/P_A)` bound, in
    /// rounds per node-step. Comparable across runs of the same simulator
    /// configuration.
    pub fn bound_ratio(&self) -> f64 {
        self.rounds as f64 / self.bound_denominator()
    }

    /// `T₁ / (P_A · T)` in round units: how close the execution came to
    /// perfect linear speedup over the processors actually received. The
    /// maximum achievable value is `1/q` where `q` is the per-round
    /// quantum, since each node costs one instruction of a quantum.
    pub fn utilization(&self) -> f64 {
        self.work as f64 / (self.pa.max(f64::MIN_POSITIVE) * self.rounds as f64)
    }

    /// Fraction of completed steal attempts that succeeded.
    pub fn steal_success_rate(&self) -> f64 {
        if self.steal_attempts == 0 {
            return 0.0;
        }
        self.successful_steals as f64 / self.steal_attempts as f64
    }

    /// The shared accounting identity:
    /// `attempts == steals + aborts + empties`.
    pub fn steal_accounting_balanced(&self) -> bool {
        self.steal_attempts == self.successful_steals + self.steal_aborts + self.steal_empties
    }

    /// Fraction of successful steals that crossed a pool boundary
    /// (0.0 when no steals landed — and structurally on a flat run).
    pub fn remote_steal_fraction(&self) -> f64 {
        if self.successful_steals == 0 {
            return 0.0;
        }
        self.remote_steals as f64 / self.successful_steals as f64
    }

    /// Fraction of completed attempts that targeted another pool.
    pub fn remote_attempt_fraction(&self) -> f64 {
        if self.steal_attempts == 0 {
            return 0.0;
        }
        self.remote_attempts as f64 / self.steal_attempts as f64
    }

    /// The locality split invariant: remote counters are sub-counts of
    /// their totals (and of each other — a remote hit is a remote
    /// attempt), and a flat run records none at all.
    pub fn locality_consistent(&self) -> bool {
        self.remote_steals <= self.remote_attempts
            && self.remote_attempts <= self.steal_attempts
            && (self.pools > 1 || self.remote_attempts == 0)
    }

    /// The batch split invariant: every batched task is a counted
    /// successful steal, and every batch moved at least two tasks.
    pub fn batch_consistent(&self) -> bool {
        self.batched_tasks <= self.successful_steals && self.batched_tasks >= 2 * self.batch_steals
    }

    /// Remote attempts per migrated (remote-stolen) task. Every batched
    /// extra counts as its own attempt *and* hit (the identity is
    /// per-task), so this ratio understates the amortization — see
    /// [`remote_trips_per_migrated_task`](RunReport::remote_trips_per_migrated_task)
    /// for the round-trip view. `f64::INFINITY` when attempts were made
    /// but nothing migrated; 0.0 when no remote attempts happened.
    pub fn remote_attempts_per_migrated_task(&self) -> f64 {
        if self.remote_attempts == 0 {
            return 0.0;
        }
        self.remote_attempts as f64 / self.remote_steals as f64
    }

    /// Cross-pool synchronization round trips per migrated task — the
    /// overhead batching amortizes, and the SB1 gate metric. A batched
    /// grab is **one** trip no matter how many tasks it moves, so the
    /// free riders (`batched_tasks - batch_steals`, the tasks beyond
    /// each batch's first) are subtracted from the per-task attempt
    /// count to recover the trip count. `f64::INFINITY` when trips were
    /// paid but nothing migrated; 0.0 when no remote attempts happened.
    pub fn remote_trips_per_migrated_task(&self) -> f64 {
        if self.remote_attempts == 0 {
            return 0.0;
        }
        let trips = self
            .remote_attempts
            .saturating_sub(self.batched_tasks - self.batch_steals);
        if self.remote_steals == 0 {
            return f64::INFINITY;
        }
        trips as f64 / self.remote_steals as f64
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "rounds {} | P {} | P_A {:.2} | T1 {} | Tinf {} | throws {} | steals {}/{} | ratio {:.3}{}",
            self.rounds,
            self.procs,
            self.pa,
            self.work,
            self.critical_path,
            self.throws,
            self.successful_steals,
            self.steal_attempts,
            self.bound_ratio(),
            if self.completed { "" } else { " [INCOMPLETE]" }
        )
    }
}

/// Lemma-8 phase statistics: execution divided into phases of ≥ P throws;
/// a phase "succeeds" if the potential drops by at least a 1/4 fraction.
#[derive(Debug, Clone, Default)]
pub struct PhaseStats {
    /// Phases observed.
    pub phases: u64,
    /// Phases in which `Φ_end ≤ (3/4)·Φ_start`.
    pub successful: u64,
}

impl PhaseStats {
    /// Empirical success probability (Lemma 8 proves > 1/4).
    pub fn success_rate(&self) -> f64 {
        if self.phases == 0 {
            return 0.0;
        }
        self.successful as f64 / self.phases as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunReport {
        RunReport {
            rounds: 100,
            proc_rounds: 400,
            instructions: 12_000,
            wall_steps: 3_200,
            pa: 4.0,
            work: 1_000,
            critical_path: 50,
            procs: 8,
            executed: 1_000,
            steal_attempts: 60,
            successful_steals: 30,
            steal_aborts: 10,
            steal_empties: 20,
            pools: 1,
            remote_steals: 0,
            remote_attempts: 0,
            batch_steals: 0,
            batched_tasks: 0,
            throws: 55,
            yields: 60,
            policy: "uniform+yield+spin/to-all".to_string(),
            completed: true,
            structural_violations: 0,
            potential_violations: 0,
            milestone_violations: 0,
            phases: None,
            cache: None,
            trace: None,
        }
    }

    #[test]
    fn bound_math() {
        let r = dummy();
        // T1/PA + Tinf*P/PA = 250 + 100 = 350.
        assert!((r.bound_denominator() - 350.0).abs() < 1e-9);
        assert!((r.bound_ratio() - 100.0 / 350.0).abs() < 1e-9);
        assert!((r.utilization() - 1000.0 / 400.0).abs() < 1e-9);
        assert!((r.steal_success_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn phase_stats_rate() {
        let p = PhaseStats {
            phases: 8,
            successful: 6,
        };
        assert!((p.success_rate() - 0.75).abs() < 1e-9);
        assert_eq!(PhaseStats::default().success_rate(), 0.0);
    }

    #[test]
    fn zero_steals_rate() {
        let mut r = dummy();
        r.steal_attempts = 0;
        assert_eq!(r.steal_success_rate(), 0.0);
    }

    #[test]
    fn steal_accounting_identity() {
        let mut r = dummy();
        assert!(r.steal_accounting_balanced());
        r.steal_aborts += 1;
        assert!(!r.steal_accounting_balanced());
    }

    #[test]
    fn locality_split_rides_outside_the_identity() {
        let mut r = dummy();
        assert!(r.locality_consistent());
        assert_eq!(r.remote_steal_fraction(), 0.0);
        // A flat run may not record remote steals at all.
        r.remote_steals = 1;
        assert!(!r.locality_consistent());
        // On a topology, remote is a sub-count of successful steals —
        // splitting it off leaves the identity untouched.
        r.pools = 4;
        r.remote_steals = 6;
        r.remote_attempts = 12;
        assert!(r.locality_consistent());
        assert!(
            r.steal_accounting_balanced(),
            "split leaves identity untouched"
        );
        assert!((r.remote_steal_fraction() - 0.2).abs() < 1e-9);
        assert!((r.remote_attempt_fraction() - 0.2).abs() < 1e-9);
        r.remote_steals = r.remote_attempts + 1;
        assert!(!r.locality_consistent(), "a remote hit is a remote attempt");
    }

    #[test]
    fn batch_split_rides_outside_the_identity() {
        let mut r = dummy();
        assert!(r.batch_consistent(), "zeros are consistent");
        // A 3-task and a 2-task episode: 5 batched tasks over 2 batches,
        // all sub-counts of the 30 successful steals — the identity
        // never learns about them.
        r.pools = 4;
        r.batch_steals = 2;
        r.batched_tasks = 5;
        assert!(r.batch_consistent());
        assert!(r.steal_accounting_balanced());
        // A "batch" of one task is not a batch.
        r.batched_tasks = 3;
        assert!(!r.batch_consistent());
        // More batched tasks than successful steals is inconsistent.
        r.batch_steals = 2;
        r.batched_tasks = r.successful_steals + 1;
        assert!(!r.batch_consistent());
    }

    #[test]
    fn remote_attempts_per_migrated_task_edges() {
        let mut r = dummy();
        assert_eq!(r.remote_attempts_per_migrated_task(), 0.0);
        r.pools = 2;
        r.remote_attempts = 12;
        r.remote_steals = 4;
        assert!((r.remote_attempts_per_migrated_task() - 3.0).abs() < 1e-9);
        r.remote_steals = 0;
        assert!(r.remote_attempts_per_migrated_task().is_infinite());
    }

    #[test]
    fn remote_trips_per_migrated_task_subtracts_free_riders() {
        let mut r = dummy();
        assert_eq!(r.remote_trips_per_migrated_task(), 0.0);
        r.pools = 2;
        // 12 attempts landed 6 migrated tasks, but 2 batches carried
        // 5 of them: the 3 extras rode already-paid trips, so only
        // 12 - 3 = 9 round trips were actually made for 6 tasks.
        r.remote_attempts = 12;
        r.remote_steals = 6;
        r.batch_steals = 2;
        r.batched_tasks = 5;
        assert!((r.remote_trips_per_migrated_task() - 1.5).abs() < 1e-9);
        // With no batching the two metrics agree.
        r.batch_steals = 0;
        r.batched_tasks = 0;
        assert!(
            (r.remote_trips_per_migrated_task() - r.remote_attempts_per_migrated_task()).abs()
                < 1e-9
        );
        // Free riders can at most cancel the attempt count, never
        // drive it negative.
        r.batch_steals = 2;
        r.batched_tasks = 20;
        assert_eq!(r.remote_trips_per_migrated_task(), 0.0);
        r.remote_steals = 0;
        r.batched_tasks = 5;
        assert!(r.remote_trips_per_migrated_task().is_infinite());
    }
}
