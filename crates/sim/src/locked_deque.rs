//! A *blocking* deque model for the simulator's ablation of the paper's
//! claim that non-blocking data structures are essential (§1).
//!
//! Each operation first spins to acquire a simulated per-deque lock (one
//! instruction per attempt), performs its body, and releases. Correct and
//! fast on a dedicated machine — but if the kernel preempts a process that
//! holds a lock, every process that touches that deque burns its entire
//! quantum spinning, which is exactly the failure mode the non-blocking
//! deque exists to avoid.
//!
//! Only the lock *choreography* (who holds it, for how many instructions)
//! is modelled here; the queue semantics are the real
//! [`abp_deque::locking::LockingDeque`], reached through the
//! [`TaskDeque`] trait family so the tree has exactly one locking-deque
//! implementation. The simulated lock serializes all access within a run,
//! so the real deque's internal `try_lock` is never contended from the
//! simulator's point of view: the backend's [`Steal::Abort`] arm is
//! unreachable here, matching this model's blocking (wait-out-contention)
//! semantics.

use abp_deque::{DequeOwner, DequeStealer, LockingBackend, Steal, TaskDeque};

type Owner = <LockingBackend as TaskDeque<u64>>::Owner;
type Thief = <LockingBackend as TaskDeque<u64>>::Stealer;

/// Result of a locked `popTop` body. There is no `Abort`: the blocking
/// implementation waits out contention instead of failing fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockedSteal {
    Taken(u64),
    Empty,
}

/// The simulated lock plus handles to the real backing deque.
pub struct LockedSimDeque {
    holder: Option<u32>,
    owner: Owner,
    thief: Thief,
}

impl std::fmt::Debug for LockedSimDeque {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockedSimDeque")
            .field("holder", &self.holder)
            .field("len", &self.len())
            .finish()
    }
}

impl Default for LockedSimDeque {
    fn default() -> Self {
        Self::new()
    }
}

impl LockedSimDeque {
    pub fn new() -> Self {
        let (owner, thief) = LockingBackend.new_pair();
        LockedSimDeque {
            holder: None,
            owner,
            thief,
        }
    }

    /// Who holds the lock, if anyone (for diagnostics).
    pub fn holder(&self) -> Option<u32> {
        self.holder
    }

    /// Current size.
    pub fn len(&self) -> usize {
        DequeOwner::len_hint(&self.owner) // exact for the locking backend
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Contents bottom→top (only meaningful when the lock is free).
    pub fn contents_bottom_to_top(&self) -> Vec<u64> {
        self.owner.contents_bottom_to_top()
    }
}

/// The operation kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Push(u64),
    PopBottom,
    PopTop,
}

/// Completion results, mirroring [`abp_deque::StepOutcome`] shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockStepOutcome {
    /// Still spinning on the lock, or mid-operation.
    Continue,
    PushDone,
    PopBottomDone(Option<u64>),
    PopTopDone(LockedSteal),
}

/// An in-flight locked operation.
#[derive(Debug, Clone)]
pub struct LockOp {
    kind: LockKind,
    acquired: bool,
    /// Body instructions still to execute while holding the lock; sized to
    /// match the instruction counts of the non-blocking deque's operations
    /// so the dedicated-machine comparison is apples to apples.
    body_left: u8,
}

impl LockKind {
    /// Instructions spent inside the critical section (the last one also
    /// releases the lock). Matches the ABP operation costs: push = 3,
    /// pops = 4.
    fn body_steps(self) -> u8 {
        match self {
            LockKind::Push(_) => 2,
            LockKind::PopBottom | LockKind::PopTop => 3,
        }
    }
}

impl LockOp {
    pub fn new(kind: LockKind) -> Self {
        LockOp {
            kind,
            acquired: false,
            body_left: kind.body_steps(),
        }
    }

    /// Executes one instruction on behalf of process `me`: a lock-acquire
    /// attempt (spinning while someone else holds it), then the body
    /// instructions; the final body instruction releases the lock.
    ///
    /// A process preempted anywhere inside the body *keeps the lock*
    /// across its absence — the pathology that makes blocking deques
    /// unusable under multiprogramming.
    pub fn step(&mut self, d: &mut LockedSimDeque, me: u32) -> LockStepOutcome {
        if !self.acquired {
            match d.holder {
                None => {
                    d.holder = Some(me);
                    self.acquired = true;
                    LockStepOutcome::Continue
                }
                Some(h) => {
                    debug_assert_ne!(h, me, "process already holds the lock");
                    LockStepOutcome::Continue // spin
                }
            }
        } else {
            debug_assert_eq!(d.holder, Some(me));
            self.body_left -= 1;
            if self.body_left > 0 {
                return LockStepOutcome::Continue;
            }
            let out = match self.kind {
                LockKind::Push(v) => {
                    DequeOwner::push_bottom(&d.owner, v).expect("locking backend never overflows");
                    LockStepOutcome::PushDone
                }
                LockKind::PopBottom => {
                    LockStepOutcome::PopBottomDone(DequeOwner::pop_bottom(&d.owner))
                }
                LockKind::PopTop => LockStepOutcome::PopTopDone(match d.thief.steal() {
                    Steal::Taken(v) => LockedSteal::Taken(v),
                    Steal::Empty => LockedSteal::Empty,
                    Steal::Abort => {
                        unreachable!("simulated lock held: real try_lock is uncontended")
                    }
                    Steal::Duplicate => unreachable!("locking backend is exact: no duplicates"),
                }),
            };
            d.holder = None;
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(d: &mut LockedSimDeque, kind: LockKind, me: u32) -> LockStepOutcome {
        let mut op = LockOp::new(kind);
        loop {
            let out = op.step(d, me);
            if out != LockStepOutcome::Continue {
                return out;
            }
        }
    }

    #[test]
    fn uncontended_push_takes_three_steps() {
        let mut d = LockedSimDeque::new();
        let mut op = LockOp::new(LockKind::Push(7));
        assert_eq!(op.step(&mut d, 0), LockStepOutcome::Continue); // acquire
        assert_eq!(op.step(&mut d, 0), LockStepOutcome::Continue); // body 1
        assert_eq!(op.step(&mut d, 0), LockStepOutcome::PushDone); // body 2 + release
        assert_eq!(d.len(), 1);
        assert_eq!(d.holder(), None);
    }

    #[test]
    fn deque_semantics() {
        let mut d = LockedSimDeque::new();
        for v in [1, 2, 3] {
            run(&mut d, LockKind::Push(v), 0);
        }
        assert_eq!(
            run(&mut d, LockKind::PopTop, 1),
            LockStepOutcome::PopTopDone(LockedSteal::Taken(1))
        );
        assert_eq!(
            run(&mut d, LockKind::PopBottom, 0),
            LockStepOutcome::PopBottomDone(Some(3))
        );
        assert_eq!(d.contents_bottom_to_top(), vec![2]);
    }

    #[test]
    fn preempted_holder_blocks_everyone() {
        let mut d = LockedSimDeque::new();
        run(&mut d, LockKind::Push(5), 0);
        // Owner acquires the lock and is then "preempted".
        let mut owner_op = LockOp::new(LockKind::PopBottom);
        assert_eq!(owner_op.step(&mut d, 0), LockStepOutcome::Continue);
        assert_eq!(d.holder(), Some(0));
        // A thief spins fruitlessly for as long as the owner sleeps.
        let mut thief_op = LockOp::new(LockKind::PopTop);
        for _ in 0..100 {
            assert_eq!(thief_op.step(&mut d, 1), LockStepOutcome::Continue);
        }
        // Owner resumes and completes; now the thief can finish.
        loop {
            match owner_op.step(&mut d, 0) {
                LockStepOutcome::Continue => continue,
                out => {
                    assert_eq!(out, LockStepOutcome::PopBottomDone(Some(5)));
                    break;
                }
            }
        }
        assert_eq!(
            run(&mut d, LockKind::PopTop, 1),
            LockStepOutcome::PopTopDone(LockedSteal::Empty)
        );
        let _ = thief_op;
    }

    #[test]
    fn empty_pops() {
        let mut d = LockedSimDeque::new();
        assert_eq!(
            run(&mut d, LockKind::PopBottom, 0),
            LockStepOutcome::PopBottomDone(None)
        );
        assert_eq!(
            run(&mut d, LockKind::PopTop, 2),
            LockStepOutcome::PopTopDone(LockedSteal::Empty)
        );
    }
}
