//! A centralized work-*sharing* scheduler — the baseline work stealing is
//! classically compared against.
//!
//! All processes share one global FIFO queue of ready nodes, protected by
//! a lock (a non-blocking multi-producer multi-consumer queue would need
//! its own paper; the centralized designs the work-stealing literature
//! compares against are lock-based). Each loop iteration a process:
//!
//! 1. executes its assigned node (1 instruction, as in the work stealer);
//! 2. pushes any enabled children to the shared queue (lock + body);
//! 3. takes its next assigned node from the shared queue (lock + body).
//!
//! Two structural handicaps relative to work stealing, both measured by
//! the `ws-vs-sharing` experiment:
//!
//! * **serialization** — every queue operation excludes every other
//!   process, so queue traffic bounds throughput no matter how many
//!   processors the kernel provides;
//! * **preemption sensitivity** — a process preempted while holding the
//!   queue lock stalls *all* work distribution, not just one deque.

use crate::locked_deque::{LockKind, LockOp, LockStepOutcome, LockedSimDeque};
use crate::metrics::RunReport;
use abp_dag::{Dag, DetRng, EnablingTree, NodeId};
use abp_kernel::{Kernel, KernelView};

/// Configuration for the work-sharing run.
#[derive(Debug, Clone)]
pub struct CentralConfig {
    pub seed: u64,
    pub max_rounds: u64,
}

impl Default for CentralConfig {
    fn default() -> Self {
        CentralConfig {
            seed: 0x5EED,
            max_rounds: 50_000_000,
        }
    }
}

enum Phase {
    Loop,
    /// Pushing enabled children to the shared queue; remaining nodes to
    /// push after the in-flight op.
    Pushing(LockOp, Vec<NodeId>),
    /// Taking the next assigned node from the shared queue.
    Taking(LockOp),
}

struct Proc {
    assigned: Option<NodeId>,
    phase: Phase,
}

/// Runs the computation under `kernel` with the centralized scheduler.
/// Uses the same round/quantum structure as the work stealer so times are
/// directly comparable.
pub fn run_central(
    dag: &Dag,
    p: usize,
    kernel: &mut dyn Kernel,
    config: CentralConfig,
) -> RunReport {
    assert!(p >= 1 && kernel.num_procs() == p);
    // The shared queue is "deque 0"; only its FIFO end is used.
    let mut queue = LockedSimDeque::new();
    let mut procs: Vec<Proc> = (0..p)
        .map(|i| Proc {
            assigned: if i == 0 { Some(dag.root()) } else { None },
            phase: Phase::Loop,
        })
        .collect();
    let mut remaining: Vec<u32> = (0..dag.num_nodes())
        .map(|i| dag.in_degree(NodeId(i as u32)) as u32)
        .collect();
    let mut tree = EnablingTree::new(dag);
    let mut executed_count = 0u64;
    let mut done = false;

    let mut rounds = 0u64;
    let mut proc_rounds = 0u64;
    let mut instructions = 0u64;
    let mut wall_steps = 0u64;
    let mut rng = DetRng::new(config.seed);

    let mut has_assigned = vec![false; p];
    let mut deque_len = vec![0usize; p];
    let mut in_cs = vec![false; p];

    while !done && rounds < config.max_rounds {
        rounds += 1;
        for i in 0..p {
            has_assigned[i] = procs[i].assigned.is_some();
            // The shared queue length is global state; report it for p0
            // so adaptive adversaries see *something* comparable.
            deque_len[i] = if i == 0 { queue.len() } else { 0 };
            in_cs[i] = queue.holder() == Some(i as u32);
        }
        let view = KernelView {
            round: rounds,
            has_assigned: &has_assigned,
            deque_len: &deque_len,
            in_critical_section: &in_cs,
        };
        let chosen = kernel.choose(&view);
        proc_rounds += chosen.len() as u64;
        let scheduled: Vec<usize> = chosen.iter().map(|q| q.index()).collect();
        let quanta: Vec<u64> = scheduled
            .iter()
            .map(|_| {
                rng.range_inclusive(
                    2 * crate::ws::MILESTONE_C as u64,
                    3 * crate::ws::MILESTONE_C as u64,
                )
            })
            .collect();
        let max_q = quanta.iter().copied().max().unwrap_or(0);
        'round: for step in 0..max_q {
            for (pos, &i) in scheduled.iter().enumerate() {
                if step >= quanta[pos] {
                    continue;
                }
                instructions += 1;
                let phase = std::mem::replace(&mut procs[i].phase, Phase::Loop);
                procs[i].phase = match phase {
                    Phase::Loop => match procs[i].assigned.take() {
                        Some(u) => {
                            // Execute the node.
                            debug_assert_eq!(remaining[u.index()], 0);
                            executed_count += 1;
                            if u == dag.final_node() {
                                done = true;
                                break 'round;
                            }
                            let mut enabled = Vec::new();
                            for &(v, _) in dag.succs(u) {
                                remaining[v.index()] -= 1;
                                if remaining[v.index()] == 0 {
                                    tree.record(u, v);
                                    enabled.push(v);
                                }
                            }
                            match enabled.split_first() {
                                // Keep one child assigned (same courtesy
                                // the work stealer gets), share the rest.
                                Some((&first, rest)) => {
                                    procs[i].assigned = Some(first);
                                    if rest.is_empty() {
                                        Phase::Loop
                                    } else {
                                        Phase::Pushing(
                                            LockOp::new(LockKind::Push(rest[0].index() as u64)),
                                            rest[1..].to_vec(),
                                        )
                                    }
                                }
                                None => Phase::Taking(LockOp::new(LockKind::PopTop)),
                            }
                        }
                        None => Phase::Taking(LockOp::new(LockKind::PopTop)),
                    },
                    Phase::Pushing(mut op, mut pending) => match op.step(&mut queue, i as u32) {
                        LockStepOutcome::Continue => Phase::Pushing(op, pending),
                        LockStepOutcome::PushDone => {
                            if let Some(next) = pending.pop() {
                                Phase::Pushing(
                                    LockOp::new(LockKind::Push(next.index() as u64)),
                                    pending,
                                )
                            } else {
                                Phase::Loop
                            }
                        }
                        other => unreachable!("push produced {other:?}"),
                    },
                    Phase::Taking(mut op) => match op.step(&mut queue, i as u32) {
                        LockStepOutcome::Continue => Phase::Taking(op),
                        LockStepOutcome::PopTopDone(res) => {
                            if let crate::locked_deque::LockedSteal::Taken(v) = res {
                                procs[i].assigned = Some(NodeId(v as u32));
                            }
                            Phase::Loop
                        }
                        other => unreachable!("take produced {other:?}"),
                    },
                };
            }
        }
        wall_steps += max_q;
    }

    let pa = if rounds == 0 {
        0.0
    } else {
        proc_rounds as f64 / rounds as f64
    };
    RunReport {
        rounds,
        proc_rounds,
        instructions,
        wall_steps,
        pa,
        work: dag.work(),
        critical_path: dag.critical_path(),
        procs: p,
        executed: executed_count,
        steal_attempts: 0,
        successful_steals: 0,
        steal_aborts: 0,
        steal_empties: 0,
        pools: 1,
        remote_steals: 0,
        remote_attempts: 0,
        batch_steals: 0,
        batched_tasks: 0,
        throws: 0,
        yields: 0,
        policy: "central-queue".to_string(),
        completed: done,
        structural_violations: 0,
        potential_violations: 0,
        milestone_violations: 0,
        phases: None,
        cache: None,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_dag::gen;
    use abp_kernel::DedicatedKernel;

    #[test]
    fn completes_and_executes_everything() {
        for dag in [
            gen::chain(200),
            gen::fork_join_tree(6, 2),
            gen::fib(12, 3),
            gen::sync_pipeline(4, 30),
        ] {
            let mut k = DedicatedKernel::new(4);
            let r = run_central(&dag, 4, &mut k, CentralConfig::default());
            assert!(r.completed, "{r}");
            assert_eq!(r.executed, r.work);
        }
    }

    #[test]
    fn deterministic() {
        let dag = gen::fib(13, 3);
        let run = || {
            let mut k = DedicatedKernel::new(6);
            run_central(&dag, 6, &mut k, CentralConfig::default())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn work_stealing_beats_sharing_at_scale() {
        // The headline comparison: with ample parallelism and many
        // processes, the shared queue serializes while deques do not.
        let dag = gen::fork_join_tree(9, 1);
        let p = 16;
        let mut k1 = DedicatedKernel::new(p);
        let ws = crate::ws::run_ws(&dag, p, &mut k1, crate::ws::WsConfig::default());
        let mut k2 = DedicatedKernel::new(p);
        let cs = run_central(&dag, p, &mut k2, CentralConfig::default());
        assert!(ws.completed && cs.completed);
        assert!(
            cs.rounds as f64 > 1.3 * ws.rounds as f64,
            "work sharing ({}) should trail work stealing ({}) at P={p}",
            cs.rounds,
            ws.rounds
        );
    }

    #[test]
    fn lock_targeting_adversary_livelocks_the_shared_queue() {
        // The work stealer survives the critical-section starver (it has
        // no critical sections); the centralized scheduler's global lock
        // is a single point of failure the adversary can sit on.
        use abp_kernel::{AdaptiveCriticalStarver, CountSource};
        let dag = gen::fib(12, 3);
        let p = 6;
        let cap = 100_000;
        let mut k = AdaptiveCriticalStarver::new(p, CountSource::Constant(3), 4);
        let cs = run_central(
            &dag,
            p,
            &mut k,
            CentralConfig {
                max_rounds: cap,
                ..CentralConfig::default()
            },
        );
        assert!(
            !cs.completed,
            "shared-queue scheduler should starve under the lock targeter ({cs})"
        );
        let mut k = AdaptiveCriticalStarver::new(p, CountSource::Constant(3), 4);
        let ws = crate::ws::run_ws(
            &dag,
            p,
            &mut k,
            crate::ws::WsConfig {
                max_rounds: cap,
                ..crate::ws::WsConfig::default()
            },
        );
        assert!(
            ws.completed,
            "the non-blocking scheduler should shrug it off"
        );
    }

    #[test]
    fn single_process_overhead_is_modest() {
        // With P=1 there is no contention; sharing pays only lock cost.
        let dag = gen::fork_join_tree(7, 2);
        let mut k1 = DedicatedKernel::new(1);
        let ws = crate::ws::run_ws(&dag, 1, &mut k1, crate::ws::WsConfig::default());
        let mut k2 = DedicatedKernel::new(1);
        let cs = run_central(&dag, 1, &mut k2, CentralConfig::default());
        assert!(
            cs.rounds < 2 * ws.rounds,
            "ws {} vs central {}",
            ws.rounds,
            cs.rounds
        );
    }
}
