//! Adapter from a simulator [`Trace`] to the shared telemetry schema.
//!
//! The simulator has no wall clock — its time unit is the *round*. This
//! module maps rounds onto nanoseconds (1 round = 1 µs) and replays the
//! per-round activity matrix and the steal records through an
//! [`abp_telemetry::Registry`], producing the exact same
//! [`TelemetrySnapshot`] the real `hood` pool produces. Both therefore
//! export through the same Chrome-trace/metrics code paths, and a
//! simulated run can be opened in Perfetto next to a real one:
//!
//! * a contiguous run of `Working` rounds becomes one `job` span
//!   (`ExecStart`/`ExecEnd`), and contributes its length to the
//!   job-run-time histogram;
//! * a contiguous run of `Unscheduled` rounds (the kernel adversary
//!   descheduling the process) becomes one `park` span;
//! * every [`StealRecord`] becomes a `StealAttempt` instant with its
//!   thief, victim, and outcome; hits record one round of steal latency.
//!
//! Timestamps inside a round are staggered (parks at +0, work at +100 ns,
//! steals from +400 ns) so events within one worker's round keep a
//! stable, strictly increasing order.

use crate::trace::{RoundActivity, StealRecord, Trace};
use abp_telemetry::{EventKind, Registry, StealOutcome, TelemetryConfig, TelemetrySnapshot};

/// Nanoseconds per simulated round in the exported trace (1 µs — one
/// Chrome-trace display unit).
pub const NS_PER_ROUND: u64 = 1_000;

fn ts(round: u64, offset: u64) -> u64 {
    round * NS_PER_ROUND + offset
}

/// Converts a simulator trace into the shared telemetry snapshot.
///
/// The trace must have been recorded with `WsConfig { trace: true, .. }`;
/// an empty trace yields an empty snapshot. No events are ever dropped:
/// the rings are sized to the trace.
pub fn telemetry_from_trace(trace: &Trace) -> TelemetrySnapshot {
    let p = trace
        .rounds
        .first()
        .map(|row| row.len())
        .unwrap_or_else(|| {
            trace
                .steals
                .iter()
                .map(|s| s.thief.index().max(s.victim.index()) + 1)
                .max()
                .unwrap_or(0)
        });
    // Per-worker event streams, assembled in (ts, kind) form first so the
    // ring sees them in timestamp order.
    let mut streams: Vec<Vec<(u64, EventKind)>> = vec![Vec::new(); p];
    let mut job_spans: Vec<Vec<u64>> = vec![Vec::new(); p]; // lengths, ns

    // Activity matrix → job and park spans.
    for proc in 0..p {
        let mut parked_since: Option<u64> = None;
        let mut working_since: Option<u64> = None;
        for (r, row) in trace.rounds.iter().enumerate() {
            let r = r as u64;
            let act = row[proc];
            let scheduled = act != RoundActivity::Unscheduled;
            let working = act == RoundActivity::Working;
            if scheduled {
                if let Some(start) = parked_since.take() {
                    streams[proc].push((ts(start, 0), EventKind::Park));
                    streams[proc].push((ts(r, 0), EventKind::Unpark));
                }
            } else if parked_since.is_none() {
                parked_since = Some(r);
            }
            if working {
                if working_since.is_none() {
                    working_since = Some(r);
                }
            } else if let Some(start) = working_since.take() {
                streams[proc].push((ts(start, 100), EventKind::ExecStart));
                streams[proc].push((ts(r, 100), EventKind::ExecEnd));
                job_spans[proc].push((r - start) * NS_PER_ROUND);
            }
        }
        let end = trace.rounds.len() as u64;
        if let Some(start) = parked_since {
            streams[proc].push((ts(start, 0), EventKind::Park));
            streams[proc].push((ts(end, 0), EventKind::Unpark));
        }
        if let Some(start) = working_since {
            streams[proc].push((ts(start, 100), EventKind::ExecStart));
            streams[proc].push((ts(end, 100), EventKind::ExecEnd));
            job_spans[proc].push((end - start) * NS_PER_ROUND);
        }
    }

    // Steal records → StealAttempt instants, staggered within the round
    // per thief so timestamps stay unique and ordered.
    let mut in_round: Vec<(u64, u64)> = vec![(u64::MAX, 0); p]; // (round, k)
    for s in &trace.steals {
        let t = s.thief.index();
        if t >= p {
            continue;
        }
        let k = if in_round[t].0 == s.round {
            in_round[t].1 += 1;
            in_round[t].1
        } else {
            in_round[t] = (s.round, 0);
            0
        };
        streams[t].push((
            ts(s.round, 400 + 10 * k),
            EventKind::StealAttempt {
                victim: s.victim.index() as u32,
                outcome: s.outcome,
            },
        ));
    }

    let max_events = streams.iter().map(Vec::len).max().unwrap_or(0);
    let registry = Registry::new(
        p,
        &TelemetryConfig {
            ring_capacity: max_events.max(8),
        },
    );
    for (proc, mut stream) in streams.into_iter().enumerate() {
        stream.sort_by_key(|&(t, _)| t);
        let w = registry.worker(proc);
        for (t, kind) in stream {
            w.record_at(t, kind);
        }
        for len in &job_spans[proc] {
            w.job_run_ns(*len);
        }
        // Logical steal latency: a completed hit costs one round.
        for s in trace.steals.iter().filter(|s| s.thief.index() == proc) {
            if s.outcome == StealOutcome::Hit {
                w.steal_latency_ns(NS_PER_ROUND);
            }
        }
    }
    let mut snap = registry.snapshot();
    snap.process_name = "abp-sim".to_string();
    snap.counters = vec![
        ("rounds".to_string(), trace.rounds.len() as u64),
        ("procs".to_string(), p as u64),
        ("steal_attempts".to_string(), trace.steals.len() as u64),
    ];
    // Cache-model counters are gated on the model having run at all, so
    // untraced-cache runs export byte-identical snapshots.
    if let Some(cache) = &trace.cache {
        snap.counters
            .push(("cache_accesses".to_string(), cache.accesses));
        snap.counters.push(("cache_hits".to_string(), cache.hits));
        snap.counters
            .push(("cache_misses".to_string(), cache.misses));
        snap.counters
            .push(("cache_deviations".to_string(), cache.deviations));
    }
    snap
}

/// Converts a completed run's trace into the shared telemetry snapshot,
/// stamping it with the run's scheduling-policy identity and counters.
///
/// Requires the run to have been traced (`WsConfig { trace: true, .. }`);
/// returns `None` otherwise.
pub fn telemetry_from_run(report: &crate::metrics::RunReport) -> Option<TelemetrySnapshot> {
    let trace = report.trace.as_ref()?;
    let mut snap = telemetry_from_trace(trace);
    snap.policy = report.policy.clone();
    snap.counters.push(("throws".to_string(), report.throws));
    snap.counters
        .push(("successful_steals".to_string(), report.successful_steals));
    Some(snap)
}

/// A [`StealRecord`] re-expressed as a telemetry event (helper for tests
/// and ad-hoc tooling).
pub fn steal_event(s: &StealRecord) -> (usize, u64, EventKind) {
    (
        s.thief.index(),
        ts(s.round, 400),
        EventKind::StealAttempt {
            victim: s.victim.index() as u32,
            outcome: s.outcome,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_dag::ProcId;

    fn act(rows: &[&[RoundActivity]]) -> Vec<Vec<RoundActivity>> {
        rows.iter().map(|r| r.to_vec()).collect()
    }

    #[test]
    fn empty_trace_empty_snapshot() {
        let snap = telemetry_from_trace(&Trace::default());
        assert!(snap.workers.is_empty());
        assert_eq!(snap.process_name, "abp-sim");
    }

    #[test]
    fn working_runs_become_spans_and_parks_pair_up() {
        use RoundActivity::*;
        let trace = Trace {
            rounds: act(&[
                &[Working, Unscheduled],
                &[Working, Unscheduled],
                &[Thieving, Working],
            ]),
            ..Trace::default()
        };
        let snap = telemetry_from_trace(&trace);
        assert_eq!(snap.workers.len(), 2);
        // Worker 0: one job span of 2 rounds.
        let w0 = &snap.workers[0];
        let kinds: Vec<EventKind> = w0.events.iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![EventKind::ExecStart, EventKind::ExecEnd]);
        assert_eq!(w0.events[1].ts_ns - w0.events[0].ts_ns, 2 * NS_PER_ROUND);
        assert_eq!(w0.job_run_time.count(), 1);
        // Worker 1: park span then a job span.
        let w1 = &snap.workers[1];
        let kinds: Vec<EventKind> = w1.events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::Park,
                EventKind::Unpark,
                EventKind::ExecStart,
                EventKind::ExecEnd
            ]
        );
        assert_eq!(snap.total_dropped(), 0);
    }

    #[test]
    fn steal_records_map_to_attempt_events() {
        use RoundActivity::*;
        let trace = Trace {
            rounds: act(&[&[Thieving, Working], &[Stealing, Working]]),
            steals: vec![
                StealRecord {
                    round: 0,
                    thief: ProcId(0),
                    victim: ProcId(1),
                    outcome: StealOutcome::Empty,
                },
                StealRecord {
                    round: 0,
                    thief: ProcId(0),
                    victim: ProcId(1),
                    outcome: StealOutcome::Abort,
                },
                StealRecord {
                    round: 1,
                    thief: ProcId(0),
                    victim: ProcId(1),
                    outcome: StealOutcome::Hit,
                },
            ],
            ..Trace::default()
        };
        let snap = telemetry_from_trace(&trace);
        assert_eq!(snap.steal_attempts_per_worker(), vec![3, 0]);
        let w0 = &snap.workers[0];
        assert_eq!(w0.steals_with(StealOutcome::Hit), 1);
        assert_eq!(w0.steals_with(StealOutcome::Empty), 1);
        assert_eq!(w0.steals_with(StealOutcome::Abort), 1);
        assert_eq!(w0.steal_latency.count(), 1);
        // Events are strictly increasing in time.
        for pair in w0.events.windows(2) {
            assert!(pair[0].ts_ns < pair[1].ts_ns);
        }
        // Exports parse.
        let json = abp_telemetry::chrome_trace(&snap);
        assert!(abp_telemetry::json::parse(&json).is_ok());
    }

    #[test]
    fn cache_counters_are_gated_on_the_model() {
        let dag = abp_dag::gen::fork_join_tree(5, 2);
        // Without the cache model: no cache counters at all.
        let mut k = abp_kernel::DedicatedKernel::new(4);
        let plain = crate::ws::run_ws(
            &dag,
            4,
            &mut k,
            crate::ws::WsConfig::default().with_trace(true),
        );
        let snap = telemetry_from_run(&plain).unwrap();
        assert!(snap.counters.iter().all(|(n, _)| !n.starts_with("cache_")));
        // With it: counters present and consistent with the report.
        let mut k = abp_kernel::DedicatedKernel::new(4);
        let cfg = crate::ws::WsConfig::default()
            .with_trace(true)
            .with_cache(crate::cache::CacheConfig::default());
        let run = crate::ws::run_ws(&dag, 4, &mut k, cfg);
        let snap = telemetry_from_run(&run).unwrap();
        let stats = run.cache.unwrap();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
        };
        assert_eq!(get("cache_accesses"), Some(stats.accesses));
        assert_eq!(get("cache_hits"), Some(stats.hits));
        assert_eq!(get("cache_misses"), Some(stats.misses));
        assert_eq!(get("cache_deviations"), Some(stats.deviations));
        // And they surface through both exporters.
        let trace_json = abp_telemetry::chrome_trace(&snap);
        assert!(trace_json.contains("\"name\":\"cache_model\""));
        let metrics = abp_telemetry::metrics_json(&snap);
        let v = abp_telemetry::json::parse(&metrics).unwrap();
        assert_eq!(
            v.get("counters")
                .unwrap()
                .get("cache_misses")
                .unwrap()
                .as_f64(),
            Some(stats.misses as f64)
        );
    }

    #[test]
    fn run_snapshot_carries_policy_identity() {
        let dag = abp_dag::gen::fork_join_tree(5, 2);
        let mut k = abp_kernel::DedicatedKernel::new(4);
        let cfg = crate::ws::WsConfig::default().with_trace(true);
        let report = crate::ws::run_ws(&dag, 4, &mut k, cfg);
        let snap = telemetry_from_run(&report).expect("trace was recorded");
        assert_eq!(snap.policy, "uniform+yield+spin/to-all");
        assert!(snap
            .counters
            .iter()
            .any(|(name, v)| name == "throws" && *v == report.throws));
        // The policy flows through both exporters.
        let trace_json = abp_telemetry::chrome_trace(&snap);
        assert!(trace_json.contains("uniform+yield+spin/to-all"));
        let metrics = abp_telemetry::metrics_json(&snap);
        let v = abp_telemetry::json::parse(&metrics).unwrap();
        assert_eq!(
            v.get("policy").unwrap().as_str(),
            Some("uniform+yield+spin/to-all")
        );
        // Untraced runs yield no snapshot.
        let mut k = abp_kernel::DedicatedKernel::new(4);
        let untraced = crate::ws::run_ws(&dag, 4, &mut k, crate::ws::WsConfig::default());
        assert!(telemetry_from_run(&untraced).is_none());
    }
}
