//! Deterministic instruction-level execution of the ABP non-blocking work
//! stealer under adversarial kernels, plus the offline scheduling theory
//! of Section 2.
//!
//! * [`ws`] — the Figure-3 scheduling loop at instruction granularity:
//!   rounds, milestones, throws, yields, with configurable deque backend
//!   (ABP / untagged / locking) and assignment policy;
//! * [`offline`] — greedy and Brent level-by-level execution schedules,
//!   the Figure-2 reproduction, and Theorem 1/2 bound checks;
//! * [`invariants`] — live verification of the structural lemma (Lemma 3 /
//!   Corollary 4) and the potential function Φ (Section 4.2);
//! * [`cache`] — a per-process LRU cache model whose miss and deviation
//!   counts feed the work-stealing cache-complexity bound check;
//! * [`metrics`] — the per-run [`RunReport`] with the paper's bound
//!   ratios;
//! * [`telemetry`] — adapter from a recorded [`Trace`] to the shared
//!   [`abp_telemetry`] schema, so simulated and real runs export the
//!   same Chrome-trace/metrics formats.

pub mod cache;
pub mod central;
pub mod invariants;
pub mod locked_deque;
pub mod metrics;
pub mod offline;
pub mod telemetry;
pub mod trace;
pub mod ws;

pub use abp_core::{
    cache_extra_miss_bound, rooted_tree_steal_bound, BackoffKind, BatchKind, CacheBoundCheck,
    IdleKind, PolicySet, StealBoundCheck, StealTally, VictimKind, CACHE_KAPPA,
};
pub use cache::{CacheConfig, CacheStats, LruCache};
pub use central::{run_central, CentralConfig};
pub use metrics::{PhaseStats, RunReport};
pub use offline::{brent, figure2_execution, greedy, optimal_length, ExecutionSchedule};
pub use telemetry::{telemetry_from_run, telemetry_from_trace, NS_PER_ROUND};
pub use trace::{ActivityBreakdown, RoundActivity, StealRecord, Trace};
pub use ws::{run_ws, AssignPolicy, DequeBackend, WorkStealer, WsConfig, MILESTONE_C};
