//! Deterministic instruction-level execution of the ABP non-blocking work
//! stealer under adversarial kernels, plus the offline scheduling theory
//! of Section 2.
//!
//! * [`ws`] — the Figure-3 scheduling loop at instruction granularity:
//!   rounds, milestones, throws, yields, with configurable deque backend
//!   (ABP / untagged / locking) and assignment policy;
//! * [`offline`] — greedy and Brent level-by-level execution schedules,
//!   the Figure-2 reproduction, and Theorem 1/2 bound checks;
//! * [`invariants`] — live verification of the structural lemma (Lemma 3 /
//!   Corollary 4) and the potential function Φ (Section 4.2);
//! * [`metrics`] — the per-run [`RunReport`] with the paper's bound
//!   ratios.

pub mod central;
pub mod invariants;
pub mod locked_deque;
pub mod metrics;
pub mod offline;
pub mod trace;
pub mod ws;

pub use central::{run_central, CentralConfig};
pub use metrics::{PhaseStats, RunReport};
pub use trace::{ActivityBreakdown, RoundActivity, Trace};
pub use offline::{brent, figure2_execution, greedy, optimal_length, ExecutionSchedule};
pub use ws::{run_ws, AssignPolicy, DequeBackend, WorkStealer, WsConfig, MILESTONE_C};
