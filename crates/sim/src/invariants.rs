//! Live checking of the paper's analysis machinery: the structural lemma
//! (Lemma 3 / Corollary 4) and the potential function Φ (Section 4.2).
//!
//! The simulator calls into these trackers at the linearization points of
//! deque operations and node executions, so the invariants are verified at
//! exactly the granularity at which the paper states them.

use abp_dag::{Dag, EnablingTree, NodeId};

/// Checks Lemma 3 against one process's deque snapshot.
///
/// `assigned` is the process's assigned node `v₀` (if any); `deque_bottom_to_top`
/// lists the deque contents `v₁ … v_k`. With `u_i` the designated parent
/// of `v_i`, the lemma asserts `u_{i+1}` is an ancestor of `u_i` in the
/// enabling tree — proper for `i ≥ 1`, possibly equal for `i = 0` — so the
/// `u_i` lie on a root-to-leaf path. Corollary 4 then gives
/// `w(v₀) ≤ w(v₁) < w(v₂) < … < w(v_k)`.
///
/// Returns `Err` with a description on the first violation.
pub fn check_structural_lemma(
    tree: &EnablingTree,
    dag: &Dag,
    assigned: Option<NodeId>,
    deque_bottom_to_top: &[NodeId],
) -> Result<(), String> {
    // Build the v0..vk sequence (assigned first, then bottom→top).
    let mut seq: Vec<NodeId> = Vec::with_capacity(deque_bottom_to_top.len() + 1);
    if let Some(a) = assigned {
        seq.push(a);
    }
    seq.extend_from_slice(deque_bottom_to_top);
    if seq.len() <= 1 {
        return Ok(());
    }
    // Designated parents must exist for every non-root node in the deque.
    let parents: Vec<Option<NodeId>> = seq
        .iter()
        .map(|&v| {
            if v == dag.root() {
                None
            } else {
                tree.designated_parent(v)
            }
        })
        .collect();
    for (i, (&v, p)) in seq.iter().zip(&parents).enumerate() {
        if v != dag.root() && p.is_none() {
            return Err(format!("node {v} (position {i}) has no designated parent"));
        }
    }
    // Ancestor chain: u_{i+1} ancestor of u_i; proper unless i == 0 and an
    // assigned node exists (the paper's u1 = u0 case arises from a node
    // enabling two children with the same designated parent).
    let has_assigned = assigned.is_some();
    for i in 0..seq.len() - 1 {
        let (ui, ui1) = match (parents[i], parents[i + 1]) {
            (Some(a), Some(b)) => (a, b),
            // The root node can only be the assigned node (it is never in
            // a deque after the first execution); treat its "parent" as a
            // virtual super-root that everything descends from.
            (None, _) | (_, None) => continue,
        };
        let equality_allowed = i == 0 && has_assigned;
        if equality_allowed {
            if !tree.is_ancestor(ui1, ui) {
                return Err(format!(
                    "u{} = {} is not an ancestor of u{} = {}",
                    i + 1,
                    ui1,
                    i,
                    ui
                ));
            }
        } else if !tree.is_proper_ancestor(ui1, ui) {
            return Err(format!(
                "u{} = {} is not a proper ancestor of u{} = {}",
                i + 1,
                ui1,
                i,
                ui
            ));
        }
    }
    // Corollary 4: weights.
    let w: Vec<u64> = seq.iter().map(|&v| tree.weight(v)).collect();
    for i in 0..w.len() - 1 {
        let strict = !(i == 0 && has_assigned);
        if strict {
            if w[i] >= w[i + 1] {
                return Err(format!(
                    "weights not strictly increasing toward the top: w({})={} vs w({})={}",
                    seq[i],
                    w[i],
                    seq[i + 1],
                    w[i + 1]
                ));
            }
        } else if w[i] > w[i + 1] {
            return Err(format!(
                "assigned node heavier than bottom deque node: w({})={} vs w({})={}",
                seq[i],
                w[i],
                seq[i + 1],
                w[i + 1]
            ));
        }
    }
    Ok(())
}

/// Where a ready node sits, for potential accounting: assigned nodes
/// contribute `3^{2w-1}`, deque nodes `3^{2w}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadyState {
    Assigned,
    InDeque,
}

/// Tracks the potential `Φ = Σ φ(u)` over ready nodes, in log space
/// (exponents reach `3^{2·T∞}`, far beyond any fixed-width integer).
///
/// `φ(u) = 3^{2w(u)-1}` if `u` is assigned, `3^{2w(u)}` if it is in a
/// deque. Potential transitions are all decreases:
/// * assignment of a deque node: `3^{2w} → 3^{2w-1}` (factor 2/3 of Φ(u) removed);
/// * execution enabling children: children are one level deeper.
#[derive(Debug)]
pub struct PotentialTracker {
    /// exponent (in units of ln 3) per ready node, or None if not ready.
    exponent: Vec<Option<i64>>,
    /// Number of ready nodes.
    ready: usize,
}

impl PotentialTracker {
    /// A tracker with the root assigned (the initial state, Φ = 3^{2·T∞−1}).
    pub fn new(dag: &Dag, tree: &EnablingTree) -> Self {
        let mut t = PotentialTracker {
            exponent: vec![None; dag.num_nodes()],
            ready: 0,
        };
        t.insert(dag.root(), ReadyState::Assigned, tree);
        t
    }

    fn phi_exponent(tree: &EnablingTree, u: NodeId, state: ReadyState) -> i64 {
        let w = tree.weight(u) as i64;
        match state {
            ReadyState::Assigned => 2 * w - 1,
            ReadyState::InDeque => 2 * w,
        }
    }

    /// Node `u` became ready in the given state.
    pub fn insert(&mut self, u: NodeId, state: ReadyState, tree: &EnablingTree) {
        debug_assert!(self.exponent[u.index()].is_none(), "{u} already ready");
        self.exponent[u.index()] = Some(Self::phi_exponent(tree, u, state));
        self.ready += 1;
    }

    /// Node `u` moved from a deque to assigned (pop or steal).
    pub fn assign(&mut self, u: NodeId, tree: &EnablingTree) {
        let e = Self::phi_exponent(tree, u, ReadyState::Assigned);
        let old = self.exponent[u.index()].expect("assigning a non-ready node");
        debug_assert!(e < old, "assignment must lower the exponent");
        self.exponent[u.index()] = Some(e);
    }

    /// Node `u` was executed and is no longer ready.
    pub fn remove(&mut self, u: NodeId) {
        debug_assert!(self.exponent[u.index()].is_some());
        self.exponent[u.index()] = None;
        self.ready -= 1;
    }

    /// Number of ready nodes.
    pub fn ready_count(&self) -> usize {
        self.ready
    }

    /// `ln Φ` via a log-sum-exp over ready nodes (O(ready)); `-inf` when
    /// no node is ready (termination).
    pub fn log_potential(&self) -> f64 {
        const LN3: f64 = 1.0986122886681098;
        let mut max_e = i64::MIN;
        for e in self.exponent.iter().flatten() {
            max_e = max_e.max(*e);
        }
        if max_e == i64::MIN {
            return f64::NEG_INFINITY;
        }
        let mut sum = 0.0f64;
        for e in self.exponent.iter().flatten() {
            sum += (((e - max_e) as f64) * LN3).exp();
        }
        max_e as f64 * LN3 + sum.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_dag::examples::figure1;

    /// Replays the depth-first execution of Figure 1 and checks that the
    /// structural lemma accepts all intermediate honest states and that Φ
    /// strictly decreases.
    #[test]
    fn figure1_potential_monotone() {
        let (d, f) = figure1();
        let [v1, v2, v3, v4, v10, v11] = f.root_nodes;
        let [v5, v6, v7, v8, v9] = f.child_nodes;
        let mut tree = EnablingTree::new(&d);
        let mut pot = PotentialTracker::new(&d, &tree);
        let mut remaining: Vec<usize> = (0..d.num_nodes())
            .map(|i| d.in_degree(NodeId(i as u32)))
            .collect();
        let order = [v1, v2, v5, v6, v3, v4, v7, v8, v9, v10, v11];
        let mut last = pot.log_potential();
        for &u in &order {
            // Execute u: remove it, enable children (assigned/deque choice
            // immaterial for monotonicity as long as at most one is
            // Assigned).
            pot.remove(u);
            let mut enabled = Vec::new();
            for &(v, _) in d.succs(u) {
                remaining[v.index()] -= 1;
                if remaining[v.index()] == 0 {
                    tree.record(u, v);
                    enabled.push(v);
                }
            }
            for (i, &v) in enabled.iter().enumerate() {
                let st = if i == 0 {
                    ReadyState::Assigned
                } else {
                    ReadyState::InDeque
                };
                pot.insert(v, st, &tree);
            }
            let now = pot.log_potential();
            assert!(
                now < last || now == f64::NEG_INFINITY,
                "potential did not decrease at {u}: {last} -> {now}"
            );
            last = now;
        }
        assert_eq!(pot.ready_count(), 0);
        assert_eq!(last, f64::NEG_INFINITY);
    }

    #[test]
    fn initial_potential_is_root_weight() {
        let (d, _) = figure1();
        let tree = EnablingTree::new(&d);
        let pot = PotentialTracker::new(&d, &tree);
        const LN3: f64 = 1.0986122886681098;
        let expect = ((2 * d.critical_path() - 1) as f64) * LN3;
        assert!((pot.log_potential() - expect).abs() < 1e-9);
    }

    #[test]
    fn assign_lowers_potential() {
        let (d, f) = figure1();
        let mut tree = EnablingTree::new(&d);
        let mut pot = PotentialTracker::new(&d, &tree);
        let [v1, v2, ..] = f.root_nodes;
        let v5 = f.child_nodes[0];
        // Execute v1 (enables v2 assigned), execute v2 (enables v3 deque +
        // v5 assigned); then "steal" v3: assign it.
        pot.remove(v1);
        tree.record(v1, v2);
        pot.insert(v2, ReadyState::Assigned, &tree);
        pot.remove(v2);
        let v3 = f.root_nodes[2];
        tree.record(v2, v3);
        tree.record(v2, v5);
        pot.insert(v5, ReadyState::Assigned, &tree);
        pot.insert(v3, ReadyState::InDeque, &tree);
        let before = pot.log_potential();
        pot.assign(v3, &tree);
        let after = pot.log_potential();
        assert!(after < before);
    }

    #[test]
    fn structural_lemma_accepts_spawn_shape() {
        // After v2 spawns: assigned v5, deque [v3]; both have designated
        // parent v2 — the u1 == u0 case.
        let (d, f) = figure1();
        let [v1, v2, v3, ..] = f.root_nodes;
        let v5 = f.child_nodes[0];
        let mut tree = EnablingTree::new(&d);
        tree.record(v1, v2);
        tree.record(v2, v3);
        tree.record(v2, v5);
        check_structural_lemma(&tree, &d, Some(v5), &[v3]).unwrap();
    }

    #[test]
    fn structural_lemma_rejects_shuffled_deque() {
        // Construct an illegal state: deque ordered the wrong way.
        let (d, f) = figure1();
        let [v1, v2, v3, ..] = f.root_nodes;
        let [v5, v6, v7, ..] = f.child_nodes;
        let mut tree = EnablingTree::new(&d);
        tree.record(v1, v2);
        tree.record(v2, v3);
        tree.record(v2, v5);
        tree.record(v5, v6);
        tree.record(v6, v7);
        // Honest state would be assigned v7, deque [v3] — instead claim
        // the deque holds [v3, v7] with v7 on top (weights increase the
        // wrong way).
        let err = check_structural_lemma(&tree, &d, None, &[v3, v7]).unwrap_err();
        assert!(err.contains("not") || err.contains("weights"), "{err}");
    }

    #[test]
    fn structural_lemma_trivial_states_ok() {
        let (d, _) = figure1();
        let tree = EnablingTree::new(&d);
        check_structural_lemma(&tree, &d, Some(d.root()), &[]).unwrap();
        check_structural_lemma(&tree, &d, None, &[]).unwrap();
    }
}
