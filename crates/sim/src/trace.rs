//! Execution traces: a per-round record of what every process did, with
//! renderers and the analyses the paper's arguments appeal to (uniform
//! victim selection, deque occupancy, where the time actually went).

use abp_dag::ProcId;
use abp_telemetry::StealOutcome;
use std::fmt;

/// What one process spent (most of) a round doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundActivity {
    /// Not scheduled by the kernel.
    Unscheduled,
    /// Scheduled; executed at least one node.
    Working,
    /// Scheduled; completed at least one steal attempt, none successful,
    /// executed no node.
    Thieving,
    /// Scheduled; completed a *successful* steal (may also have worked).
    Stealing,
    /// Scheduled but completed neither a node nor a steal attempt
    /// (mid-operation the whole round — only possible for the blocking
    /// backend, where it means lock spinning).
    Stalled,
}

impl RoundActivity {
    /// Single-character glyph for the timeline renderer.
    pub fn glyph(self) -> char {
        match self {
            RoundActivity::Unscheduled => '.',
            RoundActivity::Working => '#',
            RoundActivity::Thieving => 't',
            RoundActivity::Stealing => 'S',
            RoundActivity::Stalled => '!',
        }
    }
}

/// One completed steal attempt (`popTop` returning), in simulation time.
/// The outcome vocabulary is shared with the real runtime's telemetry
/// ([`abp_telemetry::StealOutcome`]) so simulator traces and pool traces
/// export through the same schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealRecord {
    /// Round (0-based) in which the attempt completed.
    pub round: u64,
    pub thief: ProcId,
    pub victim: ProcId,
    pub outcome: StealOutcome,
}

impl StealRecord {
    /// True for a steal that returned a node.
    pub fn hit(&self) -> bool {
        self.outcome == StealOutcome::Hit
    }
}

/// A complete per-round, per-process activity trace plus steal records.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// `rounds[r][p]` = what process `p` did in round `r` (0-based).
    pub rounds: Vec<Vec<RoundActivity>>,
    /// Every completed steal attempt, in completion order.
    pub steals: Vec<StealRecord>,
    /// Deque length of each process sampled at each round start.
    pub deque_depths: Vec<Vec<usize>>,
    /// Cache-model counters, present iff the run modelled caches
    /// (absent entries keep the telemetry exporters byte-stable).
    pub cache: Option<crate::cache::CacheStats>,
}

impl Trace {
    /// Number of traced rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True if nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Per-victim counts of completed steal attempts — Lemma 7's "balls
    /// into bins". Under uniform victim selection these are near-equal.
    pub fn victim_histogram(&self, p: usize) -> Vec<u64> {
        let mut h = vec![0u64; p];
        for s in &self.steals {
            h[s.victim.index()] += 1;
        }
        h
    }

    /// Chi-square statistic of the victim histogram against the uniform
    /// distribution over the *other* processes. (Thieves never target
    /// themselves, so with symmetric workloads every process is targeted
    /// equally often.)
    pub fn victim_chi_square(&self, p: usize) -> f64 {
        let h = self.victim_histogram(p);
        let total: u64 = h.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let expect = total as f64 / p as f64;
        h.iter()
            .map(|&o| {
                let d = o as f64 - expect;
                d * d / expect
            })
            .sum()
    }

    /// Fraction of scheduled process-rounds spent in each activity.
    pub fn activity_breakdown(&self) -> ActivityBreakdown {
        let mut b = ActivityBreakdown::default();
        for round in &self.rounds {
            for &a in round {
                match a {
                    RoundActivity::Unscheduled => b.unscheduled += 1,
                    RoundActivity::Working => b.working += 1,
                    RoundActivity::Thieving => b.thieving += 1,
                    RoundActivity::Stealing => b.stealing += 1,
                    RoundActivity::Stalled => b.stalled += 1,
                }
            }
        }
        b
    }

    /// Largest deque depth any process ever reached — the array headroom
    /// a fixed-capacity ABP deque needs for this run.
    pub fn max_deque_depth(&self) -> usize {
        self.deque_depths
            .iter()
            .flat_map(|row| row.iter().copied())
            .max()
            .unwrap_or(0)
    }

    /// Renders an ASCII timeline: one row per process, one column per
    /// round (`#` working, `S` successful steal, `t` thieving, `.`
    /// unscheduled, `!` stalled). Long traces are downsampled to
    /// `max_cols` columns by majority vote.
    pub fn render_timeline(&self, max_cols: usize) -> String {
        if self.rounds.is_empty() {
            return String::from("(empty trace)\n");
        }
        let p = self.rounds[0].len();
        let n = self.rounds.len();
        let cols = n.min(max_cols.max(1));
        let mut out = String::new();
        for proc in 0..p {
            out.push_str(&format!("p{proc:<3}|"));
            for c in 0..cols {
                let lo = c * n / cols;
                let hi = ((c + 1) * n / cols).max(lo + 1);
                // Majority activity in the window, with Working favoured.
                let mut counts = [0u32; 5];
                for r in lo..hi.min(n) {
                    let idx = match self.rounds[r][proc] {
                        RoundActivity::Unscheduled => 0,
                        RoundActivity::Working => 1,
                        RoundActivity::Thieving => 2,
                        RoundActivity::Stealing => 3,
                        RoundActivity::Stalled => 4,
                    };
                    counts[idx] += 1;
                }
                let glyphs = ['.', '#', 't', 'S', '!'];
                // Ties favour the more "productive" glyph: working (1)
                // first, then stealing (3), thieving (2), stalled (4),
                // unscheduled (0).
                let priority = [0usize, 4, 2, 3, 1];
                let best = (0..5).max_by_key(|&i| (counts[i], priority[i])).unwrap();
                out.push(glyphs[best]);
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "    {} rounds ({} per column); # work, S steal, t thieve, . unscheduled, ! stalled\n",
            n,
            n.div_ceil(cols)
        ));
        out
    }
}

/// Totals from [`Trace::activity_breakdown`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityBreakdown {
    pub unscheduled: u64,
    pub working: u64,
    pub thieving: u64,
    pub stealing: u64,
    pub stalled: u64,
}

impl ActivityBreakdown {
    /// Scheduled process-rounds (everything except unscheduled).
    pub fn scheduled(&self) -> u64 {
        self.working + self.thieving + self.stealing + self.stalled
    }

    /// Fraction of scheduled rounds spent making direct progress.
    pub fn working_fraction(&self) -> f64 {
        if self.scheduled() == 0 {
            return 0.0;
        }
        (self.working + self.stealing) as f64 / self.scheduled() as f64
    }
}

impl fmt::Display for ActivityBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "working {} | stealing {} | thieving {} | stalled {} | unscheduled {}",
            self.working, self.stealing, self.thieving, self.stalled, self.unscheduled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(rounds: Vec<Vec<RoundActivity>>) -> Trace {
        Trace {
            rounds,
            ..Trace::default()
        }
    }

    #[test]
    fn breakdown_counts() {
        use RoundActivity::*;
        let t = mk(vec![
            vec![Working, Unscheduled, Thieving],
            vec![Stealing, Working, Stalled],
        ]);
        let b = t.activity_breakdown();
        assert_eq!(b.working, 2);
        assert_eq!(b.stealing, 1);
        assert_eq!(b.thieving, 1);
        assert_eq!(b.stalled, 1);
        assert_eq!(b.unscheduled, 1);
        assert_eq!(b.scheduled(), 5);
        assert!((b.working_fraction() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn victim_histogram_and_chi_square() {
        let mut t = mk(vec![]);
        // Perfectly uniform: chi-square is 0.
        for v in 0..4u32 {
            for _ in 0..10 {
                t.steals.push(StealRecord {
                    round: 0,
                    thief: ProcId(0),
                    victim: ProcId(v),
                    outcome: StealOutcome::Empty,
                });
            }
        }
        assert_eq!(t.victim_histogram(4), vec![10, 10, 10, 10]);
        assert!(t.victim_chi_square(4) < 1e-12);
        // Skewed: chi-square grows.
        for _ in 0..40 {
            t.steals.push(StealRecord {
                round: 1,
                thief: ProcId(1),
                victim: ProcId(2),
                outcome: StealOutcome::Hit,
            });
        }
        assert!(t.victim_chi_square(4) > 10.0);
    }

    #[test]
    fn timeline_renders_rows_and_glyphs() {
        use RoundActivity::*;
        let t = mk(vec![
            vec![Working, Unscheduled],
            vec![Working, Thieving],
            vec![Stealing, Thieving],
        ]);
        let s = t.render_timeline(10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3); // two process rows + legend
        assert!(lines[0].starts_with("p0"));
        assert!(lines[0].contains('#'));
        assert!(lines[1].contains('t'));
    }

    #[test]
    fn timeline_downsamples() {
        use RoundActivity::*;
        let t = mk((0..1000).map(|_| vec![Working]).collect());
        let s = t.render_timeline(50);
        let first = s.lines().next().unwrap();
        // p0 label + ≤ 50 glyph columns.
        assert!(first.len() <= 5 + 50);
    }

    #[test]
    fn empty_trace_is_harmless() {
        let t = mk(vec![]);
        assert!(t.is_empty());
        assert_eq!(t.max_deque_depth(), 0);
        assert_eq!(t.victim_chi_square(4), 0.0);
        assert_eq!(t.render_timeline(10), "(empty trace)\n");
    }
}
