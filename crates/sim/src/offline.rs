//! Offline execution schedules (Section 2): greedy and level-by-level.
//!
//! Given a kernel schedule and a computation dag, an *execution schedule*
//! assigns ready nodes to the scheduled processes at each step. Theorem 2
//! shows any **greedy** schedule (one that executes `min(p_i, #ready)`
//! nodes at step `i`) has length at most `(T₁ + T∞·(P−1)) / P_A`; Brent's
//! level-by-level schedules satisfy the same bound. Theorem 1 lower-bounds
//! *every* schedule by `T₁/P_A`, and by `T∞·P/P_A` under the kernel
//! schedules of [`abp_kernel::Theorem1Kernel`].

use abp_dag::{Dag, NodeId, ProcId};
use abp_kernel::KernelTable;

/// A completed execution schedule: per step, what each scheduled process
/// did (`Some(node)` = executed that node, `None` = idle).
#[derive(Debug, Clone)]
pub struct ExecutionSchedule {
    pub steps: Vec<Vec<(ProcId, Option<NodeId>)>>,
}

impl ExecutionSchedule {
    /// The schedule's length `T` (number of steps).
    pub fn length(&self) -> u64 {
        self.steps.len() as u64
    }

    /// Σ pᵢ over the schedule.
    pub fn proc_steps(&self) -> u64 {
        self.steps.iter().map(|s| s.len() as u64).sum()
    }

    /// The processor average over the schedule's length.
    pub fn processor_average(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.proc_steps() as f64 / self.length() as f64
    }

    /// Steps at which some scheduled process idled.
    pub fn idle_steps(&self) -> u64 {
        self.steps
            .iter()
            .filter(|s| s.iter().any(|(_, n)| n.is_none()))
            .count() as u64
    }

    /// Total idle process-steps (the "idle bucket" of Theorem 2's proof).
    pub fn idle_tokens(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.iter().filter(|(_, n)| n.is_none()).count() as u64)
            .sum()
    }

    /// Verifies this is a valid execution schedule for `dag`: every node
    /// executed exactly once, dependencies respected, and the per-step
    /// process sets consistent with `table`.
    pub fn validate(&self, dag: &Dag, table: &KernelTable) -> Result<(), String> {
        let mut executed_at = vec![None::<u64>; dag.num_nodes()];
        for (idx, step) in self.steps.iter().enumerate() {
            let step_no = idx as u64 + 1;
            let scheduled = table.at(step_no);
            if step.len() != scheduled.len() {
                return Err(format!(
                    "step {step_no}: {} entries but kernel scheduled {}",
                    step.len(),
                    scheduled.len()
                ));
            }
            for &(p, node) in step {
                if !scheduled.contains(p) {
                    return Err(format!("step {step_no}: process {p} was not scheduled"));
                }
                if let Some(u) = node {
                    if executed_at[u.index()].is_some() {
                        return Err(format!("node {u} executed twice"));
                    }
                    executed_at[u.index()] = Some(step_no);
                }
            }
            // No two processes execute the same node at one step is covered
            // by the executed-twice check since we record immediately.
        }
        for i in 0..dag.num_nodes() {
            let u = NodeId(i as u32);
            let t = executed_at[i].ok_or_else(|| format!("node {u} never executed"))?;
            for &p in dag.preds(u) {
                let tp = executed_at[p.index()].unwrap();
                if tp >= t {
                    return Err(format!("dependency violated: {p}@{tp} !< {u}@{t}"));
                }
            }
        }
        Ok(())
    }

    /// Renders the Figure-2(b) style table: one row per step, one column
    /// per process, entries `vK` or `I`.
    pub fn render(&self, p: usize) -> String {
        let mut out = String::from("step |");
        for q in 0..p {
            out.push_str(&format!("  p{q}  |"));
        }
        out.push('\n');
        for (idx, step) in self.steps.iter().enumerate() {
            out.push_str(&format!("{:4} |", idx + 1));
            for q in 0..p {
                let cell = step
                    .iter()
                    .find(|(pid, _)| pid.index() == q)
                    .map(|(_, n)| match n {
                        Some(u) => format!("{u}"),
                        None => "I".to_string(),
                    })
                    .unwrap_or_default();
                out.push_str(&format!("{cell:^6}|"));
            }
            out.push('\n');
        }
        out
    }
}

/// Runs the **greedy** offline scheduler: at each step, executes
/// `min(p_i, #ready)` ready nodes (lowest node id first, for determinism).
/// Panics if `max_steps` elapse without finishing (e.g. a kernel schedule
/// that stays at zero forever).
///
/// ```
/// use abp_dag::gen;
/// use abp_kernel::KernelTable;
/// use abp_sim::greedy;
///
/// let dag = gen::chain(10); // fully serial
/// let sched = greedy(&dag, &KernelTable::dedicated(4), 1_000);
/// assert_eq!(sched.length(), 10); // T = T∞, processes can't help
/// assert_eq!(sched.idle_tokens(), 10 * 3);
/// ```
pub fn greedy(dag: &Dag, table: &KernelTable, max_steps: u64) -> ExecutionSchedule {
    run_offline(dag, table, max_steps, |ready, _level_of| {
        let mut r: Vec<NodeId> = ready.to_vec();
        r.sort_unstable();
        r
    })
}

/// Runs Brent's **level-by-level** scheduler: only nodes of the lowest
/// incomplete level are eligible at each step.
pub fn brent(dag: &Dag, table: &KernelTable, max_steps: u64) -> ExecutionSchedule {
    run_offline(dag, table, max_steps, |ready, level_of| {
        let min_level = ready.iter().map(|&u| level_of(u)).min().unwrap();
        let mut r: Vec<NodeId> = ready
            .iter()
            .copied()
            .filter(|&u| level_of(u) == min_level)
            .collect();
        r.sort_unstable();
        r
    })
}

fn run_offline(
    dag: &Dag,
    table: &KernelTable,
    max_steps: u64,
    eligible: impl Fn(&[NodeId], &dyn Fn(NodeId) -> u32) -> Vec<NodeId>,
) -> ExecutionSchedule {
    let mut remaining: Vec<u32> = (0..dag.num_nodes())
        .map(|i| dag.in_degree(NodeId(i as u32)) as u32)
        .collect();
    let mut ready: Vec<NodeId> = vec![dag.root()];
    let mut executed = 0usize;
    let mut steps = Vec::new();
    let level_of = |u: NodeId| dag.depth(u);
    let mut step_no = 0u64;
    while executed < dag.num_nodes() {
        step_no += 1;
        assert!(
            step_no <= max_steps,
            "offline schedule did not finish within {max_steps} steps"
        );
        let procs = table.at(step_no);
        let elig = if ready.is_empty() {
            Vec::new()
        } else {
            eligible(&ready, &level_of)
        };
        let take = elig.len().min(procs.len());
        let chosen: Vec<NodeId> = elig.into_iter().take(take).collect();
        // Execute them.
        let mut row = Vec::with_capacity(procs.len());
        let mut it = chosen.iter();
        for p in procs.iter() {
            row.push((p, it.next().copied()));
        }
        for &u in &chosen {
            ready.retain(|&v| v != u);
            executed += 1;
            for &(v, _) in dag.succs(u) {
                remaining[v.index()] -= 1;
                if remaining[v.index()] == 0 {
                    ready.push(v);
                }
            }
        }
        steps.push(row);
    }
    ExecutionSchedule { steps }
}

/// Exact minimum execution-schedule length for *small* dags (≤ 24 nodes)
/// by breadth-first search over executed-node sets.
///
/// The paper remarks (§2) that the offline decision problem is
/// NP-complete \[37\] but that for any kernel schedule *some greedy
/// execution schedule is optimal*; this oracle lets the tests check that
/// claim exhaustively on small instances (only maximal — greedy — moves
/// need exploring, because executing a superset of nodes at a step never
/// shrinks the later option set).
///
/// Panics if the dag has more than 24 nodes or no schedule of length
/// `≤ max_steps` exists.
pub fn optimal_length(dag: &Dag, table: &KernelTable, max_steps: u64) -> u64 {
    let n = dag.num_nodes();
    assert!(n <= 24, "optimal_length is exponential; dag has {n} nodes");
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };
    let ready_of = |mask: u32| -> Vec<usize> {
        (0..n)
            .filter(|&i| {
                mask & (1 << i) == 0
                    && dag
                        .preds(NodeId(i as u32))
                        .iter()
                        .all(|p| mask & (1 << p.index()) != 0)
            })
            .collect()
    };
    // Recursively enumerates all size-`take` subsets of `ready[from..]`
    // OR-ed into `mask`, feeding each completed mask to `emit`.
    fn combos(ready: &[usize], from: usize, take: usize, mask: u32, emit: &mut impl FnMut(u32)) {
        if take == 0 {
            emit(mask);
            return;
        }
        // Not enough elements left to fill the subset.
        if ready.len() - from < take {
            return;
        }
        combos(ready, from + 1, take - 1, mask | (1 << ready[from]), emit);
        combos(ready, from + 1, take, mask, emit);
    }

    let mut frontier: std::collections::HashSet<u32> = [0u32].into_iter().collect();
    for step in 1..=max_steps {
        let p_t = table.count_at(step);
        let mut next = std::collections::HashSet::new();
        let mut finished = false;
        for &mask in &frontier {
            let ready = ready_of(mask);
            let take = ready.len().min(p_t);
            if take == 0 {
                next.insert(mask);
                continue;
            }
            combos(&ready, 0, take, mask, &mut |m2| {
                if m2 == full {
                    finished = true;
                }
                next.insert(m2);
            });
        }
        if finished {
            return step;
        }
        frontier = next;
        assert!(!frontier.is_empty(), "search space vanished");
    }
    panic!("no execution schedule within {max_steps} steps");
}

/// The Figure-2(b) reproduction: a greedy execution of the Figure-1 dag
/// under the Figure-2(a) kernel schedule. Its length is exactly 10 steps
/// with 9 idle process-slots, matching the figure's structure.
pub fn figure2_execution() -> (ExecutionSchedule, abp_dag::Dag, KernelTable) {
    let (dag, _) = abp_dag::examples::figure1();
    let table = abp_kernel::figure2_kernel();
    let sched = greedy(&dag, &table, 1000);
    (sched, dag, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_dag::gen;
    use abp_kernel::{Tail, Theorem1Kernel};

    #[test]
    fn figure2_reproduction() {
        let (sched, dag, table) = figure2_execution();
        sched.validate(&dag, &table).unwrap();
        assert_eq!(sched.length(), 10, "\n{}", sched.render(3));
        assert_eq!(sched.proc_steps(), 20);
        assert!((sched.processor_average() - 2.0).abs() < 1e-12);
        assert_eq!(sched.idle_tokens(), 20 - 11);
    }

    #[test]
    fn greedy_dedicated_meets_theorem2() {
        for (dag, p) in [
            (gen::fork_join_tree(6, 2), 4usize),
            (gen::fib(12, 3), 8),
            (gen::chain(50), 3),
            (gen::wide_shallow(32, 10), 16),
        ] {
            let table = KernelTable::dedicated(p);
            let sched = greedy(&dag, &table, 10_000_000);
            sched.validate(&dag, &table).unwrap();
            let t = sched.length() as f64;
            let pa = sched.processor_average();
            let bound = (dag.work() as f64 + dag.critical_path() as f64 * (p as f64 - 1.0)) / pa;
            assert!(t <= bound + 1e-9, "T={t} > bound={bound}");
            // And the universal lower bound T ≥ T1/PA.
            assert!(t >= dag.work() as f64 / pa - 1e-9);
        }
    }

    #[test]
    fn brent_meets_theorem2_bound_too() {
        for (dag, p) in [(gen::fork_join_tree(5, 2), 4usize), (gen::fib(11, 3), 6)] {
            let table = KernelTable::dedicated(p);
            let sched = brent(&dag, &table, 10_000_000);
            sched.validate(&dag, &table).unwrap();
            let t = sched.length() as f64;
            let pa = sched.processor_average();
            let bound = (dag.work() as f64 + dag.critical_path() as f64 * (p as f64 - 1.0)) / pa;
            assert!(t <= bound + 1e-9, "T={t} > bound={bound}");
        }
    }

    #[test]
    fn greedy_never_longer_than_brent() {
        // Not a theorem, but on dedicated machines greedy dominates the
        // level-by-level schedule for these shapes.
        let dag = gen::fib(12, 3);
        let table = KernelTable::dedicated(4);
        let g = greedy(&dag, &table, 10_000_000).length();
        let b = brent(&dag, &table, 10_000_000).length();
        assert!(g <= b, "greedy {g} vs brent {b}");
    }

    #[test]
    fn theorem1_lower_bound_holds_for_greedy_and_brent() {
        let dag = gen::fork_join_tree(5, 2);
        let p = 8;
        for k in [0u64, 1, 3] {
            let table = Theorem1Kernel::new(p, dag.critical_path(), k).to_table();
            for sched in [
                greedy(&dag, &table, 10_000_000),
                brent(&dag, &table, 10_000_000),
            ] {
                sched.validate(&dag, &table).unwrap();
                let t = sched.length() as f64;
                let pa = sched.processor_average();
                let lower = dag.critical_path() as f64 * p as f64 / pa;
                assert!(t >= lower - 1e-9, "k={k}: T={t} < T∞·P/P_A={lower}");
                assert!(t >= dag.work() as f64 / pa - 1e-9);
            }
        }
    }

    #[test]
    fn chain_serializes_regardless_of_processes() {
        let dag = gen::chain(40);
        let table = KernelTable::dedicated(8);
        let sched = greedy(&dag, &table, 10_000);
        assert_eq!(sched.length(), 40);
        // Every step has 7 idle processes.
        assert_eq!(sched.idle_tokens(), 40 * 7);
    }

    #[test]
    fn zero_proc_steps_stall_schedule() {
        let dag = gen::chain(5);
        // 2 dead steps then one process.
        let table = KernelTable::from_counts(2, &[0, 0], Tail::HoldLast);
        // HoldLast holds the *last explicit* step (0 procs) — would never
        // finish; give it a real tail instead.
        let table2 = KernelTable::from_counts(2, &[0, 0, 1], Tail::HoldLast);
        let _ = table;
        let sched = greedy(&dag, &table2, 1000);
        assert_eq!(sched.length(), 2 + 5);
    }

    #[test]
    #[should_panic(expected = "did not finish")]
    fn starved_schedule_panics_at_cap() {
        let dag = gen::chain(5);
        let table = KernelTable::from_counts(1, &[0], Tail::HoldLast);
        greedy(&dag, &table, 100);
    }

    #[test]
    fn figure2_greedy_is_optimal() {
        // The paper: "for any kernel schedule, some greedy execution
        // schedule is optimal." On the Figure-2 instance *our* greedy
        // choice achieves the optimum exactly.
        let (sched, dag, table) = figure2_execution();
        let opt = optimal_length(&dag, &table, 100);
        assert_eq!(opt, sched.length());
    }

    #[test]
    fn greedy_close_to_optimal_on_small_instances() {
        for (dag, p) in [
            (gen::fork_join_tree(1, 2), 2usize),
            (gen::fork_join_tree(1, 2), 3),
            (gen::fib(4, 2), 2),
            (gen::sync_pipeline(2, 4), 2),
            (gen::wavefront(3, 3), 2),
        ] {
            assert!(dag.num_nodes() <= 24, "test instance too big");
            let tables = [
                KernelTable::dedicated(p),
                KernelTable::from_counts(p, &[p, 1, 1], Tail::Cycle),
                KernelTable::from_counts(p, &[1, 0, p], Tail::Cycle),
            ];
            for table in tables {
                let g = greedy(&dag, &table, 100_000).length();
                let opt = optimal_length(&dag, &table, 100_000);
                assert!(g >= opt, "greedy {g} beat 'optimal' {opt}?!");
                assert!(
                    g <= 2 * opt,
                    "greedy {g} more than 2x optimal {opt} (T1={}, Tinf={})",
                    dag.work(),
                    dag.critical_path()
                );
                // Optimal itself respects the universal lower bounds.
                assert!(opt >= dag.critical_path());
            }
        }
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn optimal_rejects_large_dags() {
        let dag = gen::fork_join_tree(5, 2);
        optimal_length(&dag, &KernelTable::dedicated(2), 1000);
    }

    #[test]
    fn render_shows_idles() {
        let (sched, ..) = figure2_execution();
        let s = sched.render(3);
        assert!(s.contains('I'));
        assert!(s.contains("v1"));
        assert_eq!(s.lines().count(), 11);
    }

    #[test]
    fn validate_rejects_tampered_schedule() {
        let (mut sched, dag, table) = figure2_execution();
        // Swap two steps' contents: dependencies must now fail.
        sched.steps.swap(0, 1);
        assert!(sched.validate(&dag, &table).is_err());
    }
}
