//! A deterministic per-process LRU cache model for the stepped simulator.
//!
//! The Gu/Napier/Sun analysis of work-stealing cache complexity charges
//! every *deviation* — a node executed on a different process than its
//! enabling-tree designated parent — at most `O(M)` extra misses over
//! the serial execution. To check that bound the simulator needs a
//! cache it can reason about exactly, so this module provides:
//!
//! * [`LruCache`] — a fully associative cache of `M` lines with strict
//!   LRU replacement (the policy the bound is stated for);
//! * [`CacheConfig`] — the per-process capacity and the node-to-line
//!   mapping granularity;
//! * [`CacheStats`] — aggregate and per-process counters, including
//!   the deviation count the bound consumes.
//!
//! # Access model
//!
//! Executing node `u` on process `i` touches two lines of `i`'s cache:
//!
//! 1. the **frame line** of `u`'s thread (`FRAME_BASE + thread`), so
//!    consecutive nodes of one task hit;
//! 2. the **data line** `u.index() / block`, modelling a sequentially
//!    allocated array traversed in construction order — the `P = 1`
//!    execution (depth-first, matching index order for the tree and
//!    fork-join generators) walks blocks contiguously, so its misses
//!    are near-compulsory and every extra parallel miss is attributable
//!    to a steal or a join migration.

use abp_dag::{NodeId, ThreadId};

/// Address-space offset separating thread-frame lines from data lines,
/// so the two streams never alias (dags stay far below 2³² nodes).
const FRAME_BASE: u64 = 1 << 32;

/// Parameters of the per-process cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity `M` of each process's cache, in lines.
    pub lines: usize,
    /// Consecutive dag nodes sharing one data line (block size `B` in
    /// node units).
    pub block: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        // Small enough that real workloads exercise capacity misses,
        // large enough that one task's working set (frame + a few
        // blocks) fits.
        CacheConfig {
            lines: 16,
            block: 4,
        }
    }
}

impl CacheConfig {
    /// Replaces the line capacity.
    pub fn with_lines(mut self, lines: usize) -> Self {
        self.lines = lines;
        self
    }

    /// Replaces the block granularity.
    pub fn with_block(mut self, block: usize) -> Self {
        self.block = block;
        self
    }

    /// The frame line of thread `t`.
    pub fn frame_line(&self, t: ThreadId) -> u64 {
        FRAME_BASE + t.index() as u64
    }

    /// The data line of node `u`.
    pub fn data_line(&self, u: NodeId) -> u64 {
        u.index() as u64 / self.block.max(1) as u64
    }
}

/// A fully associative LRU cache over abstract line addresses.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    /// Resident lines, least recently used first.
    lines: Vec<u64>,
}

impl LruCache {
    /// An empty cache of `capacity` lines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "a cache needs at least one line");
        LruCache {
            capacity,
            lines: Vec::with_capacity(capacity),
        }
    }

    /// Touches `line`: returns `true` on a hit, `false` on a miss. The
    /// line becomes most recently used either way; on a miss with a
    /// full cache the least recently used line is evicted.
    pub fn access(&mut self, line: u64) -> bool {
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.push(line);
            return true;
        }
        if self.lines.len() == self.capacity {
            self.lines.remove(0);
        }
        self.lines.push(line);
        false
    }

    /// Resident lines, least recently used first.
    pub fn contents(&self) -> &[u64] {
        &self.lines
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// True before the first access.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }
}

/// Counters collected by the cache model over one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Line accesses performed (two per executed node).
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Deviations: nodes executed on a different process than their
    /// enabling-tree designated parent (the bound's migration count).
    pub deviations: u64,
    /// Misses per process.
    pub per_proc_misses: Vec<u64>,
    /// Capacity `M` the run was modelled with, in lines.
    pub lines: u64,
    /// Data-line block granularity the run was modelled with.
    pub block: u64,
}

impl CacheStats {
    /// Fresh counters for `p` processes under `config`.
    pub fn new(p: usize, config: &CacheConfig) -> Self {
        CacheStats {
            per_proc_misses: vec![0; p],
            lines: config.lines as u64,
            block: config.block as u64,
            ..CacheStats::default()
        }
    }

    /// Overall miss rate.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            return 0.0;
        }
        self.misses as f64 / self.accesses as f64
    }

    /// Records one access by process `i`.
    pub fn record(&mut self, i: usize, hit: bool) {
        self.accesses += 1;
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            self.per_proc_misses[i] += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_dag::DetRng;

    /// The tiny hand-computed reference: capacity 2, access sequence
    /// A B A C B C A with expected hit/miss pattern worked out on
    /// paper. LRU state shown LRU→MRU after each access.
    #[test]
    fn hand_computed_reference_trace() {
        let mut c = LruCache::new(2);
        let trace = [
            (10u64, false), // miss          [10]
            (20, false),    // miss          [10 20]
            (10, true),     // hit           [20 10]
            (30, false),    // miss, evict 20 [10 30]
            (20, false),    // miss, evict 10 [30 20]
            (30, true),     // hit           [20 30]
            (10, false),    // miss, evict 20 [30 10]
        ];
        for (i, &(line, expect_hit)) in trace.iter().enumerate() {
            assert_eq!(c.access(line), expect_hit, "access {i} (line {line})");
        }
        assert_eq!(c.contents(), &[30, 10]);
    }

    #[test]
    fn capacity_one_hits_only_on_repeats() {
        let mut c = LruCache::new(1);
        assert!(!c.access(1));
        assert!(c.access(1));
        assert!(!c.access(2));
        assert!(!c.access(1));
        assert_eq!(c.len(), 1);
    }

    /// Eviction-order property under `DetRng`: the model must agree
    /// with an independently implemented recency list on a long random
    /// access stream, and never exceed capacity.
    #[test]
    fn lru_matches_reference_model_on_random_streams() {
        for seed in 0..4u64 {
            let mut rng = DetRng::new(0xCAC4E + seed);
            let cap = 1 + rng.below_usize(8);
            let mut c = LruCache::new(cap);
            let mut reference: Vec<u64> = Vec::new(); // LRU first
            for _ in 0..2000 {
                let line = rng.below(16);
                let expect_hit = reference.contains(&line);
                reference.retain(|&l| l != line);
                reference.push(line);
                if reference.len() > cap {
                    reference.remove(0);
                }
                assert_eq!(c.access(line), expect_hit, "seed {seed} line {line}");
                assert_eq!(c.contents(), &reference[..], "seed {seed}");
                assert!(c.len() <= cap);
            }
        }
    }

    #[test]
    fn stats_record_and_split_per_proc() {
        let cfg = CacheConfig::default();
        let mut s = CacheStats::new(2, &cfg);
        s.record(0, false);
        s.record(0, true);
        s.record(1, false);
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert_eq!(s.per_proc_misses, vec![1, 1]);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn line_mapping_separates_frames_from_data() {
        let cfg = CacheConfig::default().with_block(4);
        // Nodes 0..3 share a data line; 4 starts the next.
        assert_eq!(cfg.data_line(NodeId(0)), cfg.data_line(NodeId(3)));
        assert_ne!(cfg.data_line(NodeId(3)), cfg.data_line(NodeId(4)));
        // Frame lines never collide with data lines.
        assert!(cfg.frame_line(ThreadId(0)) > cfg.data_line(NodeId(u32::MAX)));
    }
}
