//! The non-blocking work stealer (Figure 3), executed one instruction at a
//! time under an adversarial kernel.
//!
//! Every process runs the scheduling loop as a small state machine whose
//! transitions each consume exactly one *instruction*:
//!
//! * executing the assigned node — 1 instruction (a **milestone**);
//! * a deque operation — 1 instruction per shared-memory access of the
//!   Figure-5 pseudocode ([`abp_deque::sim_deque`]), with `popTop`
//!   completion a **milestone**;
//! * `yield` and victim selection — 1 instruction each.
//!
//! The kernel schedules *rounds* (§4.1): each round it picks a set of
//! processes (filtered through the yield constraints), and every chosen
//! process executes between `2C` and `3C` instructions, where
//! [`MILESTONE_C`] is large enough that any `C` consecutive instructions
//! of a process contain a milestone. A steal attempt completing at its
//! process's *second* milestone of a round is a **throw** — the quantity
//! the analysis of Section 4 counts.

use crate::cache::{CacheConfig, CacheStats, LruCache};
use crate::invariants::{check_structural_lemma, PotentialTracker, ReadyState};
use crate::locked_deque::{LockKind, LockOp, LockStepOutcome, LockedSimDeque, LockedSteal};
use crate::metrics::{PhaseStats, RunReport};
use crate::trace::{RoundActivity, StealRecord, Trace};
use abp_core::{
    BackoffAction, IdleAction, PolicyEngine, PolicyRng, PolicySet, StealResult, StealTally,
};
use abp_dag::{Dag, DetRng, EnablingTree, NodeId, ProcId};
use abp_deque::{DequeOp, SimDeque, SimSteal, StepOutcome};
use abp_kernel::{Kernel, KernelView, YieldLedger, YieldPolicy};
use abp_telemetry::StealOutcome;

/// The milestone constant `C`: any `C` consecutive instructions executed
/// by a process include a milestone. The longest milestone-free stretch is
/// a full `popBottom` returning NIL (7) followed by yield (1), victim
/// selection (1), and all but the last step of a `popTop` (3) — 12
/// instructions, plus slack.
pub const MILESTONE_C: u32 = 16;

/// Which deque implementation the scheduler uses — the A1 ablation axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DequeBackend {
    /// The non-blocking ABP deque (the paper's algorithm).
    #[default]
    Abp,
    /// The ABP deque with the tag mechanism disabled (§3.3's broken
    /// variant) — for demonstrations; unsafe.
    AbpUntagged,
    /// A blocking, lock-based deque.
    Locking,
}

/// When a node's execution enables two children, which becomes the new
/// assigned node (the paper proves its bounds for either choice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AssignPolicy {
    /// Assign the spawned/enabled thread's node, push the continuation —
    /// the depth-first order Cilk uses (the paper's "latter choice").
    #[default]
    SpawnFirst,
    /// Keep executing the current thread, push the newly enabled node.
    ContinueFirst,
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct WsConfig {
    pub yield_policy: YieldPolicy,
    pub backend: DequeBackend,
    pub assign: AssignPolicy,
    /// The scheduling-policy set (victim selection, contention backoff,
    /// idle behaviour). Defaults to [`PolicySet::paper`].
    pub policies: PolicySet,
    /// Seed for victim selection and quantum jitter.
    pub seed: u64,
    /// Abort the run after this many rounds (starvation protection for
    /// adversaries that defeat the configuration under test).
    pub max_rounds: u64,
    /// Check Lemma 3 / Corollary 4 at every deque-operation completion.
    pub check_structural: bool,
    /// Check Φ monotonicity at every round boundary (O(nodes) per round).
    pub check_potential: bool,
    /// Collect Lemma-8 phase statistics (phases of ≥ P throws).
    pub track_phases: bool,
    /// Record a full per-round activity [`Trace`] (adds O(P) per round
    /// plus one entry per steal attempt).
    pub trace: bool,
    /// Model per-process LRU caches of the given shape, counting hits,
    /// misses, and deviations per executed node (`None` = no model, and
    /// all cache counters stay structurally zero).
    pub cache: Option<CacheConfig>,
    /// Pool count `K` of the topology: processes partition into `K`
    /// contiguous pools and thieves scan their own pool first, crossing
    /// only with probability [`WsConfig::cross_steal`] (the federation
    /// model the `hood` runtime mirrors). `1` (the default) is the flat
    /// paper scheduler, bit-identical to the pre-topology simulator.
    pub pools: usize,
    /// Probability that a hierarchical victim draw goes *outside* the
    /// thief's pool. Only consulted when `pools > 1` and `flat_scan` is
    /// off; a thief alone in its pool always crosses.
    pub cross_steal: f64,
    /// Keep `pools > 1` accounting labels but scan all `P − 1` victims
    /// uniformly, like the flat scheduler — the control arm that
    /// isolates the victim-selection axis (remote-steal fractions stay
    /// at their topology-blind baseline).
    pub flat_scan: bool,
}

impl Default for WsConfig {
    fn default() -> Self {
        WsConfig {
            yield_policy: YieldPolicy::ToAll,
            backend: DequeBackend::Abp,
            assign: AssignPolicy::SpawnFirst,
            policies: PolicySet::paper(),
            seed: 0x5EED,
            max_rounds: 50_000_000,
            check_structural: false,
            check_potential: false,
            track_phases: false,
            trace: false,
            cache: None,
            pools: 1,
            cross_steal: 0.125,
            flat_scan: false,
        }
    }
}

impl WsConfig {
    /// Replaces the yield policy.
    pub fn with_yield_policy(mut self, yield_policy: YieldPolicy) -> Self {
        self.yield_policy = yield_policy;
        self
    }

    /// Replaces the deque backend.
    pub fn with_backend(mut self, backend: DequeBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the assignment policy.
    pub fn with_assign(mut self, assign: AssignPolicy) -> Self {
        self.assign = assign;
        self
    }

    /// Replaces the scheduling-policy set.
    pub fn with_policies(mut self, policies: PolicySet) -> Self {
        self.policies = policies;
        self
    }

    /// Replaces the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the round cap.
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Enables/disables the structural-lemma checker.
    pub fn with_check_structural(mut self, on: bool) -> Self {
        self.check_structural = on;
        self
    }

    /// Enables/disables the potential-monotonicity checker.
    pub fn with_check_potential(mut self, on: bool) -> Self {
        self.check_potential = on;
        self
    }

    /// Enables/disables Lemma-8 phase statistics.
    pub fn with_track_phases(mut self, on: bool) -> Self {
        self.track_phases = on;
        self
    }

    /// Enables/disables full per-round tracing.
    pub fn with_trace(mut self, on: bool) -> Self {
        self.trace = on;
        self
    }

    /// Enables the per-process LRU cache model.
    pub fn with_cache(mut self, cache: CacheConfig) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Replaces the pool count of the topology.
    pub fn with_pools(mut self, pools: usize) -> Self {
        self.pools = pools;
        self
    }

    /// Replaces the cross-pool steal probability.
    pub fn with_cross_steal(mut self, cross_steal: f64) -> Self {
        self.cross_steal = cross_steal;
        self
    }

    /// Enables/disables the topology-blind flat-scan control arm.
    pub fn with_flat_scan(mut self, on: bool) -> Self {
        self.flat_scan = on;
        self
    }

    /// The policy identity stamped on reports and telemetry:
    /// `"victim+backoff+idle/yield-policy"`.
    pub fn policy_label(&self) -> String {
        format!("{}/{}", self.policies.label(), self.yield_policy.label())
    }
}

/// An in-flight deque operation on either backend.
enum AnyOp {
    Sim(DequeOp),
    Locked(LockOp),
}

/// Unified completion result.
enum OpDone {
    NotDone,
    Push,
    PopBottom(Option<u64>),
    PopTop(Option<u64>, /*was_abort:*/ bool),
}

/// What a process is doing, at instruction granularity.
enum Phase {
    /// Top of the scheduling loop: execute assigned node or start
    /// stealing.
    Loop,
    /// `popBottom` in progress after the assigned thread died/blocked.
    PoppingBottom(AnyOp),
    /// `pushBottom(child)` in progress after enabling two children.
    Pushing(AnyOp),
    /// About to perform the yield system call.
    Yielding,
    /// About to pick a victim.
    PickingVictim,
    /// `popTop` on the victim's deque in progress. `observe_as` is the
    /// coordinate the policy engine sees the outcome under — the global
    /// index on a flat scan, the pool-local index on a hierarchical one,
    /// and `None` for cross-pool attempts, which bypass the victim
    /// selector entirely (its state lives in pool-local coordinates).
    Stealing {
        victim: usize,
        observe_as: Option<usize>,
        op: AnyOp,
    },
    /// Spinning in a contention backoff: `left` more milestone-free
    /// instructions, then yield (if `then_yield`) or attempt directly.
    Backing { left: u64, then_yield: bool },
    /// Parked by the idle policy for `left` more milestone-free
    /// instructions.
    Parked { left: u64 },
}

struct Proc {
    assigned: Option<NodeId>,
    phase: Phase,
    milestones_this_round: u32,
    engine: PolicyEngine,
}

/// One of the two deque arrays, depending on backend.
enum Deques {
    Sim(Vec<SimDeque>),
    Locked(Vec<LockedSimDeque>),
}

impl Deques {
    fn len_of(&self, i: usize) -> usize {
        match self {
            Deques::Sim(v) => v[i].len(),
            Deques::Locked(v) => v[i].len(),
        }
    }

    fn contents_bottom_to_top(&self, i: usize) -> Vec<u64> {
        match self {
            Deques::Sim(v) => {
                let mut c = v[i].contents();
                c.reverse(); // contents() is top→bottom
                c
            }
            Deques::Locked(v) => v[i].contents_bottom_to_top(),
        }
    }
}

/// The full simulator state for one run.
pub struct WorkStealer<'a> {
    dag: &'a Dag,
    config: WsConfig,
    procs: Vec<Proc>,
    deques: Deques,
    remaining_preds: Vec<u32>,
    executed: Vec<bool>,
    tree: EnablingTree,
    potential: PotentialTracker,
    done: bool,
    /// Whether the configured policy set keeps Lemma 7's milestone
    /// accounting valid (no spinning backoff, no parking).
    milestone_safe: bool,
    // Topology: pool of each process, [start, end) of each pool, the
    // pre-scaled cross-steal coin, and per-pool steal-back hints (the
    // global index of the last cross-pool thief that robbed the pool;
    // `usize::MAX` = none).
    pool_of: Vec<u32>,
    pool_bounds: Vec<(usize, usize)>,
    cross_coin: u64,
    last_thief: Vec<usize>,
    /// Ceiling on tasks per cross-pool round trip, from the policy set's
    /// batch axis (`1` = the single-steal default, no batching anywhere).
    batch_cap: usize,
    // measurement
    executed_count: u64,
    tally: StealTally,
    remote_attempts: u64,
    /// Per-pool attempt accounting (thief's pool) — each must balance
    /// on its own, and they sum to `tally`.
    pool_tallies: Vec<StealTally>,
    throws: u64,
    yields: u64,
    structural_violations: u64,
    potential_violations: u64,
    milestone_violations: u64,
    last_log_potential: f64,
    phase_throws: u64,
    phase_start_potential: f64,
    phase_stats: PhaseStats,
    ledger: YieldLedger,
    quantum_rng: DetRng,
    // Cache model (empty/zero when `config.cache` is None).
    caches: Vec<LruCache>,
    executed_on: Vec<u32>,
    cache_stats: CacheStats,
    trace: Trace,
    round_executed: Vec<bool>,
    round_attempted: Vec<bool>,
    round_stole: Vec<bool>,
}

impl<'a> WorkStealer<'a> {
    /// Prepares a run of `dag` on `p` processes.
    pub fn new(dag: &'a Dag, p: usize, config: WsConfig) -> Self {
        assert!(p >= 1);
        let k = config.pools;
        assert!(
            (1..=p).contains(&k),
            "pools must satisfy 1 <= pools ({k}) <= procs ({p})"
        );
        // A migrated batch lands at the *bottom* of the thief's deque,
        // which breaks the structural lemma's premise that every deque
        // reads as a designated-parent chain top-to-bottom — the checker
        // would report violations that are batching artifacts, not bugs.
        assert!(
            !(config.check_structural && config.policies.batch.is_batched()),
            "check_structural is incompatible with batched stealing: \
             migrated batches land at the thief's deque bottom, outside \
             Lemma 3's deque-ordering premise"
        );
        let pool_bounds: Vec<(usize, usize)> =
            (0..k).map(|j| (j * p / k, (j + 1) * p / k)).collect();
        let mut pool_of = vec![0u32; p];
        for (j, &(start, end)) in pool_bounds.iter().enumerate() {
            for slot in &mut pool_of[start..end] {
                *slot = j as u32;
            }
        }
        let mut seed_rng = DetRng::new(config.seed);
        let procs = (0..p)
            .map(|i| Proc {
                assigned: if i == 0 { Some(dag.root()) } else { None },
                phase: Phase::Loop,
                milestones_this_round: 0,
                engine: PolicyEngine::new(
                    &config.policies,
                    PolicyRng::from_det(seed_rng.fork(i as u64)),
                ),
            })
            .collect();
        let deques = match config.backend {
            DequeBackend::Abp => Deques::Sim((0..p).map(|_| SimDeque::new()).collect()),
            DequeBackend::AbpUntagged => {
                Deques::Sim((0..p).map(|_| SimDeque::with_tagging(false)).collect())
            }
            DequeBackend::Locking => {
                Deques::Locked((0..p).map(|_| LockedSimDeque::new()).collect())
            }
        };
        let tree = EnablingTree::new(dag);
        let potential = PotentialTracker::new(dag, &tree);
        let last_log_potential = potential.log_potential();
        WorkStealer {
            dag,
            procs,
            deques,
            remaining_preds: (0..dag.num_nodes())
                .map(|i| dag.in_degree(NodeId(i as u32)) as u32)
                .collect(),
            executed: vec![false; dag.num_nodes()],
            tree,
            phase_start_potential: last_log_potential,
            potential,
            done: false,
            milestone_safe: config.policies.preserves_milestones(),
            pool_of,
            pool_bounds,
            cross_coin: abp_core::coin_threshold(config.cross_steal),
            last_thief: vec![usize::MAX; k],
            batch_cap: config.policies.batch.cap(),
            executed_count: 0,
            tally: StealTally::default(),
            remote_attempts: 0,
            pool_tallies: vec![StealTally::default(); k],
            throws: 0,
            yields: 0,
            structural_violations: 0,
            potential_violations: 0,
            milestone_violations: 0,
            last_log_potential,
            phase_throws: 0,
            phase_stats: PhaseStats::default(),
            ledger: YieldLedger::new(p),
            quantum_rng: DetRng::new(config.seed ^ 0x9E3779B97F4A7C15),
            caches: match &config.cache {
                Some(c) => (0..p).map(|_| LruCache::new(c.lines)).collect(),
                None => Vec::new(),
            },
            executed_on: match &config.cache {
                Some(_) => vec![u32::MAX; dag.num_nodes()],
                None => Vec::new(),
            },
            cache_stats: match &config.cache {
                Some(c) => CacheStats::new(p, c),
                None => CacheStats::default(),
            },
            trace: Trace::default(),
            round_executed: vec![false; p],
            round_attempted: vec![false; p],
            round_stole: vec![false; p],
            config,
        }
    }

    /// Runs the scheduling loop under `kernel` until the final node
    /// executes or `max_rounds` elapse.
    pub fn run(mut self, kernel: &mut dyn Kernel) -> RunReport {
        assert_eq!(kernel.num_procs(), self.procs.len());
        let p = self.procs.len();
        let mut rounds = 0u64;
        let mut proc_rounds = 0u64;
        let mut instructions = 0u64;
        let mut wall_steps = 0u64;
        let use_yields = self.config.yield_policy != YieldPolicy::None;

        let mut has_assigned = vec![false; p];
        let mut deque_len = vec![0usize; p];
        let mut in_cs = vec![false; p];

        while !self.done && rounds < self.config.max_rounds {
            rounds += 1;
            for i in 0..p {
                has_assigned[i] = self.procs[i].assigned.is_some();
                deque_len[i] = self.deques.len_of(i);
            }
            // Lock-holder visibility (adaptive adversaries may exploit
            // this; trivially all-false for the non-blocking backends).
            in_cs.fill(false);
            if let Deques::Locked(dq) = &self.deques {
                for d in dq {
                    if let Some(h) = d.holder() {
                        in_cs[h as usize] = true;
                    }
                }
            }
            let view = KernelView {
                round: rounds,
                has_assigned: &has_assigned,
                deque_len: &deque_len,
                in_critical_section: &in_cs,
            };
            let raw = kernel.choose(&view);
            let chosen = if use_yields {
                self.ledger.enforce(&raw)
            } else {
                raw
            };
            proc_rounds += chosen.len() as u64;

            // Quanta: the kernel grants each scheduled process 2C..3C
            // instructions (its choice; here jittered deterministically).
            let scheduled: Vec<usize> = chosen.iter().map(|q| q.index()).collect();
            let quanta: Vec<u64> = scheduled
                .iter()
                .map(|_| {
                    self.quantum_rng
                        .range_inclusive(2 * MILESTONE_C as u64, 3 * MILESTONE_C as u64)
                })
                .collect();
            for &i in &scheduled {
                self.procs[i].milestones_this_round = 0;
            }
            if self.config.trace {
                self.trace.deque_depths.push(deque_len.clone());
                self.round_executed.fill(false);
                self.round_attempted.fill(false);
                self.round_stole.fill(false);
            }
            // Interleave instruction-by-instruction in round-robin order
            // with a random starting offset (the kernel may interleave
            // arbitrarily; this realizes one adversary-ish choice).
            let offset = if scheduled.is_empty() {
                0
            } else {
                self.quantum_rng.below_usize(scheduled.len())
            };
            let max_q = quanta.iter().copied().max().unwrap_or(0);
            'round: for step in 0..max_q {
                for k in 0..scheduled.len() {
                    let idx = (k + offset) % scheduled.len();
                    if step < quanta[idx] {
                        let proc = scheduled[idx];
                        self.instruction(proc);
                        instructions += 1;
                        if self.done {
                            break 'round;
                        }
                    }
                }
            }
            wall_steps += max_q;

            if use_yields {
                self.ledger.note_scheduled(&chosen);
            }
            // Milestone accounting: every scheduled process that received a
            // full quantum must have hit ≥ 2 milestones (§4.1) — guaranteed
            // for the non-blocking backends under the paper's policies,
            // and precisely what the Locking backend (and any spinning or
            // parking policy) loses.
            if !self.done && self.config.backend != DequeBackend::Locking && self.milestone_safe {
                for (pos, &i) in scheduled.iter().enumerate() {
                    if quanta[pos] >= 2 * MILESTONE_C as u64
                        && self.procs[i].milestones_this_round < 2
                    {
                        self.milestone_violations += 1;
                    }
                }
            }
            if self.config.trace {
                let row: Vec<RoundActivity> = (0..p)
                    .map(|i| {
                        if !scheduled.contains(&i) {
                            RoundActivity::Unscheduled
                        } else if self.round_stole[i] {
                            RoundActivity::Stealing
                        } else if self.round_executed[i] {
                            RoundActivity::Working
                        } else if self.round_attempted[i] {
                            RoundActivity::Thieving
                        } else {
                            RoundActivity::Stalled
                        }
                    })
                    .collect();
                self.trace.rounds.push(row);
            }
            if self.config.check_potential {
                let now = self.potential.log_potential();
                if now > self.last_log_potential + 1e-9 {
                    self.potential_violations += 1;
                }
                self.last_log_potential = now;
            }
        }

        let pa = if rounds == 0 {
            0.0
        } else {
            proc_rounds as f64 / rounds as f64
        };
        debug_assert!(
            self.tally.balanced(),
            "steal accounting identity violated: {:?}",
            self.tally
        );
        // Per-backend structural zeros in the five-way identity: every
        // simulated backend extracts exactly-once, and the blocking deque
        // waits out contention rather than aborting, so those terms must
        // be *exactly* zero — not merely balanced.
        assert_eq!(
            self.tally.duplicates, 0,
            "sim backend {:?} is exact, yet duplicates = {}",
            self.config.backend, self.tally.duplicates
        );
        if self.config.backend == DequeBackend::Locking {
            assert_eq!(
                self.tally.aborts, 0,
                "blocking popTop spins out contention, yet aborts = {}",
                self.tally.aborts
            );
        }
        // Topology accounting: the locality split is a sub-count of hits
        // (outside the identity), flat runs carry its structural zero,
        // each pool's tally balances on its own, and the pools sum to
        // the global tally.
        assert!(
            self.tally.locality_consistent(),
            "remote hits exceed hits: {:?}",
            self.tally
        );
        assert!(
            self.pool_bounds.len() > 1 || self.tally.remote_hits == 0,
            "flat run recorded remote steals: {}",
            self.tally.remote_hits
        );
        // The batch split is a second outside-the-identity axis: bounded
        // by hits, at least two tasks per batch, and *exactly* zero
        // under the single-steal default.
        assert!(
            self.tally.batch_consistent(),
            "batch accounting inconsistent: {:?}",
            self.tally
        );
        assert!(
            self.batch_cap > 1 || (self.tally.batch_steals == 0 && self.tally.batched_tasks == 0),
            "single-steal run recorded batches: {:?}",
            self.tally
        );
        let mut sum = StealTally::default();
        for (j, t) in self.pool_tallies.iter().enumerate() {
            assert!(t.balanced(), "pool {j} tally unbalanced: {t:?}");
            sum.merge(t);
        }
        assert_eq!(
            (
                sum.attempts,
                sum.hits,
                sum.aborts,
                sum.empties,
                sum.remote_hits,
                sum.batch_steals,
                sum.batched_tasks
            ),
            (
                self.tally.attempts,
                self.tally.hits,
                self.tally.aborts,
                self.tally.empties,
                self.tally.remote_hits,
                self.tally.batch_steals,
                self.tally.batched_tasks
            ),
            "per-pool tallies do not sum to the global tally"
        );
        // Structural zero: with the cache model disabled, no code path
        // may touch the cache counters — telemetry goldens rely on it.
        if self.config.cache.is_none() {
            assert_eq!(
                (
                    self.cache_stats.hits,
                    self.cache_stats.misses,
                    self.cache_stats.accesses
                ),
                (0, 0, 0),
                "cache counters moved with the model disabled"
            );
        }
        if self.config.trace {
            self.trace.cache = self.config.cache.map(|_| self.cache_stats.clone());
        }
        RunReport {
            rounds,
            proc_rounds,
            instructions,
            wall_steps,
            pa,
            work: self.dag.work(),
            critical_path: self.dag.critical_path(),
            procs: p,
            executed: self.executed_count,
            steal_attempts: self.tally.attempts,
            successful_steals: self.tally.hits,
            steal_aborts: self.tally.aborts,
            steal_empties: self.tally.empties,
            pools: self.pool_bounds.len(),
            remote_steals: self.tally.remote_hits,
            remote_attempts: self.remote_attempts,
            batch_steals: self.tally.batch_steals,
            batched_tasks: self.tally.batched_tasks,
            throws: self.throws,
            yields: self.yields,
            policy: self.config.policy_label(),
            completed: self.done,
            structural_violations: self.structural_violations,
            potential_violations: self.potential_violations,
            milestone_violations: self.milestone_violations,
            phases: if self.config.track_phases {
                Some(self.phase_stats.clone())
            } else {
                None
            },
            cache: if self.config.cache.is_some() {
                Some(std::mem::take(&mut self.cache_stats))
            } else {
                None
            },
            trace: if self.config.trace {
                Some(std::mem::take(&mut self.trace))
            } else {
                None
            },
        }
    }

    /// Executes one instruction of process `i`.
    fn instruction(&mut self, i: usize) {
        // Temporarily take the phase to appease the borrow checker.
        let phase = std::mem::replace(&mut self.procs[i].phase, Phase::Loop);
        let next = match phase {
            Phase::Loop => self.at_loop_top(i),
            Phase::PoppingBottom(op) => self.step_pop_bottom(i, op),
            Phase::Pushing(op) => self.step_push(i, op),
            Phase::Yielding => {
                self.yields += 1;
                let p = self.procs.len();
                match self.config.yield_policy {
                    YieldPolicy::None => unreachable!("Yielding phase with no yield policy"),
                    YieldPolicy::ToRandom => {
                        let target = self.procs[i].engine.uniform_other(i, p);
                        self.ledger
                            .yield_to_random(ProcId(i as u32), ProcId(target as u32));
                    }
                    YieldPolicy::ToAll => self.ledger.yield_to_all(ProcId(i as u32)),
                }
                Phase::PickingVictim
            }
            Phase::PickingVictim => self.pick_and_steal(i),
            Phase::Stealing {
                victim,
                observe_as,
                op,
            } => self.step_steal(i, victim, observe_as, op),
            Phase::Backing { left, then_yield } => {
                // One milestone-free spin instruction.
                if left > 1 {
                    Phase::Backing {
                        left: left - 1,
                        then_yield,
                    }
                } else if then_yield && self.config.yield_policy != YieldPolicy::None {
                    Phase::Yielding
                } else {
                    self.pick_and_steal(i)
                }
            }
            Phase::Parked { left } => {
                // One milestone-free parked instruction; on wake, hunt
                // again (skipping the idle check so the wake always
                // attempts at least one steal).
                if left > 1 {
                    Phase::Parked { left: left - 1 }
                } else {
                    self.after_idle(i)
                }
            }
        };
        self.procs[i].phase = next;
    }

    /// Top of the scheduling loop: execute the assigned node, or begin a
    /// hunt for work.
    fn at_loop_top(&mut self, i: usize) -> Phase {
        match self.procs[i].assigned {
            Some(u) => self.execute_node(i, u),
            None => match self.procs[i].engine.idle_action() {
                IdleAction::Park(n) => Phase::Parked { left: n as u64 },
                // The simulator has no producer-side wake events, so the
                // untimed park is approximated by the legacy 100-unit
                // bounded park (a sleeping simulated process must rejoin
                // the throw economy on its own).
                IdleAction::ParkUntilWake => Phase::Parked { left: 100 },
                IdleAction::Steal => self.after_idle(i),
            },
        }
    }

    /// The idle policy said to keep hunting: consult the backoff, then
    /// head for a steal attempt.
    fn after_idle(&mut self, i: usize) -> Phase {
        match self.procs[i].engine.backoff_action() {
            // The paper's path: yield (line 15), then pick a victim —
            // unless the yield ablation removed line 15, in which case
            // the victim draw happens right here, in this instruction.
            BackoffAction::Yield if self.config.yield_policy != YieldPolicy::None => {
                Phase::Yielding
            }
            BackoffAction::Yield | BackoffAction::Proceed => self.pick_and_steal(i),
            BackoffAction::Spin(n) => Phase::Backing {
                left: n as u64,
                then_yield: false,
            },
            BackoffAction::SpinThenYield(n) => Phase::Backing {
                left: n as u64,
                then_yield: true,
            },
        }
    }

    /// Picks the next victim (one scan of one attempt — the thief yields
    /// between attempts) and starts the `popTop`.
    ///
    /// On a flat run (`pools == 1`, or the flat-scan control arm) the
    /// engine draws over all `P − 1` others, consuming exactly the
    /// pre-topology rng stream. On a hierarchical run the engine runs in
    /// pool-local coordinates over the thief's own pool; a cross-steal
    /// coin (or being alone in the pool) sends the attempt outside,
    /// where the pool's steal-back hint is tried first and the victim
    /// selector is bypassed (`observe_as: None`).
    fn pick_and_steal(&mut self, i: usize) -> Phase {
        let p = self.procs.len();
        if self.pool_bounds.len() == 1 || self.config.flat_scan {
            let eng = &mut self.procs[i].engine;
            eng.begin_scan(i, p);
            let victim = eng.next_victim(i, p);
            return Phase::Stealing {
                victim,
                observe_as: Some(victim),
                op: self.new_op(LockKind::PopTop),
            };
        }
        let my_pool = self.pool_of[i] as usize;
        let (start, end) = self.pool_bounds[my_pool];
        let n_local = end - start;
        let eng = &mut self.procs[i].engine;
        if n_local > 1 && !eng.coin(self.cross_coin) {
            let me_local = i - start;
            eng.begin_scan(me_local, n_local);
            let v_local = eng.next_victim(me_local, n_local);
            return Phase::Stealing {
                victim: start + v_local,
                observe_as: Some(v_local),
                op: self.new_op(LockKind::PopTop),
            };
        }
        // Cross-pool: steal back from the last thief on record to have
        // robbed this pool, else draw uniformly over the other pools.
        let hint = self.last_thief[my_pool];
        let victim = if hint != usize::MAX {
            hint
        } else {
            let r = eng.draw_below(p - n_local);
            if r < start {
                r
            } else {
                r + n_local
            }
        };
        Phase::Stealing {
            victim,
            observe_as: None,
            op: self.new_op(LockKind::PopTop),
        }
    }

    /// Executes assigned node `u` (one instruction; a milestone).
    fn execute_node(&mut self, i: usize, u: NodeId) -> Phase {
        debug_assert!(!self.executed[u.index()], "{u} executed twice");
        debug_assert_eq!(
            self.remaining_preds[u.index()],
            0,
            "{u} executed while not ready"
        );
        self.executed[u.index()] = true;
        self.executed_count += 1;
        if let Some(cache_cfg) = self.config.cache {
            // A node run on a different process than its designated
            // parent is a deviation — the migration count of the
            // Gu/Napier/Sun extra-miss bound.
            self.executed_on[u.index()] = i as u32;
            if let Some(par) = self.tree.designated_parent(u) {
                let enabler = self.executed_on[par.index()];
                if enabler != i as u32 {
                    self.cache_stats.deviations += 1;
                    // The deviation signal doubles as the locality hint:
                    // the enabling processor plausibly still holds the
                    // rest of this subcomputation, so the `LastEnabler`
                    // victim policy targets it on the next scan — in the
                    // coordinate space that scan will run in. Cross-pool
                    // enablers are unreachable from a local scan and are
                    // dropped. `note_enabler` consumes no randomness, so
                    // other victim policies stay bit-identical.
                    let e = enabler as usize;
                    if self.pool_bounds.len() == 1 || self.config.flat_scan {
                        self.procs[i].engine.note_enabler(e);
                    } else if self.pool_of[e] == self.pool_of[i] {
                        let start = self.pool_bounds[self.pool_of[i] as usize].0;
                        self.procs[i].engine.note_enabler(e - start);
                    }
                }
            }
            let frame_hit = self.caches[i].access(cache_cfg.frame_line(self.dag.thread_of(u)));
            self.cache_stats.record(i, frame_hit);
            let data_hit = self.caches[i].access(cache_cfg.data_line(u));
            self.cache_stats.record(i, data_hit);
        }
        if self.config.trace {
            self.round_executed[i] = true;
        }
        self.milestone(i, false);
        self.potential.remove(u);
        if u == self.dag.final_node() {
            self.done = true;
            self.procs[i].assigned = None;
            return Phase::Loop;
        }
        // Determine enabled children.
        let mut enabled: Vec<(NodeId, abp_dag::EdgeKind)> = Vec::with_capacity(2);
        for &(v, kind) in self.dag.succs(u) {
            self.remaining_preds[v.index()] -= 1;
            if self.remaining_preds[v.index()] == 0 {
                self.tree.record(u, v);
                enabled.push((v, kind));
            }
        }
        match enabled.len() {
            0 => {
                // Die or block: get new work from the bottom of the deque.
                self.procs[i].assigned = None;
                Phase::PoppingBottom(self.new_op(LockKind::PopBottom))
            }
            1 => {
                let (v, _) = enabled[0];
                self.procs[i].assigned = Some(v);
                self.potential.insert(v, ReadyState::Assigned, &self.tree);
                Phase::Loop
            }
            _ => {
                // Enable or spawn: one child is assigned, the other pushed.
                let (a, b) = self.pick_assignment(enabled[0], enabled[1]);
                self.procs[i].assigned = Some(a);
                self.potential.insert(a, ReadyState::Assigned, &self.tree);
                self.potential.insert(b, ReadyState::InDeque, &self.tree);
                Phase::Pushing(self.new_op(LockKind::Push(b.index() as u64)))
            }
        }
    }

    /// Chooses (assigned, pushed) among two enabled children per policy.
    fn pick_assignment(
        &self,
        x: (NodeId, abp_dag::EdgeKind),
        y: (NodeId, abp_dag::EdgeKind),
    ) -> (NodeId, NodeId) {
        use abp_dag::EdgeKind::Continue;
        let (cont, other) = if x.1 == Continue {
            (Some(x.0), y.0)
        } else if y.1 == Continue {
            (Some(y.0), x.0)
        } else {
            (None, y.0)
        };
        match (cont, self.config.assign) {
            (Some(c), AssignPolicy::SpawnFirst) => (other, c),
            (Some(c), AssignPolicy::ContinueFirst) => (c, other),
            (None, _) => (x.0, y.0),
        }
    }

    fn new_op(&self, kind: LockKind) -> AnyOp {
        match self.config.backend {
            DequeBackend::Abp | DequeBackend::AbpUntagged => AnyOp::Sim(match kind {
                LockKind::Push(v) => DequeOp::push_bottom(v),
                LockKind::PopBottom => DequeOp::pop_bottom(),
                LockKind::PopTop => DequeOp::pop_top(),
            }),
            DequeBackend::Locking => AnyOp::Locked(LockOp::new(kind)),
        }
    }

    /// Steps an in-flight op against deque `target` on behalf of process
    /// `me`, translating both backends to a unified result.
    fn step_op(&mut self, me: usize, target: usize, op: &mut AnyOp) -> OpDone {
        match (op, &mut self.deques) {
            (AnyOp::Sim(op), Deques::Sim(dq)) => match op.step(&mut dq[target]) {
                StepOutcome::Continue => OpDone::NotDone,
                StepOutcome::PushDone => OpDone::Push,
                StepOutcome::PopBottomDone(r) => OpDone::PopBottom(r),
                StepOutcome::PopTopDone(SimSteal::Taken(v)) => OpDone::PopTop(Some(v), false),
                StepOutcome::PopTopDone(SimSteal::Empty) => OpDone::PopTop(None, false),
                StepOutcome::PopTopDone(SimSteal::Abort) => OpDone::PopTop(None, true),
                StepOutcome::PopTopDone(SimSteal::Duplicate) => {
                    unreachable!("stepped ABP deque is exact: no duplicates")
                }
                StepOutcome::PopTopBatchDone(_) => {
                    // The simulator models batching at the pool level
                    // (claim_batch_extras) and never issues the batch op.
                    unreachable!("simulator ops are single push/pop/steal")
                }
            },
            (AnyOp::Locked(op), Deques::Locked(dq)) => match op.step(&mut dq[target], me as u32) {
                LockStepOutcome::Continue => OpDone::NotDone,
                LockStepOutcome::PushDone => OpDone::Push,
                LockStepOutcome::PopBottomDone(r) => OpDone::PopBottom(r),
                LockStepOutcome::PopTopDone(LockedSteal::Taken(v)) => {
                    OpDone::PopTop(Some(v), false)
                }
                LockStepOutcome::PopTopDone(LockedSteal::Empty) => OpDone::PopTop(None, false),
            },
            _ => unreachable!("op/backend mismatch"),
        }
    }

    fn step_pop_bottom(&mut self, i: usize, mut op: AnyOp) -> Phase {
        match self.step_op(i, i, &mut op) {
            OpDone::NotDone => Phase::PoppingBottom(op),
            OpDone::PopBottom(Some(v)) => {
                let u = NodeId(v as u32);
                self.procs[i].assigned = Some(u);
                self.procs[i].engine.note_work_found();
                self.potential.assign(u, &self.tree);
                self.check_structure(i);
                Phase::Loop
            }
            OpDone::PopBottom(None) => {
                self.check_structure(i);
                Phase::Loop // becomes a thief next instruction
            }
            _ => unreachable!(),
        }
    }

    fn step_push(&mut self, i: usize, mut op: AnyOp) -> Phase {
        match self.step_op(i, i, &mut op) {
            OpDone::NotDone => Phase::Pushing(op),
            OpDone::Push => {
                self.check_structure(i);
                Phase::Loop
            }
            _ => unreachable!(),
        }
    }

    fn step_steal(
        &mut self,
        i: usize,
        victim: usize,
        observe_as: Option<usize>,
        mut op: AnyOp,
    ) -> Phase {
        match self.step_op(i, victim, &mut op) {
            OpDone::NotDone => Phase::Stealing {
                victim,
                observe_as,
                op,
            },
            OpDone::PopTop(result, aborted) => {
                let res = if result.is_some() {
                    StealResult::Hit
                } else if aborted {
                    StealResult::Abort
                } else {
                    StealResult::Empty
                };
                let my_pool = self.pool_of[i] as usize;
                let victim_pool = self.pool_of[victim] as usize;
                let remote = victim_pool != my_pool;
                self.tally.record_located(res, remote);
                self.pool_tallies[my_pool].record_located(res, remote);
                if remote {
                    self.remote_attempts += 1;
                    if result.is_some() {
                        // The victim's pool remembers its robber, so its
                        // members can steal their work back.
                        self.last_thief[victim_pool] = i;
                    } else if self.last_thief[my_pool] == victim {
                        // A dry steal-back hint is stale: retire it.
                        self.last_thief[my_pool] = usize::MAX;
                    }
                }
                self.milestone(i, true);
                if self.config.trace {
                    self.round_attempted[i] = true;
                    if result.is_some() {
                        self.round_stole[i] = true;
                    }
                    self.trace.steals.push(StealRecord {
                        // Round rows are pushed at round end, so the rows
                        // recorded so far count the current round's index.
                        round: self.trace.rounds.len() as u64,
                        thief: ProcId(i as u32),
                        victim: ProcId(victim as u32),
                        outcome: match res {
                            StealResult::Hit => StealOutcome::Hit,
                            StealResult::Abort => StealOutcome::Abort,
                            StealResult::Empty => StealOutcome::Empty,
                            StealResult::Duplicate => StealOutcome::Duplicate,
                        },
                    });
                }
                if let Some(seen) = observe_as {
                    self.procs[i].engine.observe(seen, res);
                }
                if let Some(v) = result {
                    self.procs[i].engine.note_work_found();
                    let u = NodeId(v as u32);
                    self.procs[i].assigned = Some(u);
                    self.potential.assign(u, &self.tree);
                    self.check_structure(victim);
                    // A cross-pool hit amortizes under the batch policy:
                    // claim up to half the victim's remaining backlog in
                    // the same round trip (same instruction — extra
                    // claims cost no further synchronization episodes).
                    if observe_as.is_none() && self.batch_cap > 1 {
                        self.claim_batch_extras(i, victim);
                    }
                } else {
                    self.procs[i].engine.note_failed();
                }
                Phase::Loop
            }
            _ => unreachable!(),
        }
    }

    /// Claims up to `batch_cap - 1` further tasks from `victim` right
    /// after a successful cross-pool `popTop`, mirroring the runtime's
    /// `steal_batch`: the grab is biased to half the victim's visible
    /// backlog, the extras land at the thief's own deque bottom, and the
    /// whole batch shares one synchronization episode (zero extra
    /// simulated instructions — that amortization *is* the model of
    /// batching). Each extra task is still its own counted attempt and
    /// hit, so the five-way identity, the locality split, and the
    /// trace's one-record-per-attempt invariant all hold per task;
    /// `record_batch` logs the episode on the outside-the-identity axis
    /// whenever ≥ 2 tasks moved.
    ///
    /// Only the non-blocking backends batch: a blocking deque would have
    /// to reacquire the victim's lock per task — exactly the round-trip
    /// cost batching exists to avoid — and a stepped lock acquisition
    /// cannot complete inside one instruction while a rival holds it.
    fn claim_batch_extras(&mut self, i: usize, victim: usize) {
        if !matches!(self.deques, Deques::Sim(_)) {
            return;
        }
        let my_pool = self.pool_of[i] as usize;
        // The backlog the runtime's `batch_want` sees includes the task
        // the just-completed popTop took.
        let avail = self.deques.len_of(victim) + 1;
        let want = self.batch_cap.min(avail.div_ceil(2)).max(1);
        let mut claimed = 1u64;
        for _ in 1..want {
            let mut op = self.new_op(LockKind::PopTop);
            let got = loop {
                match self.step_op(i, victim, &mut op) {
                    OpDone::NotDone => continue,
                    OpDone::PopTop(r, _) => break r,
                    _ => unreachable!(),
                }
            };
            // Nothing left (a rival's earlier stale read cannot race us
            // mid-instruction, but the backlog estimate can be stale):
            // the chain simply stops, recording no extra outcome — the
            // runtime's per-slot CAS chain stops the same way.
            let Some(v) = got else { break };
            self.tally.record_located(StealResult::Hit, true);
            self.pool_tallies[my_pool].record_located(StealResult::Hit, true);
            self.remote_attempts += 1;
            if self.config.trace {
                self.trace.steals.push(StealRecord {
                    round: self.trace.rounds.len() as u64,
                    thief: ProcId(i as u32),
                    victim: ProcId(victim as u32),
                    outcome: StealOutcome::Hit,
                });
            }
            // Land the extra at our own bottom. It stays `InDeque`, so
            // the potential tracker does not move.
            let mut push = self.new_op(LockKind::Push(v));
            loop {
                match self.step_op(i, i, &mut push) {
                    OpDone::NotDone => continue,
                    OpDone::Push => break,
                    _ => unreachable!(),
                }
            }
            claimed += 1;
        }
        if claimed >= 2 {
            self.tally.record_batch(claimed);
            self.pool_tallies[my_pool].record_batch(claimed);
        }
    }

    /// Records a milestone for process `i`; a steal completion at the
    /// second milestone of a round is a throw.
    fn milestone(&mut self, i: usize, is_steal_completion: bool) {
        self.procs[i].milestones_this_round += 1;
        if is_steal_completion && self.procs[i].milestones_this_round == 2 {
            self.throws += 1;
            if self.config.track_phases {
                self.phase_throws += 1;
                if self.phase_throws >= self.procs.len() as u64 {
                    // A phase of ≥ P throws ended: did Φ drop by ≥ 1/4?
                    let now = self.potential.log_potential();
                    self.phase_stats.phases += 1;
                    const LN_4_3: f64 = 0.2876820724517809; // ln(4/3)
                    if now <= self.phase_start_potential - LN_4_3 {
                        self.phase_stats.successful += 1;
                    }
                    self.phase_start_potential = now;
                    self.phase_throws = 0;
                }
            }
        }
    }

    /// Structural-lemma check for process `q`'s deque (between operations).
    fn check_structure(&mut self, q: usize) {
        if !self.config.check_structural {
            return;
        }
        let contents: Vec<NodeId> = self
            .deques
            .contents_bottom_to_top(q)
            .into_iter()
            .map(|v| NodeId(v as u32))
            .collect();
        if let Err(_e) =
            check_structural_lemma(&self.tree, self.dag, self.procs[q].assigned, &contents)
        {
            self.structural_violations += 1;
        }
    }
}

/// Convenience: run `dag` on `p` processes under `kernel` with `config`.
///
/// ```
/// use abp_dag::gen;
/// use abp_kernel::DedicatedKernel;
/// use abp_sim::{run_ws, WsConfig};
///
/// let dag = gen::fork_join_tree(4, 2);
/// let mut kernel = DedicatedKernel::new(4);
/// let report = run_ws(&dag, 4, &mut kernel, WsConfig::default());
/// assert!(report.completed);
/// assert_eq!(report.executed, dag.work());
/// // Theorem 9's bound, with a generous round-unit constant:
/// assert!(report.bound_ratio() < 1.0);
/// ```
pub fn run_ws(dag: &Dag, p: usize, kernel: &mut dyn Kernel, config: WsConfig) -> RunReport {
    WorkStealer::new(dag, p, config).run(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use abp_dag::gen;
    use abp_kernel::{BenignKernel, CountSource, DedicatedKernel};

    fn checked_config() -> WsConfig {
        WsConfig {
            check_structural: true,
            check_potential: true,
            track_phases: true,
            max_rounds: 2_000_000,
            ..WsConfig::default()
        }
    }

    fn assert_clean(r: &RunReport) {
        assert!(r.completed, "did not complete: {r}");
        assert_eq!(r.executed, r.work, "not all nodes executed");
        assert_eq!(r.structural_violations, 0, "structural lemma violated");
        assert_eq!(r.potential_violations, 0, "potential increased");
        assert_eq!(r.milestone_violations, 0, "milestone guarantee violated");
    }

    #[test]
    fn serial_chain_single_process() {
        let d = gen::chain(100);
        let mut k = DedicatedKernel::new(1);
        let r = run_ws(&d, 1, &mut k, checked_config());
        assert_clean(&r);
        assert_eq!(
            r.steal_attempts, 0,
            "nobody to steal from with P=1 and serial work"
        );
    }

    #[test]
    fn fork_join_dedicated_completes_clean() {
        let d = gen::fork_join_tree(5, 2);
        for p in [1, 2, 4, 8] {
            let mut k = DedicatedKernel::new(p);
            let r = run_ws(&d, p, &mut k, checked_config());
            assert_clean(&r);
            assert!(r.pa == p as f64);
        }
    }

    #[test]
    fn figure1_both_assign_policies() {
        let (d, _) = abp_dag::examples::figure1();
        for assign in [AssignPolicy::SpawnFirst, AssignPolicy::ContinueFirst] {
            let mut k = DedicatedKernel::new(2);
            let cfg = WsConfig {
                assign,
                ..checked_config()
            };
            let r = run_ws(&d, 2, &mut k, cfg);
            assert_clean(&r);
        }
    }

    #[test]
    fn sync_pipeline_blocking_paths() {
        let d = gen::sync_pipeline(4, 10);
        let mut k = DedicatedKernel::new(3);
        let r = run_ws(&d, 3, &mut k, checked_config());
        assert_clean(&r);
    }

    #[test]
    fn speedup_with_more_processes() {
        let d = gen::fork_join_tree(8, 3);
        let mut rounds = Vec::new();
        for p in [1, 2, 4, 8] {
            let mut k = DedicatedKernel::new(p);
            let r = run_ws(&d, p, &mut k, WsConfig::default());
            assert!(r.completed);
            rounds.push(r.rounds);
        }
        // Ample parallelism: doubling P should shrink time substantially.
        assert!(
            (rounds[3] as f64) < rounds[0] as f64 / 4.0,
            "rounds by P: {rounds:?}"
        );
    }

    #[test]
    fn benign_kernel_completes_clean() {
        let d = gen::fib(12, 3);
        let mut k = BenignKernel::new(6, CountSource::UniformBetween(1, 6), 11);
        let r = run_ws(&d, 6, &mut k, checked_config());
        assert_clean(&r);
        assert!(r.pa < 6.0, "P_A should be well under P, got {}", r.pa);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = gen::random_series_parallel(5, 2000);
        let run = || {
            let mut k = BenignKernel::new(4, CountSource::UniformBetween(1, 4), 42);
            run_ws(&d, 4, &mut k, WsConfig::default())
        };
        let (a, b) = (run(), run());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.throws, b.throws);
        assert_eq!(a.instructions, b.instructions);
    }

    #[test]
    fn different_seeds_differ() {
        let d = gen::fib(11, 2);
        let r1 = {
            let mut k = DedicatedKernel::new(4);
            run_ws(
                &d,
                4,
                &mut k,
                WsConfig {
                    seed: 1,
                    ..WsConfig::default()
                },
            )
        };
        let r2 = {
            let mut k = DedicatedKernel::new(4);
            run_ws(
                &d,
                4,
                &mut k,
                WsConfig {
                    seed: 2,
                    ..WsConfig::default()
                },
            )
        };
        // Almost surely different victim choices somewhere.
        assert!(
            r1.instructions != r2.instructions || r1.throws != r2.throws,
            "identical runs across seeds is vanishingly unlikely"
        );
    }

    #[test]
    fn locking_backend_completes_on_dedicated() {
        let d = gen::fork_join_tree(4, 2);
        let mut k = DedicatedKernel::new(4);
        let cfg = WsConfig {
            backend: DequeBackend::Locking,
            ..WsConfig::default()
        };
        let r = run_ws(&d, 4, &mut k, cfg);
        assert!(r.completed);
        assert_eq!(r.executed, r.work);
    }

    #[test]
    fn phase_success_rate_beats_lemma8_bound() {
        // Lemma 8 promises phases succeed with probability > 1/4; the
        // empirical rate is much higher.
        let d = gen::fork_join_tree(7, 2);
        let mut k = DedicatedKernel::new(8);
        let cfg = WsConfig {
            track_phases: true,
            ..WsConfig::default()
        };
        let r = run_ws(&d, 8, &mut k, cfg);
        let ph = r.phases.unwrap();
        assert!(ph.phases > 0, "no phases recorded");
        assert!(
            ph.success_rate() > 0.25,
            "phase success rate {} ≤ 1/4 over {} phases",
            ph.success_rate(),
            ph.phases
        );
    }

    #[test]
    fn trace_records_everything_and_victims_are_uniform() {
        let d = gen::fib(15, 3);
        let p = 8;
        let mut k = DedicatedKernel::new(p);
        let cfg = WsConfig {
            trace: true,
            ..WsConfig::default()
        };
        let r = run_ws(&d, p, &mut k, cfg);
        assert!(r.completed);
        let tr = r.trace.expect("trace requested");
        assert_eq!(tr.len() as u64, r.rounds);
        assert_eq!(tr.steals.len() as u64, r.steal_attempts);
        assert_eq!(
            tr.steals.iter().filter(|s| s.hit()).count() as u64,
            r.successful_steals
        );
        // Nobody targets themselves.
        assert!(tr.steals.iter().all(|s| s.thief != s.victim));
        // Steal rounds are within range and non-decreasing per thief.
        assert!(tr.steals.iter().all(|s| s.round < r.rounds));
        // Dedicated kernel: no Unscheduled entries; the non-blocking
        // backend never stalls a whole round.
        let b = tr.activity_breakdown();
        assert_eq!(b.unscheduled, 0);
        assert_eq!(b.stalled, 0);
        assert_eq!(b.scheduled(), r.proc_rounds);
        // Victim selection is uniform: chi-square over P bins with many
        // samples stays below a generous threshold (99.9th percentile of
        // χ²₇ is ~24.3; allow slack for the structured workload).
        if tr.steals.len() > 500 {
            let chi = tr.victim_chi_square(p);
            assert!(chi < 60.0, "victim distribution suspicious: chi² = {chi}");
        }
        // The timeline renders one row per process.
        let timeline = tr.render_timeline(60);
        assert_eq!(timeline.lines().count(), p + 1);
    }

    #[test]
    fn trace_marks_unscheduled_rounds() {
        let d = gen::fork_join_tree(5, 2);
        let p = 4;
        let mut k = abp_kernel::BenignKernel::new(p, CountSource::Constant(2), 9);
        let cfg = WsConfig {
            trace: true,
            ..WsConfig::default()
        };
        let r = run_ws(&d, p, &mut k, cfg);
        assert!(r.completed);
        let b = r.trace.unwrap().activity_breakdown();
        // Half the process-rounds are unscheduled under Constant(2) of 4.
        assert!(b.unscheduled > 0);
        assert_eq!(b.scheduled(), r.proc_rounds);
    }

    #[test]
    fn cache_model_disabled_is_structurally_zero() {
        let d = gen::fork_join_tree(5, 2);
        let mut k = DedicatedKernel::new(4);
        let r = run_ws(&d, 4, &mut k, checked_config());
        assert_clean(&r);
        // run() asserts the zero internally; the report must carry no
        // cache block at all.
        assert!(r.cache.is_none());
    }

    #[test]
    fn cache_model_counts_two_accesses_per_node() {
        let d = gen::fork_join_tree(5, 2);
        let mut k = DedicatedKernel::new(4);
        let cfg = WsConfig::default().with_cache(crate::cache::CacheConfig::default());
        let r = run_ws(&d, 4, &mut k, cfg);
        assert!(r.completed);
        let c = r.cache.expect("cache model was enabled");
        assert_eq!(c.accesses, 2 * r.executed);
        assert_eq!(c.accesses, c.hits + c.misses);
        assert_eq!(c.misses, c.per_proc_misses.iter().sum::<u64>());
        assert!(c.misses > 0, "a real run must miss at least once");
        assert!(c.hits > 0, "thread frames must produce hits");
    }

    #[test]
    fn cache_model_serial_run_has_no_deviations() {
        let d = gen::fork_join_tree(6, 2);
        let run = || {
            let mut k = DedicatedKernel::new(1);
            let cfg = WsConfig::default().with_cache(crate::cache::CacheConfig::default());
            run_ws(&d, 1, &mut k, cfg)
        };
        let a = run().cache.unwrap();
        let b = run().cache.unwrap();
        // P = 1: no steals, no deviations, and bit-identical counters.
        assert_eq!(a.deviations, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn cache_stats_flow_into_trace() {
        let d = gen::fork_join_tree(4, 2);
        let mut k = DedicatedKernel::new(2);
        let cfg = WsConfig::default()
            .with_trace(true)
            .with_cache(crate::cache::CacheConfig::default());
        let r = run_ws(&d, 2, &mut k, cfg);
        let from_trace = r.trace.as_ref().unwrap().cache.clone().unwrap();
        assert_eq!(from_trace, r.cache.unwrap());
        // Traced runs without the model carry no block.
        let mut k = DedicatedKernel::new(2);
        let r = run_ws(&d, 2, &mut k, WsConfig::default().with_trace(true));
        assert!(r.trace.unwrap().cache.is_none());
    }

    #[test]
    fn tree_workload_steals_respect_rooted_tree_bound() {
        // The encoded tree is a binary spawn tree of height
        // spawn_height(); Leiserson et al.'s bound with k = 2 must hold
        // for every policy and seed.
        let tree = abp_dag::tree::full_kary(3, 4);
        let d = tree.to_dag(2);
        for p in [2, 4, 8] {
            for seed in [1, 2, 3] {
                let mut k = DedicatedKernel::new(p);
                let cfg = WsConfig::default().with_seed(seed);
                let r = run_ws(&d, p, &mut k, cfg);
                assert!(r.completed);
                let check = abp_core::StealBoundCheck::rooted_tree(
                    r.successful_steals,
                    2,
                    tree.spawn_height(),
                    tree.num_edges() as u64,
                    p,
                );
                assert!(
                    check.holds(),
                    "P={p} seed={seed}: {} steals > bound {}",
                    check.observed,
                    check.bound
                );
            }
        }
    }

    #[test]
    fn explicit_flat_topology_is_byte_identical() {
        // `pools: 1` must consume exactly the pre-topology rng stream:
        // the whole run, not just the outcome, is bit-identical.
        let d = gen::fib(13, 3);
        let run = |cfg: WsConfig| {
            let mut k = BenignKernel::new(6, CountSource::UniformBetween(1, 6), 7);
            run_ws(&d, 6, &mut k, cfg)
        };
        let a = run(WsConfig::default());
        let b = run(WsConfig::default().with_pools(1).with_cross_steal(0.9));
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.throws, b.throws);
        assert_eq!(a.steal_attempts, b.steal_attempts);
        assert_eq!(a.successful_steals, b.successful_steals);
        assert_eq!((a.pools, a.remote_steals), (1, 0));
        // The flat-scan control arm with pool labels also replays the
        // flat stream — only the accounting axis moves.
        let c = run(WsConfig::default().with_pools(2).with_flat_scan(true));
        assert_eq!(a.rounds, c.rounds);
        assert_eq!(a.instructions, c.instructions);
        assert_eq!(a.steal_attempts, c.steal_attempts);
        assert_eq!(c.pools, 2);
        assert!(c.locality_consistent());
    }

    #[test]
    fn hierarchical_topology_completes_clean() {
        let d = gen::fib(13, 3);
        for k_pools in [2, 4] {
            let mut k = DedicatedKernel::new(8);
            let cfg = WsConfig {
                pools: k_pools,
                ..checked_config()
            };
            let r = run_ws(&d, 8, &mut k, cfg);
            assert_clean(&r);
            assert_eq!(r.pools, k_pools);
            assert!(r.locality_consistent());
            assert!(
                r.remote_steals > 0,
                "fib on a dedicated K={k_pools} topology must cross pools sometimes"
            );
        }
    }

    #[test]
    fn hierarchical_scans_keep_remote_fraction_low() {
        // The whole point of the topology: hierarchical victim selection
        // crosses pools far less often than a topology-blind flat scan
        // over the same pool labels. The *attempt* fraction is the scan
        // policy's own property (the hit fraction also depends on where
        // the workload puts the work): a flat scan over K=4 pools of 2
        // crosses 6/7 ≈ 0.86 of the time, the hierarchical scan at the
        // cross-steal coin's rate (default 1/8).
        let d = gen::fib(15, 3);
        let run = |flat: bool| {
            let mut k = DedicatedKernel::new(8);
            let cfg = WsConfig::default().with_pools(4).with_flat_scan(flat);
            run_ws(&d, 8, &mut k, cfg)
        };
        let hier = run(false);
        let flat = run(true);
        assert!(hier.completed && flat.completed);
        assert!(
            flat.remote_attempt_fraction() > 5.0 * hier.remote_attempt_fraction(),
            "flat {:.3} vs hierarchical {:.3}",
            flat.remote_attempt_fraction(),
            hier.remote_attempt_fraction()
        );
        // Hits follow the same direction, if less sharply (work spreads
        // out of the root's pool only via remote hits).
        assert!(
            flat.remote_steal_fraction() > hier.remote_steal_fraction(),
            "flat {:.3} vs hierarchical {:.3}",
            flat.remote_steal_fraction(),
            hier.remote_steal_fraction()
        );
    }

    #[test]
    fn solo_pools_always_cross() {
        // P pools of one process each: every steal is remote, and the
        // run still completes (the steal-back hint keeps rotating).
        let d = gen::fork_join_tree(6, 2);
        let mut k = DedicatedKernel::new(4);
        let cfg = WsConfig::default().with_pools(4);
        let r = run_ws(&d, 4, &mut k, cfg);
        assert!(r.completed);
        assert_eq!(r.remote_steals, r.successful_steals);
        assert_eq!(r.remote_attempts, r.steal_attempts);
        assert!(r.successful_steals > 0);
    }

    #[test]
    fn last_enabler_policy_runs_clean_with_cache() {
        use abp_core::VictimKind;
        let d = gen::fib(13, 3);
        let mut policies = PolicySet::paper();
        policies.victim = VictimKind::LastEnabler;
        let mut k = DedicatedKernel::new(8);
        let cfg = WsConfig {
            policies,
            ..checked_config()
        }
        .with_cache(crate::cache::CacheConfig::default());
        let r = run_ws(&d, 8, &mut k, cfg);
        assert_clean(&r);
        let c = r.cache.expect("cache model enabled");
        assert!(c.deviations > 0, "a parallel run must deviate somewhere");
    }

    #[test]
    fn batched_hierarchical_completes_clean_and_batches() {
        use abp_core::BatchKind;
        let d = gen::fib(15, 3);
        for k_pools in [2, 4] {
            let mut k = DedicatedKernel::new(8);
            let cfg = WsConfig::default()
                .with_pools(k_pools)
                .with_policies(PolicySet::paper().with_batch(BatchKind::Half { cap: 4 }));
            let r = run_ws(&d, 8, &mut k, cfg);
            assert!(r.completed);
            assert_eq!(r.executed, r.work);
            assert!(r.steal_accounting_balanced(), "identity broken: {r:?}");
            assert!(r.locality_consistent());
            assert!(r.batch_consistent(), "batch split broken: {r:?}");
            assert!(
                r.batch_steals > 0,
                "K={k_pools}: a deep fib run must multi-claim at least once"
            );
        }
    }

    #[test]
    fn batched_trace_keeps_one_record_per_attempt() {
        // Every task claimed by a batch is its own attempt, so the
        // trace's one-record-per-attempt invariant survives batching.
        use abp_core::BatchKind;
        let d = gen::fib(13, 3);
        let mut k = DedicatedKernel::new(8);
        let cfg = WsConfig::default()
            .with_pools(4)
            .with_trace(true)
            .with_policies(PolicySet::paper().with_batch(BatchKind::Half { cap: 8 }));
        let r = run_ws(&d, 8, &mut k, cfg);
        assert!(r.completed);
        let tr = r.trace.expect("trace requested");
        assert_eq!(tr.steals.len() as u64, r.steal_attempts);
        assert_eq!(
            tr.steals.iter().filter(|s| s.hit()).count() as u64,
            r.successful_steals
        );
    }

    #[test]
    fn single_batch_policy_keeps_structural_zero() {
        // `run` asserts the zero internally; this pins the report
        // surface on a hierarchical run under the default policy.
        let d = gen::fib(13, 3);
        let mut k = DedicatedKernel::new(8);
        let r = run_ws(&d, 8, &mut k, WsConfig::default().with_pools(4));
        assert!(r.completed);
        assert_eq!((r.batch_steals, r.batched_tasks), (0, 0));
    }

    #[test]
    fn locking_backend_ignores_batch_policy() {
        // A blocking deque reacquires the lock per task — the round
        // trip batching amortizes doesn't exist — so the policy is a
        // documented no-op there.
        use abp_core::BatchKind;
        let d = gen::fork_join_tree(5, 2);
        let mut k = DedicatedKernel::new(4);
        let cfg = WsConfig::default()
            .with_pools(2)
            .with_backend(DequeBackend::Locking)
            .with_policies(PolicySet::paper().with_batch(BatchKind::Half { cap: 4 }));
        let r = run_ws(&d, 4, &mut k, cfg);
        assert!(r.completed);
        assert_eq!((r.batch_steals, r.batched_tasks), (0, 0));
    }

    #[test]
    #[should_panic(expected = "check_structural is incompatible with batched stealing")]
    fn structural_checker_rejects_batched_config() {
        use abp_core::BatchKind;
        let d = gen::chain(4);
        let mut k = DedicatedKernel::new(2);
        let cfg = WsConfig::default()
            .with_pools(2)
            .with_check_structural(true)
            .with_policies(PolicySet::paper().with_batch(BatchKind::Half { cap: 4 }));
        let _ = run_ws(&d, 2, &mut k, cfg);
    }

    #[test]
    #[should_panic(expected = "pools must satisfy")]
    fn more_pools_than_procs_rejected() {
        let d = gen::chain(4);
        let mut k = DedicatedKernel::new(2);
        let _ = run_ws(&d, 2, &mut k, WsConfig::default().with_pools(3));
    }

    #[test]
    fn throws_bounded_by_o_p_tinf_dedicated() {
        // Theorem 9's internals: E[throws] = O(P · T∞). Check a generous
        // constant across shapes.
        for (d, label) in [
            (gen::fork_join_tree(6, 2), "fork-join"),
            (gen::fib(13, 3), "fib"),
            (gen::wide_shallow(32, 20), "wide"),
        ] {
            let p = 8;
            let mut total = 0u64;
            let trials = 5;
            for seed in 0..trials {
                let mut k = DedicatedKernel::new(p);
                let cfg = WsConfig {
                    seed,
                    ..WsConfig::default()
                };
                let r = run_ws(&d, p, &mut k, cfg);
                assert!(r.completed);
                total += r.throws;
            }
            let avg = total as f64 / trials as f64;
            let bound = 32.0 * p as f64 * d.critical_path() as f64;
            assert!(
                avg < bound,
                "{label}: avg throws {avg} exceeds 32·P·T∞ = {bound}"
            );
        }
    }
}
