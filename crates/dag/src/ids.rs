//! Strongly-typed identifiers for nodes, threads, and processes.
//!
//! The paper is careful to distinguish *threads* (user-level, scheduled by
//! the work stealer) from *processes* (kernel-level, scheduled by the
//! adversarial kernel). We mirror that distinction in the type system so the
//! two can never be confused in scheduler code.

use std::fmt;

/// Identifier of a dag node (one instruction of the computation).
///
/// Nodes are numbered densely from 0 in creation order; the paper's `v1..vk`
/// naming maps to `NodeId(0)..NodeId(k-1)` and the `Display` impl prints the
/// paper's 1-based `v`-names for readability in tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of a user-level thread (a chain of nodes in the dag).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// Identifier of a kernel-level process. The work stealer maps threads onto
/// a *fixed* collection of these; the kernel maps them onto processors.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl NodeId {
    /// The dense index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ThreadId {
    /// The dense index of this thread.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ProcId {
    /// The dense index of this process.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0 + 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0 + 1)
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_naming() {
        assert_eq!(NodeId(0).to_string(), "v1");
        assert_eq!(NodeId(10).to_string(), "v11");
        assert_eq!(ThreadId(0).to_string(), "t0");
        assert_eq!(ProcId(2).to_string(), "p2");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(3) < NodeId(4));
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(ThreadId(5).index(), 5);
        assert_eq!(ProcId(1).index(), 1);
    }
}
