//! The paper's running example (Figure 1).
//!
//! Figure 1 shows a small dag with two threads — a root thread and one
//! child — containing all three edge kinds: the spawn edge out of `v2`, a
//! semaphore-style synchronization into the root thread (the V operation in
//! the child enabling the P operation in the root), and the join of the two
//! threads near the end.
//!
//! The scanned text of the figure is partially garbled, so the exact node
//! count cannot be read off; this reconstruction keeps every structural
//! feature the prose relies on:
//!
//! * root thread `v1 v2 v3 v4 v10 v11`, child thread `v5 v6 v7 v8 v9`;
//! * spawn edge `(v2, v5)` — "the edge ⟨v2 → v5⟩ is such an edge";
//! * semaphore edge `(v6, v4)` — executing `v3` and then attempting `v4`
//!   before `v6` has executed blocks the root thread (`v6` is the V, `v4`
//!   the P);
//! * join edge `(v9, v10)` — when a process executes `v9` in the child, the
//!   child enables the root and dies simultaneously.
//!
//! Measured on this reconstruction: `T₁ = 11`, `T∞ = 9` (the path
//! `v1 v2 v5 v6 v7 v8 v9 v10 v11`), parallelism `≈ 1.22`.

use crate::builder::DagBuilder;
use crate::dag::Dag;
use crate::ids::NodeId;

/// Handles to the named nodes of the Figure-1 dag, for tests and demos.
#[derive(Debug, Clone, Copy)]
pub struct Figure1 {
    /// Root thread: `v1 → v2 → v3 → v4 → v10 → v11`.
    pub root_nodes: [NodeId; 6],
    /// Child thread: `v5 → v6 → v7 → v8 → v9`.
    pub child_nodes: [NodeId; 5],
}

/// Builds the Figure-1 example dag. See the module docs for the exact
/// reconstruction.
pub fn figure1() -> (Dag, Figure1) {
    let mut b = DagBuilder::new();
    let root = b.thread();
    let v1 = b.node(root);
    let v2 = b.node(root);
    let v3 = b.node(root);
    let v4 = b.node(root);
    // Child thread spawned by v2.
    let (child, v5) = b.spawn_thread(v2);
    let v6 = b.node(child);
    let v7 = b.node(child);
    let v8 = b.node(child);
    let v9 = b.node(child);
    // Root thread continues after the P operation.
    let v10 = b.node(root);
    let v11 = b.node(root);
    // Semaphore: v6 is the V (signal), v4 the P (wait).
    b.sync(v6, v4);
    // Join: the child's death at v9 enables the root at v10.
    b.sync(v9, v10);
    let dag = b.finish().expect("figure-1 dag is valid");
    (
        dag,
        Figure1 {
            root_nodes: [v1, v2, v3, v4, v10, v11],
            child_nodes: [v5, v6, v7, v8, v9],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::EdgeKind;

    #[test]
    fn figure1_metrics() {
        let (d, _) = figure1();
        assert_eq!(d.work(), 11);
        assert_eq!(d.critical_path(), 9);
        assert!((d.parallelism() - 11.0 / 9.0).abs() < 1e-12);
        assert_eq!(d.num_threads(), 2);
    }

    #[test]
    fn figure1_named_edges() {
        let (d, f) = figure1();
        let [v1, v2, v3, v4, v10, v11] = f.root_nodes;
        let [v5, v6, _v7, _v8, v9] = f.child_nodes;
        // Spawn edge (v2, v5).
        assert!(d.succs(v2).contains(&(v5, EdgeKind::Spawn)));
        // Semaphore edge (v6, v4).
        assert!(d.succs(v6).contains(&(v4, EdgeKind::Enable)));
        // Join edge (v9, v10).
        assert!(d.succs(v9).contains(&(v10, EdgeKind::Enable)));
        // Root/final.
        assert_eq!(d.root(), v1);
        assert_eq!(d.final_node(), v11);
        // v4 (the P) has two predecessors: v3 in-chain and the V.
        assert_eq!(d.preds(v4).len(), 2);
        assert!(d.preds(v4).contains(&v3));
        let _ = v10;
    }

    #[test]
    fn figure1_critical_path_is_through_child() {
        let (d, f) = figure1();
        // Depth of v11 must be 8 (9 nodes on the path).
        assert_eq!(d.depth(f.root_nodes[5]), 8);
    }
}
