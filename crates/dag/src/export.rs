//! Export and summary utilities for computation dags: Graphviz DOT
//! output (threads as clusters, edge kinds styled) and structural
//! statistics.

use crate::dag::{Dag, EdgeKind};
use crate::ids::{NodeId, ThreadId};
use std::fmt::Write as _;

/// Renders the dag as a Graphviz `digraph`: one cluster per thread,
/// continue edges solid, spawn edges bold, enable edges dashed — the
/// visual language of the paper's Figure 1.
pub fn to_dot(dag: &Dag, title: &str) -> String {
    let mut out = String::new();
    writeln!(out, "digraph \"{title}\" {{").unwrap();
    writeln!(out, "  rankdir=TB; node [shape=circle, fontsize=10];").unwrap();
    for t in 0..dag.num_threads() {
        let tid = ThreadId(t as u32);
        writeln!(out, "  subgraph cluster_t{t} {{").unwrap();
        writeln!(
            out,
            "    label=\"{}thread {t}\"; style=filled; color=lightgrey;",
            if t == 0 { "root " } else { "" }
        )
        .unwrap();
        for &u in dag.thread_nodes(tid) {
            writeln!(out, "    \"{u}\";").unwrap();
        }
        writeln!(out, "  }}").unwrap();
    }
    for e in dag.edges() {
        let style = match e.kind {
            EdgeKind::Continue => "",
            EdgeKind::Spawn => " [style=bold, color=blue]",
            EdgeKind::Enable => " [style=dashed, color=red]",
        };
        writeln!(out, "  \"{}\" -> \"{}\"{style};", e.from, e.to).unwrap();
    }
    writeln!(out, "}}").unwrap();
    out
}

/// Structural statistics of a dag, for workload tables.
#[derive(Debug, Clone, PartialEq)]
pub struct DagStats {
    pub nodes: usize,
    pub edges: usize,
    pub threads: usize,
    pub work: u64,
    pub critical_path: u64,
    pub parallelism: f64,
    pub spawn_edges: usize,
    pub enable_edges: usize,
    /// Longest thread (nodes).
    pub max_thread_len: usize,
    /// Mean thread length.
    pub mean_thread_len: f64,
    /// Maximum in-degree (join fan-in).
    pub max_in_degree: usize,
}

/// Computes [`DagStats`].
pub fn stats(dag: &Dag) -> DagStats {
    let mut spawn_edges = 0;
    let mut enable_edges = 0;
    for e in dag.edges() {
        match e.kind {
            EdgeKind::Spawn => spawn_edges += 1,
            EdgeKind::Enable => enable_edges += 1,
            EdgeKind::Continue => {}
        }
    }
    let thread_lens: Vec<usize> = (0..dag.num_threads())
        .map(|t| dag.thread_nodes(ThreadId(t as u32)).len())
        .collect();
    let max_in_degree = (0..dag.num_nodes())
        .map(|i| dag.in_degree(NodeId(i as u32)))
        .max()
        .unwrap_or(0);
    DagStats {
        nodes: dag.num_nodes(),
        edges: dag.num_edges(),
        threads: dag.num_threads(),
        work: dag.work(),
        critical_path: dag.critical_path(),
        parallelism: dag.parallelism(),
        spawn_edges,
        enable_edges,
        max_thread_len: thread_lens.iter().copied().max().unwrap_or(0),
        mean_thread_len: thread_lens.iter().sum::<usize>() as f64 / thread_lens.len().max(1) as f64,
        max_in_degree,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::figure1;
    use crate::gen;

    #[test]
    fn dot_output_structure() {
        let (dag, _) = figure1();
        let dot = to_dot(&dag, "figure1");
        assert!(dot.starts_with("digraph \"figure1\""));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("subgraph cluster_t").count(), 2);
        // 11 node declarations inside clusters.
        assert!(dot.matches(";\n").count() >= 11);
        // Styled edges present.
        assert!(dot.contains("style=bold"));
        assert!(dot.contains("style=dashed"));
        // All edges rendered.
        assert_eq!(dot.matches(" -> ").count(), dag.num_edges());
    }

    #[test]
    fn stats_of_figure1() {
        let (dag, _) = figure1();
        let s = stats(&dag);
        assert_eq!(s.nodes, 11);
        assert_eq!(s.threads, 2);
        assert_eq!(s.spawn_edges, 1);
        assert_eq!(s.enable_edges, 2);
        assert_eq!(s.max_thread_len, 6);
        assert_eq!(s.critical_path, 9);
        assert_eq!(s.max_in_degree, 2);
    }

    #[test]
    fn stats_spawn_count_matches_threads() {
        for d in [
            gen::fork_join_tree(4, 2),
            gen::fib(9, 2),
            gen::wavefront(5, 4),
        ] {
            let s = stats(&d);
            // Every non-root thread is created by exactly one spawn edge.
            assert_eq!(s.spawn_edges, s.threads - 1);
            assert!(s.mean_thread_len > 0.0);
            assert!(s.max_thread_len >= s.mean_thread_len as usize);
        }
    }
}
