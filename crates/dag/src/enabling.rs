//! Enabling trees and node weights (Section 3.4 of the paper).
//!
//! During an execution, if executing node `u` makes node `v` ready (i.e.
//! `u` is the *last* of `v`'s parents to execute), then `(u, v)` is an
//! *enabling edge* and `u` is the *designated parent* of `v`. Every node
//! except the root has exactly one designated parent, so the enabling edges
//! form a rooted tree — the *enabling tree*. Different executions of the
//! same dag may produce different enabling trees.
//!
//! The *weight* of a node is `w(u) = T∞ − d(u)` where `d(u)` is its depth
//! in the enabling tree. The potential function of Section 4.2 and the
//! structural lemma (Lemma 3) are stated in terms of these weights, so the
//! simulator maintains an [`EnablingTree`] incrementally as it executes
//! nodes.

use crate::dag::Dag;
use crate::ids::NodeId;

/// An enabling tree under construction, tracking designated parents,
/// depths, and weights for the subset of nodes enabled so far.
///
/// ```
/// use abp_dag::{examples::figure1, EnablingTree};
///
/// let (dag, names) = figure1();
/// let mut tree = EnablingTree::new(&dag);
/// let [v1, v2, ..] = names.root_nodes;
/// tree.record(v1, v2); // executing v1 enabled v2
/// assert_eq!(tree.designated_parent(v2), Some(v1));
/// assert_eq!(tree.weight(v1), dag.critical_path());
/// assert_eq!(tree.weight(v2), dag.critical_path() - 1);
/// ```
#[derive(Debug, Clone)]
pub struct EnablingTree {
    critical_path: u64,
    parent: Vec<Option<NodeId>>,
    depth: Vec<u32>,
    enabled: Vec<bool>,
}

impl EnablingTree {
    /// Creates the tree for an execution of `dag`, with only the root
    /// enabled (depth 0).
    pub fn new(dag: &Dag) -> Self {
        let n = dag.num_nodes();
        let mut t = EnablingTree {
            critical_path: dag.critical_path(),
            parent: vec![None; n],
            depth: vec![0; n],
            enabled: vec![false; n],
        };
        t.enabled[dag.root().index()] = true;
        t
    }

    /// Records that executing `parent` enabled `child`. Panics (debug) if
    /// `child` was already enabled — a node has exactly one designated
    /// parent — or if `parent` itself was never enabled.
    pub fn record(&mut self, parent: NodeId, child: NodeId) {
        debug_assert!(
            self.enabled[parent.index()],
            "designated parent {parent} was never enabled"
        );
        debug_assert!(!self.enabled[child.index()], "node {child} enabled twice");
        self.enabled[child.index()] = true;
        self.parent[child.index()] = Some(parent);
        self.depth[child.index()] = self.depth[parent.index()] + 1;
    }

    /// Whether `u` has been enabled yet.
    #[inline]
    pub fn is_enabled(&self, u: NodeId) -> bool {
        self.enabled[u.index()]
    }

    /// Designated parent of `u` (`None` for the root or un-enabled nodes).
    #[inline]
    pub fn designated_parent(&self, u: NodeId) -> Option<NodeId> {
        self.parent[u.index()]
    }

    /// Depth of `u` in the enabling tree. Meaningful only once enabled.
    #[inline]
    pub fn depth(&self, u: NodeId) -> u32 {
        self.depth[u.index()]
    }

    /// Weight `w(u) = T∞ − d(u)`. The root has weight `T∞`; weights are
    /// always ≥ 1 for enabled nodes because an enabling path is a dag path
    /// and thus shorter than `T∞`.
    #[inline]
    pub fn weight(&self, u: NodeId) -> u64 {
        self.critical_path - self.depth[u.index()] as u64
    }

    /// True iff `anc` is an ancestor of `u` in the enabling tree (a node is
    /// an ancestor of itself).
    pub fn is_ancestor(&self, anc: NodeId, u: NodeId) -> bool {
        let mut cur = u;
        loop {
            if cur == anc {
                return true;
            }
            match self.parent[cur.index()] {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// True iff `anc` is a *proper* ancestor of `u`.
    pub fn is_proper_ancestor(&self, anc: NodeId, u: NodeId) -> bool {
        anc != u && self.is_ancestor(anc, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::examples::figure1;

    /// Replay a particular serial execution of Figure 1 and check the
    /// enabling tree it induces.
    #[test]
    fn figure1_serial_execution_enabling_tree() {
        let (d, f) = figure1();
        let [v1, v2, v3, v4, v10, v11] = f.root_nodes;
        let [v5, v6, v7, v8, v9] = f.child_nodes;
        let mut remaining: Vec<usize> = (0..d.num_nodes())
            .map(|i| d.in_degree(NodeId(i as u32)))
            .collect();
        let mut tree = EnablingTree::new(&d);
        // Depth-first, child-first order: v1 v2 v5 v6 v3 v4 v7 v8 v9 v10 v11.
        // (v4 becomes ready only after v6, its designated parent being
        // whichever of {v3, v6} executes last.)
        let order = [v1, v2, v5, v6, v3, v4, v7, v8, v9, v10, v11];
        for &u in &order {
            assert!(tree.is_enabled(u), "{u} executed before being enabled");
            for &(v, _) in d.succs(u) {
                remaining[v.index()] -= 1;
                if remaining[v.index()] == 0 {
                    tree.record(u, v);
                }
            }
        }
        // In this order v3 executes after v6, so v3 is v4's designated
        // parent.
        assert_eq!(tree.designated_parent(v4), Some(v3));
        // v10 is enabled by the join from v9 (v4 executed before v9).
        assert_eq!(tree.designated_parent(v10), Some(v9));
        // Weights strictly decrease along the chain v1 v2 v5 v6.
        assert!(tree.weight(v1) > tree.weight(v2));
        assert!(tree.weight(v2) > tree.weight(v5));
        assert!(tree.weight(v5) > tree.weight(v6));
        // Root weight is T∞.
        assert_eq!(tree.weight(v1), d.critical_path());
        // Ancestor queries.
        assert!(tree.is_ancestor(v1, v11));
        assert!(tree.is_proper_ancestor(v2, v9));
        assert!(!tree.is_proper_ancestor(v9, v2));
        assert!(tree.is_ancestor(v7, v7));
        assert!(!tree.is_proper_ancestor(v7, v7));
    }

    #[test]
    fn alternate_order_changes_designated_parent() {
        let (d, f) = figure1();
        let [v1, v2, v3, v4, _v10, _v11] = f.root_nodes;
        let [v5, v6, _v7, _v8, _v9] = f.child_nodes;
        let mut remaining: Vec<usize> = (0..d.num_nodes())
            .map(|i| d.in_degree(NodeId(i as u32)))
            .collect();
        let mut tree = EnablingTree::new(&d);
        // Execute v3 *before* v6: now v6 is v4's designated parent.
        for &u in &[v1, v2, v3, v5, v6] {
            for &(v, _) in d.succs(u) {
                remaining[v.index()] -= 1;
                if remaining[v.index()] == 0 {
                    tree.record(u, v);
                }
            }
        }
        assert_eq!(tree.designated_parent(v4), Some(v6));
        assert_eq!(tree.depth(v4), tree.depth(v6) + 1);
    }
}
