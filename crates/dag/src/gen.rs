//! Synthetic multithreaded-computation generators.
//!
//! These produce the workload families used throughout the experiment
//! suite: serial chains (no parallelism), balanced fork-join spawn trees
//! (high parallelism, the shape of divide-and-conquer programs the paper's
//! introduction motivates), Fibonacci-shaped unbalanced recursion (the
//! canonical Cilk/Hood benchmark), random series-parallel dags, and
//! semaphore-style pipelines whose cross edges exercise the *block/enable*
//! paths of the scheduler rather than just spawn/join.
//!
//! Every generator is deterministic given its parameters (and seed, where
//! applicable), so experiment tables are reproducible.

use crate::builder::DagBuilder;
use crate::dag::Dag;
use crate::ids::{NodeId, ThreadId};
use crate::rng::DetRng;

/// A purely serial computation: one thread of `n` nodes. `T₁ = T∞ = n`.
pub fn chain(n: usize) -> Dag {
    assert!(n > 0);
    let mut b = DagBuilder::new();
    let t = b.thread();
    b.nodes(t, n);
    b.finish().expect("chain dag is valid by construction")
}

/// A balanced binary fork-join tree of the given `depth`.
///
/// Each internal task runs `seq` nodes of straight-line work, spawns two
/// children (each a recursive subtree), executes a join node that waits for
/// both, and runs `seq` trailing nodes. Leaves run `2 * seq + 1` nodes so
/// leaf and internal tasks cost the same.
///
/// With `depth = 0` this is a single leaf thread. Parallelism grows as
/// `Θ(2^depth / depth)`.
///
/// ```
/// let dag = abp_dag::gen::fork_join_tree(6, 2);
/// assert_eq!(dag.num_threads(), 127); // 2^7 - 1 tasks
/// assert!(dag.parallelism() > 8.0);
/// ```
pub fn fork_join_tree(depth: u32, seq: usize) -> Dag {
    assert!(seq > 0);
    let mut b = DagBuilder::new();
    let root = b.thread();
    fork_join_rec(&mut b, root, depth, seq);
    b.finish().expect("fork-join dag is valid by construction")
}

/// Builds one task on thread `t`; returns that thread's last node.
fn fork_join_rec(b: &mut DagBuilder, t: ThreadId, depth: u32, seq: usize) -> NodeId {
    if depth == 0 {
        return b.nodes(t, 2 * seq + 1);
    }
    b.nodes(t, seq);
    // Two spawn instructions, each with its own node (out-degree ≤ 2:
    // one continue edge + one spawn edge per spawning node).
    let s1 = b.node(t);
    let (left, _) = b.spawn_thread(s1);
    let s2 = b.node(t);
    let (right, _) = b.spawn_thread(s2);
    let l_last = fork_join_rec(b, left, depth - 1, seq);
    let r_last = fork_join_rec(b, right, depth - 1, seq);
    let join = b.node(t);
    b.sync(l_last, join);
    b.sync(r_last, join);
    b.nodes(t, seq)
}

/// The Fibonacci recursion shape: `fib(n)` spawns `fib(n-1)` and
/// `fib(n-2)` down to `cutoff`, then joins and "adds". This is the
/// unbalanced tree that Cilk and Hood used as their standard stress test;
/// the imbalance makes steal placement matter.
pub fn fib(n: u32, cutoff: u32) -> Dag {
    assert!(cutoff >= 1, "cutoff must be at least 1");
    let mut b = DagBuilder::new();
    let root = b.thread();
    fib_rec(&mut b, root, n, cutoff);
    b.finish().expect("fib dag is valid by construction")
}

fn fib_rec(b: &mut DagBuilder, t: ThreadId, n: u32, cutoff: u32) -> NodeId {
    if n <= cutoff {
        // Serial base case: cost proportional to fib-ish work, capped.
        let base = (n.max(1) as usize).min(8);
        return b.nodes(t, base);
    }
    let s1 = b.node(t);
    let (a, _) = b.spawn_thread(s1);
    let s2 = b.node(t);
    let (c, _) = b.spawn_thread(s2);
    let a_last = fib_rec(b, a, n - 1, cutoff);
    let c_last = fib_rec(b, c, n - 2, cutoff);
    let join = b.node(t);
    b.sync(a_last, join);
    b.sync(c_last, join);
    b.node(t) // the "add"
}

/// A wide, shallow computation: a spawn tree that fans out to `width`
/// leaves as fast as out-degree 2 allows, each leaf a chain of `chain_len`
/// nodes, then a join tree. Approximates the "embarrassingly parallel"
/// regime where `T∞ ≈ 2·lg(width) + chain_len` and `T₁ ≈ width · chain_len`.
pub fn wide_shallow(width: usize, chain_len: usize) -> Dag {
    assert!(width >= 1 && chain_len >= 1);
    let depth = usize::BITS - (width - 1).leading_zeros().min(usize::BITS - 1);
    let depth = if width == 1 { 0 } else { depth };
    // A balanced fork-join tree of that depth with 1-node bodies, except
    // leaves carry the chains. Reuse the recursive builder with a custom
    // leaf size by inlining.
    let mut b = DagBuilder::new();
    let root = b.thread();
    wide_rec(&mut b, root, depth, width, chain_len);
    b.finish().expect("wide dag is valid by construction")
}

fn wide_rec(
    b: &mut DagBuilder,
    t: ThreadId,
    depth: u32,
    leaves: usize,
    chain_len: usize,
) -> NodeId {
    if depth == 0 || leaves <= 1 {
        return b.nodes(t, chain_len);
    }
    let left_leaves = leaves.div_ceil(2);
    let right_leaves = leaves / 2;
    let s1 = b.node(t);
    let (left, _) = b.spawn_thread(s1);
    let l_last = wide_rec(b, left, depth - 1, left_leaves, chain_len);
    let r_last = if right_leaves >= 1 {
        let s2 = b.node(t);
        let (right, _) = b.spawn_thread(s2);
        Some(wide_rec(b, right, depth - 1, right_leaves, chain_len))
    } else {
        None
    };
    let join = b.node(t);
    b.sync(l_last, join);
    if let Some(r) = r_last {
        b.sync(r, join);
    }
    join
}

/// A random series-parallel computation of roughly `target_work` nodes.
///
/// Recursively composes serial chains and fork-join splits with
/// seed-determined choices; models irregular task-parallel programs whose
/// structure is not known statically.
pub fn random_series_parallel(seed: u64, target_work: usize) -> Dag {
    assert!(target_work >= 1);
    let mut rng = DetRng::new(seed);
    let mut b = DagBuilder::new();
    let root = b.thread();
    sp_rec(&mut b, root, target_work, &mut rng, 0);
    b.finish()
        .expect("series-parallel dag is valid by construction")
}

fn sp_rec(b: &mut DagBuilder, t: ThreadId, budget: usize, rng: &mut DetRng, depth: u32) -> NodeId {
    // Small budgets and deep recursion become serial chains.
    if budget <= 6 || depth > 24 || rng.chance(0.25) {
        return b.nodes(t, budget.max(1));
    }
    // Split the budget between a prologue, two parallel branches, and an
    // epilogue; 5 nodes of overhead (2 spawn, 1 join, ≥1 prologue, ≥1
    // epilogue).
    let body = budget - 5;
    let pro = 1 + rng.below_usize((body / 4).max(1));
    let epi = 1 + rng.below_usize((body / 4).max(1));
    let rest = body.saturating_sub(pro + epi).max(2);
    let lhs = 1 + rng.below_usize(rest - 1);
    let rhs = rest - lhs;
    b.nodes(t, pro);
    let s1 = b.node(t);
    let (left, _) = b.spawn_thread(s1);
    let s2 = b.node(t);
    let (right, _) = b.spawn_thread(s2);
    let l_last = sp_rec(b, left, lhs, rng, depth + 1);
    let r_last = sp_rec(b, right, rhs.max(1), rng, depth + 1);
    let join = b.node(t);
    b.sync(l_last, join);
    b.sync(r_last, join);
    b.nodes(t, epi)
}

/// A semaphore-style pipeline: `stages` threads, each a chain of
/// `stage_len` nodes, where node `k` of stage `i+1` waits (P) on node `k`
/// of stage `i` (V). Exercises the scheduler's *block* and *enable* paths
/// — threads repeatedly block mid-execution and are re-enabled by other
/// threads, exactly the Figure-1 `(v6, v4)`-style edges.
pub fn sync_pipeline(stages: usize, stage_len: usize) -> Dag {
    assert!(stages >= 1 && stage_len >= 1);
    let mut b = DagBuilder::new();
    let root = b.thread();
    let mut prev_stage: Vec<NodeId> = (0..stage_len).map(|_| b.node(root)).collect();
    let mut child_lasts: Vec<NodeId> = Vec::new();
    for _ in 1..stages {
        // The root thread spawns each stage.
        let s = b.node(root);
        let (t, first) = b.spawn_thread(s);
        let mut stage_nodes = vec![first];
        for _ in 1..stage_len {
            stage_nodes.push(b.node(t));
        }
        for k in 0..stage_len {
            // V in the previous stage enables P in this one.
            b.sync(prev_stage[k], stage_nodes[k]);
        }
        child_lasts.push(*stage_nodes.last().unwrap());
        prev_stage = stage_nodes;
    }
    // Join the spawned stages back at the root thread. Out-degree limits
    // force a join ladder: each rung waits for one stage. The root thread's
    // own first stage is ordered by its chain, so it needs no rung.
    for last in child_lasts {
        let rung = b.node(root);
        b.sync(last, rung);
    }
    b.finish().expect("pipeline dag is valid by construction")
}

/// A wavefront (2-D stencil) computation: an `rows × cols` grid where
/// cell `(i, j)` depends on `(i-1, j)` and `(i, j-1)`. Each row is one
/// thread; the column dependencies are `Enable` edges, so threads
/// repeatedly block mid-chain and are re-enabled by their upper
/// neighbour — the heaviest block/enable traffic of any generator.
/// `T∞ = Θ(rows + cols)`, `T₁ = Θ(rows · cols)`.
pub fn wavefront(rows: usize, cols: usize) -> Dag {
    assert!(rows >= 1 && cols >= 1);
    let mut b = DagBuilder::new();
    let root = b.thread();
    // Row 0 lives on the root thread.
    let mut prev_row: Vec<NodeId> = (0..cols).map(|_| b.node(root)).collect();
    let mut row_lasts: Vec<NodeId> = Vec::new();
    for _ in 1..rows {
        let s = b.node(root);
        let (t, first) = b.spawn_thread(s);
        let mut row = vec![first];
        for _ in 1..cols {
            row.push(b.node(t));
        }
        for j in 0..cols {
            b.sync(prev_row[j], row[j]);
        }
        row_lasts.push(*row.last().unwrap());
        prev_row = row;
    }
    // Join ladder on the root thread.
    for last in row_lasts {
        let rung = b.node(root);
        b.sync(last, rung);
    }
    b.finish().expect("wavefront dag is valid by construction")
}

/// A "comb": a long spine thread that spawns a tiny tooth thread every
/// `spacing` nodes. The teeth are the only stealable work and each is
/// nearly free, so the steal-to-work ratio is maximal — a stress test
/// for steal overheads and for the Theorem-9 throw bound's constant.
pub fn comb(teeth: usize, spacing: usize, tooth_len: usize) -> Dag {
    assert!(teeth >= 1 && spacing >= 1 && tooth_len >= 1);
    let mut b = DagBuilder::new();
    let spine = b.thread();
    let mut tooth_lasts = Vec::with_capacity(teeth);
    for _ in 0..teeth {
        b.nodes(spine, spacing);
        let s = b.node(spine);
        let (t, _first) = b.spawn_thread(s);
        tooth_lasts.push(b.nodes(t, tooth_len));
    }
    for last in tooth_lasts {
        let rung = b.node(spine);
        b.sync(last, rung);
    }
    b.finish().expect("comb dag is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_metrics() {
        let d = chain(17);
        assert_eq!(d.work(), 17);
        assert_eq!(d.critical_path(), 17);
        assert_eq!(d.num_threads(), 1);
    }

    #[test]
    fn fork_join_tree_structure() {
        for depth in 0..6 {
            let seq = 2;
            let d = fork_join_tree(depth, seq);
            // Thread count: 2^(depth+1) - 1 tasks.
            assert_eq!(
                d.num_threads(),
                (1usize << (depth + 1)) - 1,
                "depth {depth}"
            );
            // Work: internal tasks have 2*seq + 3 nodes (seq + 2 spawns +
            // join + seq), leaves have 2*seq + 1, and every spawned (non-
            // root) thread carries one thread-entry node where the spawn
            // edge lands.
            let internals = (1u64 << depth) - 1;
            let leaves = 1u64 << depth;
            let spawned_threads = internals + leaves - 1;
            let expect =
                internals * (2 * seq as u64 + 3) + leaves * (2 * seq as u64 + 1) + spawned_threads;
            assert_eq!(d.work(), expect, "depth {depth}");
        }
    }

    #[test]
    fn fork_join_critical_path_grows_linearly_in_depth() {
        let d1 = fork_join_tree(3, 2);
        let d2 = fork_join_tree(6, 2);
        // T∞ grows ~linearly with depth while T1 grows exponentially, so
        // parallelism must increase.
        assert!(d2.parallelism() > 2.0 * d1.parallelism());
    }

    #[test]
    fn fib_is_unbalanced_but_valid() {
        let d = fib(10, 2);
        assert!(d.num_threads() > 20);
        assert!(d.parallelism() > 2.0);
    }

    #[test]
    fn fib_cutoff_equals_n_is_serial() {
        let d = fib(5, 5);
        assert_eq!(d.num_threads(), 1);
        assert_eq!(d.work(), d.critical_path());
    }

    #[test]
    fn wide_shallow_has_high_parallelism() {
        let d = wide_shallow(64, 100);
        assert!(d.work() >= 64 * 100);
        // T∞ ≈ 2 lg 64 + 100 + overhead; parallelism should be large.
        assert!(
            d.parallelism() > 20.0,
            "parallelism {} too low (T1={} Tinf={})",
            d.parallelism(),
            d.work(),
            d.critical_path()
        );
    }

    #[test]
    fn wide_shallow_degenerate_width_one() {
        let d = wide_shallow(1, 10);
        assert_eq!(d.num_threads(), 1);
        assert_eq!(d.work(), 10);
    }

    #[test]
    fn random_series_parallel_deterministic_and_near_budget() {
        let a = random_series_parallel(42, 5000);
        let b = random_series_parallel(42, 5000);
        assert_eq!(a.work(), b.work());
        assert_eq!(a.critical_path(), b.critical_path());
        // Budget is approximate but should be within 2x.
        assert!(a.work() >= 2500 && a.work() <= 10_000, "work {}", a.work());
        let c = random_series_parallel(43, 5000);
        // Overwhelmingly likely to differ structurally.
        assert!(a.work() != c.work() || a.critical_path() != c.critical_path());
    }

    #[test]
    fn sync_pipeline_valid_and_has_cross_edges() {
        let d = sync_pipeline(4, 8);
        assert_eq!(d.num_threads(), 4);
        let enables = d
            .edges()
            .filter(|e| e.kind == crate::dag::EdgeKind::Enable)
            .count();
        // 3 stage boundaries × 8 per-slot edges + join ladder edges.
        assert!(enables >= 3 * 8, "only {enables} enable edges");
        // The pipeline cannot finish faster than one stage plus the skew.
        assert!(d.critical_path() >= 8);
    }

    #[test]
    fn sync_pipeline_single_stage() {
        let d = sync_pipeline(1, 5);
        assert_eq!(d.num_threads(), 1);
    }

    #[test]
    fn wavefront_metrics() {
        let d = wavefront(6, 10);
        assert_eq!(d.num_threads(), 6);
        // Work: 6 rows × 10 cells + 5 spawners + 5 rungs.
        assert_eq!(d.work(), 60 + 5 + 5);
        // The diagonal frontier: T∞ grows like rows + cols, not rows·cols.
        assert!(d.critical_path() < 40, "Tinf = {}", d.critical_path());
        assert!(d.parallelism() > 1.8);
        let enables = d
            .edges()
            .filter(|e| e.kind == crate::dag::EdgeKind::Enable)
            .count();
        assert!(enables >= 5 * 10, "only {enables} enable edges");
    }

    #[test]
    fn wavefront_degenerate_shapes() {
        assert_eq!(wavefront(1, 7).work(), 7);
        assert_eq!(wavefront(1, 7).critical_path(), 7);
        let col = wavefront(5, 1);
        assert_eq!(col.num_threads(), 5);
        // A single column is fully serial through the syncs.
        assert!(col.critical_path() >= 5);
    }

    #[test]
    fn comb_metrics() {
        let d = comb(10, 5, 2);
        assert_eq!(d.num_threads(), 11);
        // Spine: 10×(5+1) + 10 rungs; teeth: 10×(1 entry + 2).
        assert_eq!(d.work(), 60 + 10 + 30);
        // Teeth are tiny: parallelism barely above 1.
        assert!(d.parallelism() < 2.0);
    }

    #[test]
    fn generators_all_validate() {
        // Every generator output passed `finish()`, but double-check a few
        // global invariants directly.
        for d in [
            chain(3),
            fork_join_tree(4, 1),
            fib(9, 2),
            wide_shallow(10, 5),
            random_series_parallel(7, 800),
            sync_pipeline(3, 5),
            wavefront(4, 6),
            comb(5, 3, 2),
        ] {
            assert_eq!(d.in_degree(d.root()), 0);
            assert_eq!(d.out_degree(d.final_node()), 0);
            for i in 0..d.num_nodes() {
                assert!(d.out_degree(crate::ids::NodeId(i as u32)) <= 2);
            }
        }
    }
}
