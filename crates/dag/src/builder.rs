//! Incremental construction of computation dags.
//!
//! [`DagBuilder`] mirrors how a multithreaded program unfolds: create
//! threads, append instruction nodes to them (chain edges are implicit),
//! and record spawn and synchronization edges. [`DagBuilder::finish`]
//! validates the paper's structural assumptions and freezes the dag.

use crate::dag::{Dag, DagError, EdgeKind, Succs};
use crate::ids::{NodeId, ThreadId};

/// Builder for [`Dag`]. The first thread created is the root thread.
///
/// ```
/// use abp_dag::DagBuilder;
///
/// // A two-node serial computation.
/// let mut b = DagBuilder::new();
/// let t = b.thread();
/// let _a = b.node(t);
/// let _b = b.node(t);
/// let dag = b.finish().unwrap();
/// assert_eq!(dag.work(), 2);
/// assert_eq!(dag.critical_path(), 2);
/// ```
#[derive(Default)]
pub struct DagBuilder {
    succs: Vec<Succs>,
    thread_of: Vec<ThreadId>,
    threads: Vec<Vec<NodeId>>,
    errors: Vec<DagError>,
}

impl DagBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a new thread. The first call creates the root thread.
    pub fn thread(&mut self) -> ThreadId {
        let id = ThreadId(self.threads.len() as u32);
        self.threads.push(Vec::new());
        id
    }

    /// Appends an instruction node to `t`, adding the implicit chain
    /// (`Continue`) edge from the thread's previous node.
    pub fn node(&mut self, t: ThreadId) -> NodeId {
        let id = NodeId(self.succs.len() as u32);
        self.succs.push(Succs::default());
        self.thread_of.push(t);
        if let Some(&prev) = self.threads[t.index()].last() {
            if let Err(e) = self.succs[prev.index()].push(id, EdgeKind::Continue) {
                self.errors.push(e);
            }
        }
        self.threads[t.index()].push(id);
        id
    }

    /// Appends `n` chained instruction nodes to `t`, returning the last one.
    /// Panics if `n == 0`.
    pub fn nodes(&mut self, t: ThreadId, n: usize) -> NodeId {
        assert!(n > 0, "DagBuilder::nodes requires n > 0");
        let mut last = self.node(t);
        for _ in 1..n {
            last = self.node(t);
        }
        last
    }

    /// Convenience: creates a new thread whose first node is spawned by
    /// `from`. Returns the thread and its first node.
    pub fn spawn_thread(&mut self, from: NodeId) -> (ThreadId, NodeId) {
        let t = self.thread();
        let first = self.node(t);
        self.spawn(from, first);
        (t, first)
    }

    /// Records a spawn edge from `from` (the spawning instruction) to `to`
    /// (which must end up being the first node of its thread).
    pub fn spawn(&mut self, from: NodeId, to: NodeId) {
        if let Err(e) = self.succs[from.index()].push(to, EdgeKind::Spawn) {
            self.errors.push(e);
        }
    }

    /// Records a synchronization (`Enable`) edge: `to` cannot execute until
    /// `from` has executed. Models joins and semaphore V→P pairs.
    pub fn sync(&mut self, from: NodeId, to: NodeId) {
        // Reject an enable edge that merely restates the thread chain.
        if self.thread_of[from.index()] == self.thread_of[to.index()] {
            let chain = &self.threads[self.thread_of[from.index()].index()];
            if let Some(pos) = chain.iter().position(|&n| n == from) {
                if chain.get(pos + 1) == Some(&to) {
                    self.errors
                        .push(DagError::EnableWithinThreadForward { from, to });
                    return;
                }
            }
        }
        if let Err(e) = self.succs[from.index()].push(to, EdgeKind::Enable) {
            self.errors.push(e);
        }
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if no nodes have been added.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Validates and freezes the dag.
    pub fn finish(self) -> Result<Dag, DagError> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        Dag::from_parts(self.succs, self.thread_of, self.threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        b.nodes(t, 5);
        let d = b.finish().unwrap();
        assert_eq!(d.work(), 5);
        assert_eq!(d.critical_path(), 5);
        assert_eq!(d.parallelism(), 1.0);
        assert_eq!(d.num_threads(), 1);
        assert_eq!(d.root(), NodeId(0));
        assert_eq!(d.final_node(), NodeId(4));
    }

    #[test]
    fn spawn_and_join() {
        // root: a -> s -> j -> z ; child: c1 -> c2 ; spawn s->c1, join c2->j
        let mut b = DagBuilder::new();
        let t = b.thread();
        let _a = b.node(t);
        let s = b.node(t);
        let (child, _c1) = b.spawn_thread(s);
        let c2 = b.node(child);
        let j = b.node(t);
        let _z = b.node(t);
        b.sync(c2, j);
        let d = b.finish().unwrap();
        assert_eq!(d.work(), 6);
        // Longest: a s c1 c2 j z = 6 nodes.
        assert_eq!(d.critical_path(), 6);
        assert_eq!(d.num_threads(), 2);
        assert_eq!(d.in_degree(j), 2);
        assert_eq!(d.out_degree(s), 2);
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(DagBuilder::new().finish().unwrap_err(), DagError::Empty);
    }

    #[test]
    fn rejects_empty_thread() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        b.node(t);
        b.thread(); // never given nodes
        assert!(matches!(
            b.finish().unwrap_err(),
            DagError::EmptyThread { .. }
        ));
    }

    #[test]
    fn rejects_two_roots() {
        // Second thread with no spawn edge in -> two in-degree-0 nodes, and
        // also a missing-spawn violation; BadRoot or BadSpawn acceptable,
        // builder reports the spawn problem first by validation order.
        let mut b = DagBuilder::new();
        let t0 = b.thread();
        let a = b.node(t0);
        let t1 = b.thread();
        let c = b.node(t1);
        b.sync(a, c); // gives t1's first node an in-edge, but not a spawn
        let err = b.finish().unwrap_err();
        assert!(matches!(err, DagError::BadSpawn { .. }), "{err:?}");
    }

    #[test]
    fn rejects_two_finals() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        let s = b.node(t);
        let (_c, _first) = b.spawn_thread(s); // child never joins back
        let _z = b.node(t);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, DagError::BadFinal { out_degree_zero: 2 }));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        let a = b.node(t);
        let s = b.node(t);
        let (child, c1) = b.spawn_thread(s);
        let c2 = b.node(child);
        let j = b.node(t);
        let _z = b.node(t); // keep a unique final node so Cyclic is reached
        b.sync(c2, j);
        b.sync(j, c1); // back edge: cycle c1 -> c2 -> j -> c1
        let _ = a;
        assert_eq!(b.finish().unwrap_err(), DagError::Cyclic);
    }

    #[test]
    fn rejects_out_degree_three() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        let a = b.node(t);
        let _next = b.node(t); // a now has 1 out-edge (continue)
        let (_c1, f1) = b.spawn_thread(a); // 2
        let t2 = b.thread();
        let f2 = b.node(t2);
        b.spawn(a, f2); // 3 -> error
        let _ = f1;
        assert_eq!(b.finish().unwrap_err(), DagError::OutDegreeExceeded);
    }

    #[test]
    fn rejects_redundant_chain_enable() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        let a = b.node(t);
        let c = b.node(t);
        b.sync(a, c); // same as the implicit continue edge
        assert!(matches!(
            b.finish().unwrap_err(),
            DagError::EnableWithinThreadForward { .. }
        ));
    }

    #[test]
    fn preds_and_succs_agree() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        let _a = b.node(t);
        let s = b.node(t);
        let (child, _c1) = b.spawn_thread(s);
        let c2 = b.node(child);
        let j = b.node(t);
        b.sync(c2, j);
        let d = b.finish().unwrap();
        for e in d.edges().collect::<Vec<_>>() {
            assert!(d.preds(e.to).contains(&e.from));
        }
        let total_pred: usize = (0..d.num_nodes())
            .map(|i| d.in_degree(NodeId(i as u32)))
            .sum();
        assert_eq!(total_pred, d.num_edges());
    }

    #[test]
    fn levels_partition_nodes() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        let s = b.node(t);
        let (child, _c1) = b.spawn_thread(s);
        let c2 = b.node(child);
        let j = b.node(t);
        b.sync(c2, j);
        let d = b.finish().unwrap();
        let levels = d.levels();
        assert_eq!(levels.len() as u64, d.critical_path());
        let total: usize = levels.iter().map(Vec::len).sum();
        assert_eq!(total, d.num_nodes());
        for (k, level) in levels.iter().enumerate() {
            for &u in level {
                assert_eq!(d.depth(u) as usize, k);
            }
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let mut b = DagBuilder::new();
        let t = b.thread();
        let s = b.node(t);
        let (c, _f) = b.spawn_thread(s);
        let c2 = b.node(c);
        let j = b.node(t);
        b.sync(c2, j);
        let d = b.finish().unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; d.num_nodes()];
            for (i, &u) in d.topo_order().iter().enumerate() {
                p[u.index()] = i;
            }
            p
        };
        for e in d.edges().collect::<Vec<_>>() {
            assert!(pos[e.from.index()] < pos[e.to.index()]);
        }
    }
}
