//! Deterministic pseudo-random number generation for reproducible experiments.
//!
//! Every source of randomness in this workspace — victim selection in the
//! work stealer, the benign kernel adversary's process choices, and the
//! workload generators — draws from [`DetRng`], a xoshiro256++ generator
//! seeded through SplitMix64. Runs are therefore bit-reproducible across
//! platforms and releases, which matters because the paper's experiments are
//! statements about *distributions* (expected time, high-probability tails)
//! that we re-estimate from many seeded trials.

/// SplitMix64 step, used to expand a 64-bit seed into xoshiro state.
///
/// This is the seeding procedure recommended by the xoshiro authors: it
/// guarantees the expanded state is not all-zero and decorrelates nearby
/// seeds.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Not cryptographic. Statistically strong enough for scheduling decisions
/// and workload synthesis, and — unlike external crates — its stream is
/// frozen in this repository, so experiment outputs never shift under a
/// dependency upgrade.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { s }
    }

    /// Derives an independent child generator; used to give each simulated
    /// process its own stream so per-process choices do not depend on the
    /// interleaving in which processes happen to draw.
    pub fn fork(&mut self, stream: u64) -> Self {
        let a = self.next_u64();
        DetRng::new(a ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, n)`. `n` must be nonzero.
    ///
    /// Uses Lemire's multiply-shift with rejection, so the result is exactly
    /// uniform (no modulo bias) — the victim-selection analysis in the paper
    /// assumes uniform victims.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "DetRng::below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, n)`.
    #[inline]
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial: `true` with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.unit_f64() < p
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below_usize(i + 1);
            xs.swap(i, j);
        }
    }

    /// Selects `k` distinct indices from `[0, n)` uniformly at random,
    /// returned in ascending order. Used by the benign kernel adversary to
    /// pick which processes run at a round.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        debug_assert!(k <= n);
        // Floyd's algorithm: O(k) expected, no O(n) scratch.
        let mut chosen = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.below_usize(j + 1);
            if chosen.contains(&t) {
                chosen.push(j);
            } else {
                chosen.push(t);
            }
        }
        chosen.sort_unstable();
        chosen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = DetRng::new(42);
        let mut b = DetRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::new(1);
        let mut b = DetRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds look correlated");
    }

    #[test]
    fn below_is_in_range_and_hits_all_values() {
        let mut rng = DetRng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "some residue never sampled");
    }

    #[test]
    fn below_roughly_uniform() {
        let mut rng = DetRng::new(99);
        let n = 8u64;
        let trials = 80_000;
        let mut counts = [0u32; 8];
        for _ in 0..trials {
            counts[rng.below(n) as usize] += 1;
        }
        let expect = trials as f64 / n as f64;
        for &c in &counts {
            let dev = (c as f64 - expect).abs() / expect;
            assert!(dev < 0.05, "bucket off by {:.1}%", dev * 100.0);
        }
    }

    #[test]
    fn range_inclusive_bounds() {
        let mut rng = DetRng::new(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            let v = rng.range_inclusive(5, 9);
            assert!((5..=9).contains(&v));
            lo_seen |= v == 5;
            hi_seen |= v == 9;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn unit_f64_in_unit_interval() {
        let mut rng = DetRng::new(11);
        for _ in 0..10_000 {
            let x = rng.unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = DetRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        let hits = (0..10_000).filter(|_| rng.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DetRng::new(8);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle was identity");
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut rng = DetRng::new(13);
        for _ in 0..200 {
            let k = rng.below_usize(16);
            let s = rng.sample_indices(16, k);
            assert_eq!(s.len(), k);
            for w in s.windows(2) {
                assert!(w[0] < w[1], "not strictly ascending: {s:?}");
            }
            assert!(s.iter().all(|&i| i < 16));
        }
    }

    #[test]
    fn sample_indices_full_and_empty() {
        let mut rng = DetRng::new(21);
        assert_eq!(rng.sample_indices(5, 0), Vec::<usize>::new());
        assert_eq!(rng.sample_indices(5, 5), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn fork_streams_are_independent_looking() {
        let mut root = DetRng::new(77);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4);
    }
}
