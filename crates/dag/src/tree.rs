//! Rooted-tree workloads for the steal-bound theory suite.
//!
//! Leiserson, Schardl, and Suksompong (*Upper Bounds on Number of Steals
//! in Rooted Trees*) bound the number of successful steals any
//! work-stealing execution of a rooted tree can perform. To check that
//! bound against the instruction-stepped simulator, this module provides:
//!
//! * [`RootedTree`] — an explicit rooted tree with structural accessors
//!   ([`RootedTree::height`], [`RootedTree::max_degree`]) and the
//!   *spawn height* of its ABP encoding (see below);
//! * seeded, deterministic generators for the four shapes the TH1
//!   experiment sweeps: [`spine`], [`full_kary`], [`random_attachment`],
//!   and [`caterpillar`];
//! * [`RootedTree::to_dag`] — the encoding of a tree as a valid ABP
//!   computation dag (out-degree ≤ 2, unique root and final node).
//!
//! # Encoding
//!
//! Each tree node becomes one thread: `body` nodes of straight-line
//! work, then one spawn instruction per child (spawning the child's
//! thread), then one join rung per child. Because the simulator's deques
//! hold only the continuations pushed at spawn instructions, a steal in
//! the encoded execution corresponds exactly to a steal of a pending
//! subtree in the rooted-tree model. The encoding serializes a node's
//! `k` spawns into a chain of `k` binary branch points, so the tree the
//! steal bound applies to is the *binarized* spawn tree: branching
//! factor 2 and height [`RootedTree::spawn_height`] (the maximum number
//! of branch points on any root-to-leaf path of the encoding).

use crate::builder::DagBuilder;
use crate::dag::Dag;
use crate::ids::{NodeId, ThreadId};
use crate::rng::DetRng;

/// An explicit rooted tree. Node 0 is the root; every other node has
/// exactly one parent with a smaller construction-time index is *not*
/// required, but all generators here produce parent-before-child order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootedTree {
    children: Vec<Vec<usize>>,
    parent: Vec<Option<usize>>,
}

impl RootedTree {
    /// A tree with `n` nodes and no edges yet (all nodes roots until
    /// attached). Generators attach every node except 0.
    fn with_nodes(n: usize) -> Self {
        assert!(n >= 1, "a rooted tree has at least its root");
        RootedTree {
            children: vec![Vec::new(); n],
            parent: vec![None; n],
        }
    }

    /// Attaches `child` under `parent`. Panics if `child` already has a
    /// parent or the attachment would make `child` its own ancestor
    /// (generators only attach fresh nodes, so a cheap check suffices).
    fn attach(&mut self, parent: usize, child: usize) {
        assert!(child != 0, "the root cannot be attached");
        assert!(self.parent[child].is_none(), "node {child} attached twice");
        self.parent[child] = Some(parent);
        self.children[parent].push(child);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// Number of edges (`num_nodes − 1` for a connected tree).
    pub fn num_edges(&self) -> usize {
        self.children.iter().map(Vec::len).sum()
    }

    /// Children of `v`, in spawn order.
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// Parent of `v` (`None` for the root).
    pub fn parent(&self, v: usize) -> Option<usize> {
        self.parent[v]
    }

    /// Number of leaves (nodes with no children).
    pub fn num_leaves(&self) -> usize {
        self.children.iter().filter(|c| c.is_empty()).count()
    }

    /// Height in edges: the longest root-to-leaf path. 0 for a single
    /// node.
    pub fn height(&self) -> u64 {
        let mut depth = vec![0u64; self.num_nodes()];
        let mut max = 0;
        // Generators produce parent-before-child indices, but compute
        // via an explicit traversal so the accessor never depends on it.
        for v in self.topo_order() {
            if let Some(p) = self.parent[v] {
                depth[v] = depth[p] + 1;
                max = max.max(depth[v]);
            }
        }
        max
    }

    /// Maximum number of children of any node (the branching factor `k`
    /// of the rooted-tree steal bound). 0 for a single node.
    pub fn max_degree(&self) -> u64 {
        self.children.iter().map(Vec::len).max().unwrap_or(0) as u64
    }

    /// Height of the *binarized spawn tree* of the ABP encoding: the
    /// maximum number of spawn instructions (binary branch points) on
    /// any root-to-leaf path of [`RootedTree::to_dag`]'s output. A node
    /// reaches its `j`-th child (1-based) after `j` of its own spawns,
    /// so `sh(v) = max_j (j + sh(child_j))`, 0 at leaves. This is the
    /// height to feed the Leiserson et al. bound with branching 2.
    pub fn spawn_height(&self) -> u64 {
        let mut sh = vec![0u64; self.num_nodes()];
        for v in self.topo_order().into_iter().rev() {
            sh[v] = self.children[v]
                .iter()
                .enumerate()
                .map(|(i, &c)| (i as u64 + 1) + sh[c])
                .max()
                .unwrap_or(0);
        }
        sh[0]
    }

    /// Nodes in root-first (parent before child) order. Panics if the
    /// parent links are cyclic or disconnected — the structural
    /// invariant every generator must maintain.
    fn topo_order(&self) -> Vec<usize> {
        let n = self.num_nodes();
        let mut order = Vec::with_capacity(n);
        let mut stack = vec![0usize];
        while let Some(v) = stack.pop() {
            order.push(v);
            // Reverse so children pop in spawn order (cosmetic only).
            stack.extend(self.children[v].iter().rev());
        }
        assert_eq!(order.len(), n, "tree is disconnected or cyclic");
        order
    }

    /// Checks the structural invariants the generators promise: node 0
    /// is the unique root, parent/children links agree, and every node
    /// is reachable from the root (no cycles, no orphans).
    pub fn check_invariants(&self) {
        assert_eq!(self.parent[0], None, "root has a parent");
        for v in 1..self.num_nodes() {
            let p = self.parent[v].unwrap_or_else(|| panic!("node {v} is an orphan"));
            assert!(
                self.children[p].contains(&v),
                "parent link {v}→{p} missing from children list"
            );
        }
        assert_eq!(self.num_edges(), self.num_nodes() - 1, "edge count");
        let _ = self.topo_order(); // panics on cycles/disconnection
    }

    /// Encodes the tree as an ABP computation dag: one thread per tree
    /// node, `body ≥ 1` straight-line nodes, then one spawn instruction
    /// per child and one join rung per child. Construction is
    /// depth-first, so node indices follow the `P = 1` execution order
    /// (good sequential locality for the cache model).
    pub fn to_dag(&self, body: usize) -> Dag {
        assert!(body >= 1, "each task needs at least one body node");
        let mut b = DagBuilder::new();
        let root = b.thread();
        self.build_thread(&mut b, root, 0, body, None);
        b.finish().expect("tree encoding is valid by construction")
    }

    /// Builds node `v`'s thread; returns the thread's last dag node.
    /// Non-root threads already carry their spawn-target `entry` node,
    /// so they get `body − 1` further body nodes (every task costs the
    /// same `body` nodes of straight-line work).
    fn build_thread(
        &self,
        b: &mut DagBuilder,
        t: ThreadId,
        v: usize,
        body: usize,
        entry: Option<NodeId>,
    ) -> NodeId {
        let mut last = match entry {
            None => b.nodes(t, body),
            Some(e) if body == 1 => e,
            Some(_) => b.nodes(t, body - 1),
        };
        let mut child_lasts = Vec::with_capacity(self.children[v].len());
        for &c in &self.children[v] {
            let s = b.node(t);
            let (ct, centry) = b.spawn_thread(s);
            child_lasts.push(self.build_thread(b, ct, c, body, Some(centry)));
        }
        for cl in child_lasts {
            let rung = b.node(t);
            b.sync(cl, rung);
            last = rung;
        }
        last
    }
}

/// A path: node `i`'s only child is `i + 1`. Height `n − 1`, degree 1 —
/// the tree with the tallest binarized spawn height per node.
pub fn spine(n: usize) -> RootedTree {
    let mut t = RootedTree::with_nodes(n);
    for i in 1..n {
        t.attach(i - 1, i);
    }
    t.check_invariants();
    t
}

/// The complete `k`-ary tree of height `h` (edges): `(k^(h+1) − 1)/(k − 1)`
/// nodes, the exact shape Leiserson et al. state their bound for.
pub fn full_kary(k: usize, h: u32) -> RootedTree {
    assert!(k >= 1, "branching factor must be at least 1");
    let mut n = 1usize;
    let mut level = 1usize;
    for _ in 0..h {
        level = level.checked_mul(k).expect("tree too large");
        n = n.checked_add(level).expect("tree too large");
    }
    let mut t = RootedTree::with_nodes(n);
    // BFS order: children of node v are contiguous after the frontier.
    let mut next = 1usize;
    let mut frontier = vec![0usize];
    for _ in 0..h {
        let mut new_frontier = Vec::with_capacity(frontier.len() * k);
        for &v in &frontier {
            for _ in 0..k {
                t.attach(v, next);
                new_frontier.push(next);
                next += 1;
            }
        }
        frontier = new_frontier;
    }
    t.check_invariants();
    t
}

/// A random recursive tree: node `i` attaches to a uniformly random
/// earlier node. Deterministic given `seed`; expected height `Θ(log n)`
/// with occasional high-degree hubs — the "irregular" point of the
/// sweep.
pub fn random_attachment(seed: u64, n: usize) -> RootedTree {
    let mut rng = DetRng::new(seed);
    let mut t = RootedTree::with_nodes(n);
    for i in 1..n {
        let p = rng.below_usize(i);
        t.attach(p, i);
    }
    t.check_invariants();
    t
}

/// A caterpillar: a spine of `spine_len` nodes where every spine node
/// grows `legs` leaf children (legs spawn before the next spine
/// segment). Interpolates between [`spine`] (`legs = 0`) and a broom.
pub fn caterpillar(spine_len: usize, legs: usize) -> RootedTree {
    assert!(spine_len >= 1);
    let n = spine_len * (legs + 1);
    let mut t = RootedTree::with_nodes(n);
    let mut next = 1usize;
    let mut prev_spine = 0usize;
    for s in 0..spine_len {
        for _ in 0..legs {
            t.attach(prev_spine, next);
            next += 1;
        }
        if s + 1 < spine_len {
            t.attach(prev_spine, next);
            prev_spine = next;
            next += 1;
        }
    }
    t.check_invariants();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spine_shape() {
        for n in [1, 2, 17, 100] {
            let t = spine(n);
            assert_eq!(t.num_nodes(), n);
            assert_eq!(t.num_edges(), n - 1);
            assert_eq!(t.height(), n as u64 - 1);
            assert_eq!(t.max_degree(), if n > 1 { 1 } else { 0 });
            assert_eq!(t.num_leaves(), 1);
            // One child per node: spawn height equals ordinary height.
            assert_eq!(t.spawn_height(), n as u64 - 1);
        }
    }

    #[test]
    fn full_kary_shape() {
        for (k, h, nodes) in [(2, 0, 1), (2, 3, 15), (3, 3, 40), (4, 2, 21), (1, 5, 6)] {
            let t = full_kary(k, h);
            assert_eq!(t.num_nodes(), nodes, "k={k} h={h}");
            assert_eq!(t.height(), h as u64);
            assert_eq!(t.max_degree(), if h > 0 { k as u64 } else { 0 });
            assert_eq!(t.num_leaves(), k.pow(h));
            // Serializing k spawns per level: spawn height is k·h.
            assert_eq!(t.spawn_height(), k as u64 * h as u64);
        }
    }

    #[test]
    fn random_attachment_is_deterministic_and_recursive() {
        let a = random_attachment(7, 300);
        let b = random_attachment(7, 300);
        assert_eq!(a, b, "same seed must give the same tree");
        let c = random_attachment(8, 300);
        assert_ne!(a, c, "different seeds almost surely differ");
        // Recursive-tree property: every parent index is smaller.
        for v in 1..a.num_nodes() {
            assert!(a.parent(v).unwrap() < v);
        }
        // Height is well below n (Θ(log n) in expectation).
        assert!(a.height() < 60, "height {} suspicious", a.height());
        assert!(a.max_degree() >= 2);
    }

    #[test]
    fn caterpillar_shape() {
        let t = caterpillar(10, 3);
        assert_eq!(t.num_nodes(), 40);
        // Legs hang off every spine node; the deepest is a leg of the
        // last spine node.
        assert_eq!(t.height(), 10);
        // Interior spine nodes: legs + the next spine segment.
        assert_eq!(t.max_degree(), 4);
        // Every spine node carries 3 leaf legs; spine nodes are internal.
        assert_eq!(t.num_leaves(), 30);
        // legs = 0 degenerates to a spine.
        assert_eq!(caterpillar(5, 0), spine(5));
    }

    #[test]
    fn spawn_height_counts_branch_points() {
        // A 2-node spine: one spawn. A root with 3 children: the third
        // child sits behind 3 spawns.
        assert_eq!(spine(2).spawn_height(), 1);
        assert_eq!(full_kary(3, 1).spawn_height(), 3);
        // Caterpillar: legs spawn first, so each spine step costs
        // legs + 1 branch points.
        let t = caterpillar(4, 2);
        assert_eq!(t.spawn_height(), 3 * 3 + 2);
    }

    #[test]
    fn to_dag_encodes_threads_and_work() {
        for (tree, label) in [
            (spine(12), "spine"),
            (full_kary(2, 4), "kary"),
            (random_attachment(3, 64), "rand"),
            (caterpillar(6, 2), "caterpillar"),
        ] {
            for body in [1, 3] {
                let d = tree.to_dag(body);
                let n = tree.num_nodes() as u64;
                // One thread per tree node.
                assert_eq!(d.num_threads(), tree.num_nodes(), "{label}");
                // Work: body per task + one spawn and one rung per edge.
                assert_eq!(
                    d.work(),
                    n * body as u64 + 2 * (n - 1),
                    "{label} body={body}"
                );
                assert_eq!(d.in_degree(d.root()), 0);
                assert_eq!(d.out_degree(d.final_node()), 0);
                for i in 0..d.num_nodes() {
                    assert!(d.out_degree(NodeId(i as u32)) <= 2);
                }
            }
        }
    }

    #[test]
    fn to_dag_single_node_is_a_chain() {
        let d = spine(1).to_dag(4);
        assert_eq!(d.work(), 4);
        assert_eq!(d.critical_path(), 4);
        assert_eq!(d.num_threads(), 1);
    }

    #[test]
    fn to_dag_depth_first_indices_follow_serial_order() {
        // Depth-first construction: the subtree spawned at s occupies a
        // contiguous index range right after s (sequential locality for
        // the cache model's data blocks).
        let tree = full_kary(2, 3);
        let d = tree.to_dag(2);
        let mut spawn_targets = Vec::new();
        for e in d.edges() {
            if e.kind == crate::dag::EdgeKind::Spawn {
                spawn_targets.push((e.from, e.to));
            }
        }
        for (from, to) in spawn_targets {
            assert_eq!(to.index(), from.index() + 1, "spawn target not adjacent");
        }
    }
}
