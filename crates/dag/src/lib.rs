//! Multithreaded-computation dags for the ABP scheduling model.
//!
//! This crate implements the computation model of *Thread Scheduling for
//! Multiprogrammed Multiprocessors* (Arora, Blumofe, Plaxton; SPAA 1998):
//! a computation is a dag of single-instruction nodes partitioned into
//! threads (chains), with spawn and synchronization edges, characterized by
//! its work `T₁` (node count) and critical-path length `T∞` (longest path,
//! in nodes).
//!
//! Contents:
//!
//! * [`Dag`] / [`DagBuilder`] — validated dag construction (out-degree ≤ 2,
//!   unique root and final node, acyclic, threads are chains);
//! * [`gen`] — deterministic workload generators (serial chains, fork-join
//!   trees, Fibonacci recursion, random series-parallel, semaphore
//!   pipelines);
//! * [`tree`] — rooted-tree workloads (spine, full k-ary, random
//!   attachment, caterpillar) and their ABP-dag encoding, for the
//!   steal-bound theory suite;
//! * [`examples::figure1`] — the paper's running example;
//! * [`EnablingTree`] — designated parents, depths, and the node weights
//!   `w(u) = T∞ − d(u)` that drive the potential-function analysis;
//! * [`DetRng`] — the seeded PRNG used across the workspace so experiments
//!   are bit-reproducible.

pub mod builder;
pub mod dag;
pub mod enabling;
pub mod examples;
pub mod export;
pub mod gen;
pub mod ids;
pub mod rng;
pub mod tree;

pub use builder::DagBuilder;
pub use dag::{Dag, DagError, Edge, EdgeKind};
pub use enabling::EnablingTree;
pub use export::{stats, to_dot, DagStats};
pub use ids::{NodeId, ProcId, ThreadId};
pub use rng::DetRng;
pub use tree::RootedTree;
