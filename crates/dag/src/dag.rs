//! The multithreaded-computation dag of Section 1 of the paper.
//!
//! A computation is a directed acyclic graph in which each node is a single
//! instruction and edges are ordering constraints. Nodes are partitioned
//! into *threads*: the nodes of a thread form a chain (the thread's dynamic
//! instruction order), connected by [`EdgeKind::Continue`] edges. A
//! [`EdgeKind::Spawn`] edge runs from the spawning node of a parent thread
//! to the first node of the child thread, and a [`EdgeKind::Enable`] edge
//! expresses any other synchronization (joins, semaphores).
//!
//! Structural assumptions from the paper, enforced by validation:
//! every node has out-degree at most 2; there is exactly one *root* node
//! (in-degree 0, the first node of the root thread) and exactly one *final*
//! node (out-degree 0).

use crate::ids::{NodeId, ThreadId};
use std::fmt;

/// The kind of a dag edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Chain edge between consecutive instructions of one thread.
    Continue,
    /// Edge from a spawning node to the first node of the spawned thread.
    Spawn,
    /// Any other synchronization edge (join, semaphore V→P, ...).
    Enable,
}

/// A directed edge of the dag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    pub from: NodeId,
    pub to: NodeId,
    pub kind: EdgeKind,
}

/// Compact out-edge storage: the paper guarantees out-degree ≤ 2.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Succs {
    len: u8,
    edges: [(NodeId, EdgeKind); 2],
}

impl Default for Succs {
    fn default() -> Self {
        Succs {
            len: 0,
            edges: [(NodeId(u32::MAX), EdgeKind::Continue); 2],
        }
    }
}

impl Succs {
    pub(crate) fn push(&mut self, to: NodeId, kind: EdgeKind) -> Result<(), DagError> {
        if self.len as usize >= 2 {
            return Err(DagError::OutDegreeExceeded);
        }
        self.edges[self.len as usize] = (to, kind);
        self.len += 1;
        Ok(())
    }

    #[inline]
    pub(crate) fn as_slice(&self) -> &[(NodeId, EdgeKind)] {
        &self.edges[..self.len as usize]
    }
}

/// Validation / construction errors for computation dags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// A node would have out-degree greater than 2.
    OutDegreeExceeded,
    /// The dag contains a directed cycle.
    Cyclic,
    /// The dag has no nodes.
    Empty,
    /// There is more than one node with in-degree 0 (or the root thread's
    /// first node is not the unique such node).
    BadRoot { in_degree_zero: usize },
    /// There is not exactly one node with out-degree 0.
    BadFinal { out_degree_zero: usize },
    /// A non-root thread is missing a spawn edge into its first node, or has
    /// more than one.
    BadSpawn {
        thread: ThreadId,
        spawn_edges: usize,
    },
    /// A spawn edge does not target the first node of a thread.
    SpawnNotAtThreadStart { to: NodeId },
    /// A thread was created but never given any nodes.
    EmptyThread { thread: ThreadId },
    /// An edge references itself.
    SelfEdge { node: NodeId },
    /// The same edge was added twice.
    DuplicateEdge { from: NodeId, to: NodeId },
    /// An Enable edge duplicates the implicit thread-chain order.
    EnableWithinThreadForward { from: NodeId, to: NodeId },
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::OutDegreeExceeded => {
                write!(f, "node out-degree would exceed 2 (paper §1 assumption)")
            }
            DagError::Cyclic => write!(f, "computation graph contains a cycle"),
            DagError::Empty => write!(f, "computation graph has no nodes"),
            DagError::BadRoot { in_degree_zero } => write!(
                f,
                "expected exactly one in-degree-0 node (the root); found {in_degree_zero}"
            ),
            DagError::BadFinal { out_degree_zero } => write!(
                f,
                "expected exactly one out-degree-0 node (the final node); found {out_degree_zero}"
            ),
            DagError::BadSpawn {
                thread,
                spawn_edges,
            } => write!(
                f,
                "thread {thread} must have exactly one incoming spawn edge, found {spawn_edges}"
            ),
            DagError::SpawnNotAtThreadStart { to } => {
                write!(
                    f,
                    "spawn edge targets {to}, which is not a thread's first node"
                )
            }
            DagError::EmptyThread { thread } => write!(f, "thread {thread} has no nodes"),
            DagError::SelfEdge { node } => write!(f, "self-edge at {node}"),
            DagError::DuplicateEdge { from, to } => {
                write!(f, "duplicate edge {from} -> {to}")
            }
            DagError::EnableWithinThreadForward { from, to } => write!(
                f,
                "enable edge {from} -> {to} duplicates the thread's own chain ordering"
            ),
        }
    }
}

impl std::error::Error for DagError {}

/// An immutable, validated multithreaded-computation dag.
///
/// Built through [`crate::builder::DagBuilder`]. Construction computes and
/// caches the topological order, per-node depths, work `T₁` and
/// critical-path length `T∞`, so the accessors here are all O(1) or return
/// precomputed slices.
#[derive(Clone)]
pub struct Dag {
    pub(crate) succs: Vec<Succs>,
    /// CSR predecessor lists.
    pred_off: Vec<u32>,
    pred_dat: Vec<NodeId>,
    thread_of: Vec<ThreadId>,
    /// Nodes of each thread in chain order.
    threads: Vec<Vec<NodeId>>,
    root: NodeId,
    final_node: NodeId,
    topo: Vec<NodeId>,
    /// Longest-path depth from the root, in edges (root has depth 0).
    depth: Vec<u32>,
    /// Critical-path length T∞ in *nodes* (the paper counts nodes: the
    /// Figure-1 example's longest chain of nodes).
    critical_path: u32,
}

impl Dag {
    /// Validates raw components and builds the immutable dag. Used by the
    /// builder; not public because arbitrary component soup is easy to get
    /// wrong.
    pub(crate) fn from_parts(
        succs: Vec<Succs>,
        thread_of: Vec<ThreadId>,
        threads: Vec<Vec<NodeId>>,
    ) -> Result<Self, DagError> {
        let n = succs.len();
        if n == 0 {
            return Err(DagError::Empty);
        }
        for (t, nodes) in threads.iter().enumerate() {
            if nodes.is_empty() {
                return Err(DagError::EmptyThread {
                    thread: ThreadId(t as u32),
                });
            }
        }

        // Degree bookkeeping + duplicate / self-edge detection.
        let mut in_deg = vec![0u32; n];
        let mut spawn_in = vec![0u32; n];
        for (i, s) in succs.iter().enumerate() {
            let sl = s.as_slice();
            if sl.len() == 2 && sl[0].0 == sl[1].0 {
                return Err(DagError::DuplicateEdge {
                    from: NodeId(i as u32),
                    to: sl[0].0,
                });
            }
            for &(to, kind) in sl {
                if to.index() == i {
                    return Err(DagError::SelfEdge {
                        node: NodeId(i as u32),
                    });
                }
                in_deg[to.index()] += 1;
                if kind == EdgeKind::Spawn {
                    spawn_in[to.index()] += 1;
                }
            }
        }

        // Root: exactly one in-degree-0 node, and it must be the first node
        // of thread 0 (the root thread).
        let zeros: Vec<usize> = (0..n).filter(|&i| in_deg[i] == 0).collect();
        if zeros.len() != 1 || NodeId(zeros[0] as u32) != threads[0][0] {
            return Err(DagError::BadRoot {
                in_degree_zero: zeros.len(),
            });
        }
        let root = NodeId(zeros[0] as u32);

        // Final node: exactly one out-degree-0 node.
        let finals: Vec<usize> = (0..n).filter(|&i| succs[i].as_slice().is_empty()).collect();
        if finals.len() != 1 {
            return Err(DagError::BadFinal {
                out_degree_zero: finals.len(),
            });
        }
        let final_node = NodeId(finals[0] as u32);

        // Every non-root thread needs exactly one incoming spawn edge at its
        // first node; the root thread must have none.
        for (t, nodes) in threads.iter().enumerate() {
            let first = nodes[0];
            let expected = if t == 0 { 0 } else { 1 };
            if spawn_in[first.index()] != expected {
                return Err(DagError::BadSpawn {
                    thread: ThreadId(t as u32),
                    spawn_edges: spawn_in[first.index()] as usize,
                });
            }
            // Non-first nodes of a thread must not receive spawn edges.
            for &node in &nodes[1..] {
                if spawn_in[node.index()] != 0 {
                    return Err(DagError::SpawnNotAtThreadStart { to: node });
                }
            }
        }

        // Kahn topological sort; also computes longest-path depths.
        let mut topo = Vec::with_capacity(n);
        let mut depth = vec![0u32; n];
        let mut indeg = in_deg.clone();
        let mut frontier = vec![root];
        while let Some(u) = frontier.pop() {
            topo.push(u);
            for &(v, _) in succs[u.index()].as_slice() {
                let d = depth[u.index()] + 1;
                if d > depth[v.index()] {
                    depth[v.index()] = d;
                }
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    frontier.push(v);
                }
            }
        }
        if topo.len() != n {
            return Err(DagError::Cyclic);
        }
        let critical_path = depth.iter().copied().max().unwrap_or(0) + 1;

        // CSR predecessor lists.
        let mut pred_off = vec![0u32; n + 1];
        for s in &succs {
            for &(to, _) in s.as_slice() {
                pred_off[to.index() + 1] += 1;
            }
        }
        for i in 0..n {
            pred_off[i + 1] += pred_off[i];
        }
        let mut cursor = pred_off.clone();
        let mut pred_dat = vec![NodeId(0); pred_off[n] as usize];
        for (i, s) in succs.iter().enumerate() {
            for &(to, _) in s.as_slice() {
                pred_dat[cursor[to.index()] as usize] = NodeId(i as u32);
                cursor[to.index()] += 1;
            }
        }

        Ok(Dag {
            succs,
            pred_off,
            pred_dat,
            thread_of,
            threads,
            root,
            final_node,
            topo,
            depth,
            critical_path,
        })
    }

    /// Number of nodes; this is the *work* `T₁` of the computation.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.succs.len()
    }

    /// The work `T₁`: total number of instructions (nodes).
    #[inline]
    pub fn work(&self) -> u64 {
        self.num_nodes() as u64
    }

    /// The critical-path length `T∞`: number of nodes on a longest directed
    /// path.
    #[inline]
    pub fn critical_path(&self) -> u64 {
        self.critical_path as u64
    }

    /// The parallelism `T₁ / T∞`.
    #[inline]
    pub fn parallelism(&self) -> f64 {
        self.work() as f64 / self.critical_path() as f64
    }

    /// Number of threads.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// The root node (first node of the root thread; unique in-degree 0).
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// The final node (unique out-degree 0); executing it terminates the
    /// scheduling loop.
    #[inline]
    pub fn final_node(&self) -> NodeId {
        self.final_node
    }

    /// Out-edges of `u` (at most 2), each with its kind.
    #[inline]
    pub fn succs(&self, u: NodeId) -> &[(NodeId, EdgeKind)] {
        self.succs[u.index()].as_slice()
    }

    /// Predecessors of `u`.
    #[inline]
    pub fn preds(&self, u: NodeId) -> &[NodeId] {
        let lo = self.pred_off[u.index()] as usize;
        let hi = self.pred_off[u.index() + 1] as usize;
        &self.pred_dat[lo..hi]
    }

    /// In-degree of `u`.
    #[inline]
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.preds(u).len()
    }

    /// Out-degree of `u` (≤ 2).
    #[inline]
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.succs(u).len()
    }

    /// The thread that `u` belongs to.
    #[inline]
    pub fn thread_of(&self, u: NodeId) -> ThreadId {
        self.thread_of[u.index()]
    }

    /// The nodes of thread `t` in chain (program) order.
    #[inline]
    pub fn thread_nodes(&self, t: ThreadId) -> &[NodeId] {
        &self.threads[t.index()]
    }

    /// A topological order of all nodes (root first).
    #[inline]
    pub fn topo_order(&self) -> &[NodeId] {
        &self.topo
    }

    /// Longest-path depth of `u` from the root, counted in edges.
    #[inline]
    pub fn depth(&self, u: NodeId) -> u32 {
        self.depth[u.index()]
    }

    /// Groups nodes by [`Dag::depth`]; level `k` contains the nodes at
    /// longest-path depth `k`. Used by the Brent level-by-level offline
    /// scheduler of Section 2.
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut levels = vec![Vec::new(); self.critical_path as usize];
        for &u in &self.topo {
            levels[self.depth(u) as usize].push(u);
        }
        levels
    }

    /// All edges of the dag, in node order.
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        (0..self.num_nodes()).flat_map(move |i| {
            self.succs[i]
                .as_slice()
                .iter()
                .map(move |&(to, kind)| Edge {
                    from: NodeId(i as u32),
                    to,
                    kind,
                })
        })
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> usize {
        self.succs.iter().map(|s| s.as_slice().len()).sum()
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Dag {{ nodes: {}, threads: {}, T1: {}, Tinf: {} }}",
            self.num_nodes(),
            self.num_threads(),
            self.work(),
            self.critical_path()
        )
    }
}
