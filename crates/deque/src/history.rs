//! The reusable relaxed-semantics history checker (§3.2).
//!
//! A *history* is a set of completed invocations, each with a real-time
//! (or logical-time) interval `[start, end]`, an operation kind, and a
//! result. [`check`] decides whether a history satisfies the paper's
//! relaxed deque semantics:
//!
//! 1. **Conservation** — every consumed value was pushed, and no value
//!    is consumed twice (the check the untagged §3.3 ABA variant fails).
//! 2. **The Abort excuse** — every `popTop` that returned NIL by losing
//!    a `cas` must overlap a successful removal by another process:
//!    §3.2's "at some point during the invocation … the topmost item is
//!    removed from the deque by another process".
//! 3. **Linearizability of the good ops** — a Wing–Gong search must
//!    find linearization points, one inside each non-Abort invocation's
//!    interval, such that the results agree with a serial deque
//!    (`VecDeque` specification).
//!
//! Two clients drive the same checker: the bounded-exhaustive explorer
//! in [`crate::model`] feeds it every interleaving of the
//! instruction-stepped [`crate::sim_deque`], and the
//! `atomic_linearizability` integration test feeds it timestamped
//! histories recorded (via [`Recorder`]) from *real* concurrent threads
//! hammering the production [`crate::atomic`] deque.
//!
//! Interval semantics: invocation A precedes B in real time iff
//! `A.end < B.start`. [`Recorder`] guarantees this by drawing both
//! endpoints from one global logical clock — the start tick is taken
//! before the operation is invoked and the end tick after it returns,
//! so tick intervals contain the true real-time intervals and every
//! real-time overlap is preserved.
//!
//! **Batched steals.** A `steal_batch` call claims a *range* of top
//! slots in one invocation. Such calls are recorded as
//! [`BatchInvocation`]s (via [`Recorder::responded_batch`]) alongside
//! the single-op history, and judged by [`check_with_batches`] (exact
//! backends) or [`check_multiplicity_with_batches`] (the fence-free
//! deque). Both expand each batch into per-task pseudo-`popTop`
//! invocations sharing the batch's interval — so the ordinary
//! Wing–Gong / multiplicity judges still apply — after enforcing two
//! batch-specific invariants:
//!
//! * **INV-SB-1 (claim conservation)** — a batch that claimed `c`
//!   slots accounts for every one of them: `tasks.len() + duplicates
//!   == claimed`. A task lost inside a claimed range is unexcusable.
//! * **INV-SB-2 (top order)** — the tasks of one batch come off the
//!   top end in push order: their push invocations started in strictly
//!   increasing tick order.

use crate::sim_deque::SimSteal;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One deque operation, as recorded in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgOp {
    /// Owner-only: `pushBottom(v)`.
    Push(u64),
    /// Owner-only: `popBottom()`.
    PopBottom,
    /// `popTop()`.
    PopTop,
}

/// A completed invocation within one history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    pub proc: usize,
    /// Time (global instruction index or logical clock tick) at which
    /// the operation was invoked.
    pub start: u64,
    /// Time of its response.
    pub end: u64,
    pub kind: ProgOp,
    pub result: OpResult,
}

/// The result attached to a completed invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    Pushed,
    Popped(Option<u64>),
    Stolen(SimSteal),
}

/// A relaxed-semantics violation with the offending history.
#[derive(Debug, Clone)]
pub struct Violation {
    pub reason: String,
    pub history: Vec<Invocation>,
}

/// Checks one complete history against the relaxed semantics
/// (conservation, then the Abort excuse, then linearizability).
pub fn check(history: &[Invocation]) -> Result<(), String> {
    conservation(history)?;
    aborts_excused(history)?;
    linearizable(history)?;
    Ok(())
}

/// Every pushed value consumed at most once; every consumed value was
/// pushed. (Values in a history must be unique by convention.)
pub fn conservation(history: &[Invocation]) -> Result<(), String> {
    let mut pushed = Vec::new();
    let mut consumed = Vec::new();
    for inv in history {
        match inv.result {
            OpResult::Pushed => {
                if let ProgOp::Push(v) = inv.kind {
                    pushed.push(v);
                }
            }
            OpResult::Popped(Some(v)) => consumed.push(v),
            OpResult::Stolen(SimSteal::Taken(v)) => consumed.push(v),
            _ => {}
        }
    }
    for &v in &consumed {
        if !pushed.contains(&v) {
            return Err(format!("value {v} consumed but never pushed"));
        }
    }
    let mut sorted = consumed.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(format!("value {} consumed twice", w[0]));
        }
    }
    Ok(())
}

/// Every Abort must overlap an actual removal by another process —
/// `Popped(Some(_))` or `Taken(_)`. An observed-empty `Popped(None)` is
/// deliberately *not* an excuse: in the ABP algorithm an abort's `cas`
/// fails only because `age` was written inside the abort's interval,
/// and although the owner's empty-reset path does write `age` while
/// returning NIL, reaching that reset from the state the aborting
/// `popTop` observed (`bot > top`) requires the deque to cross from
/// nonempty to empty inside the same interval — and that crossing is
/// itself a removal (`popBottom` → Some, or a winning steal) whose
/// invocation overlaps the abort. Accepting any empty pop would instead
/// mask a deque bug where `popTop` aborts spuriously on an empty deque.
pub fn aborts_excused(history: &[Invocation]) -> Result<(), String> {
    for inv in history {
        if inv.result != OpResult::Stolen(SimSteal::Abort) {
            continue;
        }
        let excused = history.iter().any(|other| {
            other.proc != inv.proc
                && other.start <= inv.end
                && other.end >= inv.start
                && matches!(
                    other.result,
                    OpResult::Popped(Some(_)) | OpResult::Stolen(SimSteal::Taken(_))
                )
        });
        if !excused {
            return Err("popTop aborted with no overlapping removal".to_string());
        }
    }
    Ok(())
}

/// Wing–Gong linearizability of the non-Abort invocations against a
/// serial deque specification.
pub fn linearizable(history: &[Invocation]) -> Result<(), String> {
    let ops: Vec<&Invocation> = history
        .iter()
        .filter(|inv| inv.result != OpResult::Stolen(SimSteal::Abort))
        .collect();
    let mut linearized = vec![false; ops.len()];
    let mut spec = VecDeque::new();
    if lin_search(&ops, &mut linearized, &mut spec) {
        Ok(())
    } else {
        Err("no linearization consistent with a serial deque".to_string())
    }
}

fn lin_search(ops: &[&Invocation], linearized: &mut [bool], spec: &mut VecDeque<u64>) -> bool {
    if linearized.iter().all(|&b| b) {
        return true;
    }
    for i in 0..ops.len() {
        if linearized[i] {
            continue;
        }
        // `i` is a candidate only if no unlinearized op finished strictly
        // before it started.
        let minimal = (0..ops.len()).all(|j| linearized[j] || j == i || ops[j].end >= ops[i].start);
        if !minimal {
            continue;
        }
        // Try linearizing op i here: replay on the spec.
        let ok = match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(v), OpResult::Pushed) => {
                spec.push_back(v);
                true
            }
            (ProgOp::PopBottom, OpResult::Popped(r)) => {
                if spec.back().copied() == r {
                    if r.is_some() {
                        spec.pop_back();
                    }
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) => {
                if spec.front() == Some(&v) {
                    spec.pop_front();
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Empty)) => spec.is_empty(),
            other => panic!("malformed invocation {other:?}"),
        };
        if ok {
            linearized[i] = true;
            if lin_search(ops, linearized, spec) {
                return true;
            }
            linearized[i] = false;
        }
        // Undo the spec mutation.
        match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(_), OpResult::Pushed) if ok => {
                spec.pop_back();
            }
            (ProgOp::PopBottom, OpResult::Popped(Some(v))) if ok => {
                spec.push_back(v);
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) if ok => {
                spec.push_front(v);
            }
            _ => {}
        }
    }
    false
}

/// Parameters for [`check_multiplicity`]: the relaxed *work stealing
/// with multiplicity* spec (Castañeda & Piña) that the fence-free deque
/// of [`crate::fence_free`] meets, in place of the ABP deque's relaxed
/// linearizability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplicitySpec {
    /// Maximum extractions per value. For raw (unguarded) fence-free
    /// histories this is `1 (owner) + number of stealer handles`; for
    /// guarded histories it is 1 — extraction is exactly-once and the
    /// spec degenerates to conservation plus completeness.
    pub k: u32,
    /// The history ends quiesced and drained: the owner popped until
    /// `None` after every thief finished. When set, every pushed value
    /// must have been extracted at least once — the "no task is lost"
    /// half of the spec.
    pub drained: bool,
}

/// Checks one complete history against the multiplicity semantics — the
/// generalization of [`check`] where extraction is *at least once, at
/// most `k` times* instead of exactly once, and no total order over a
/// serial deque is demanded:
///
/// 1. **Conservation, generalized** — every consumed value was pushed,
///    and its push *started* no later than the consumption ended (a
///    value cannot materialize before its push exists); each value is
///    consumed at most `spec.k` times.
/// 2. **Completeness** — with `spec.drained`, every pushed value is
///    consumed at least once.
/// 3. **The Duplicate excuse** — a [`SimSteal::Duplicate`] result means
///    "lost the once-guard to another extraction of the same item", so
///    some successful removal by another process must have *started*
///    before the duplicate's response (unlike the Abort excuse of
///    [`aborts_excused`], the winner need not overlap: a stale `top`
///    hint can aim a thief at an item extracted long ago).
/// 4. **No Aborts** — the fence-free protocol has no `cas` to lose and
///    no lock to miss; an Abort result in one of its histories is a
///    recording bug.
///
/// Values must be unique across pushes (same convention as [`check`];
/// enforced here since counts are per value).
pub fn check_multiplicity(history: &[Invocation], spec: &MultiplicitySpec) -> Result<(), String> {
    use std::collections::HashMap;
    // Push table: value -> start tick.
    let mut pushes: HashMap<u64, u64> = HashMap::new();
    for inv in history {
        if let (ProgOp::Push(v), OpResult::Pushed) = (inv.kind, inv.result) {
            if pushes.insert(v, inv.start).is_some() {
                return Err(format!(
                    "value {v} pushed twice; histories must use unique values"
                ));
            }
        }
    }
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for inv in history {
        let v = match inv.result {
            OpResult::Popped(Some(v)) => v,
            OpResult::Stolen(SimSteal::Taken(v)) => v,
            OpResult::Stolen(SimSteal::Abort) => {
                return Err("Abort in a multiplicity history: this protocol never aborts".into())
            }
            OpResult::Stolen(SimSteal::Duplicate) => {
                let excused = history.iter().any(|other| {
                    other.proc != inv.proc
                        && other.start <= inv.end
                        && matches!(
                            other.result,
                            OpResult::Popped(Some(_)) | OpResult::Stolen(SimSteal::Taken(_))
                        )
                });
                if !excused {
                    return Err(
                        "Duplicate with no removal by another process started before it".into(),
                    );
                }
                continue;
            }
            _ => continue,
        };
        match pushes.get(&v) {
            None => return Err(format!("value {v} consumed but never pushed")),
            Some(&push_start) if push_start > inv.end => {
                return Err(format!("value {v} consumed before its push started"))
            }
            Some(_) => {}
        }
        let c = counts.entry(v).or_insert(0);
        *c += 1;
        if *c > spec.k {
            return Err(format!(
                "value {v} extracted {} times; multiplicity bound is {}",
                *c, spec.k
            ));
        }
    }
    if spec.drained {
        for v in pushes.keys() {
            if !counts.contains_key(v) {
                return Err(format!("drained history lost value {v}: extracted 0 times"));
            }
        }
    }
    Ok(())
}

/// One completed `steal_batch` invocation: a single call that claimed
/// `claimed` top slots (one `cas` chain, one lock hold, or one guarded
/// range, depending on the backend), yielding `tasks` in top order plus
/// `duplicates` lost once-guard races.
///
/// For histories recorded from the real deques, `claimed` is the sum
/// the backend itself reports (`tasks.len() + duplicates`); the
/// invariant INV-SB-1 bites on hand-built and model-generated
/// histories, where `claimed` comes from the range the batch actually
/// advanced `top` over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchInvocation {
    pub proc: usize,
    pub start: u64,
    pub end: u64,
    /// Top slots the batch took responsibility for.
    pub claimed: usize,
    /// Values taken, in top (= push) order.
    pub tasks: Vec<u64>,
    /// Slots inside the claimed range lost to a concurrent extraction
    /// (always 0 on the exact backends).
    pub duplicates: u64,
}

/// Expands each batch into one pseudo-`popTop` invocation per taken
/// task, sharing the batch's interval and process. The expanded
/// history is what the ordinary single-op judges run over.
fn expand_batches(history: &[Invocation], batches: &[BatchInvocation]) -> Vec<Invocation> {
    let mut combined = history.to_vec();
    for b in batches {
        for &v in &b.tasks {
            combined.push(Invocation {
                proc: b.proc,
                start: b.start,
                end: b.end,
                kind: ProgOp::PopTop,
                result: OpResult::Stolen(SimSteal::Taken(v)),
            });
        }
    }
    combined
}

/// The batch-specific invariants shared by both batch judges:
/// INV-SB-1 (claim conservation) per batch, and INV-SB-2 (tasks in
/// strictly increasing push order) against the push table of
/// `history`. Every batch task must have been pushed.
fn batch_invariants(history: &[Invocation], batches: &[BatchInvocation]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut push_start: HashMap<u64, u64> = HashMap::new();
    for inv in history {
        if let (ProgOp::Push(v), OpResult::Pushed) = (inv.kind, inv.result) {
            if push_start.insert(v, inv.start).is_some() {
                return Err(format!(
                    "value {v} pushed twice; histories must use unique values"
                ));
            }
        }
    }
    for (i, b) in batches.iter().enumerate() {
        if b.tasks.len() + b.duplicates as usize != b.claimed {
            return Err(format!(
                "INV-SB-1: batch {i} claimed {} slots but accounts for {} tasks + {} duplicates",
                b.claimed,
                b.tasks.len(),
                b.duplicates
            ));
        }
        let mut prev: Option<u64> = None;
        for &v in &b.tasks {
            let s = match push_start.get(&v) {
                Some(&s) => s,
                None => return Err(format!("batch {i} took value {v} that was never pushed")),
            };
            if let Some(p) = prev {
                if s <= p {
                    return Err(format!(
                        "INV-SB-2: batch {i} returned value {v} out of push order"
                    ));
                }
            }
            prev = Some(s);
        }
    }
    Ok(())
}

/// Checks a history plus its batched steals against the exact relaxed
/// semantics: the batch invariants (INV-SB-1, INV-SB-2), then [`check`]
/// over the batch-expanded history. Exact backends never lose a
/// once-guard race, so any nonzero `duplicates` is rejected outright;
/// with `drained`, every pushed value must have been consumed (by a
/// single op or a batch) — the "no task lost in a claimed range"
/// non-vacuity teeth.
pub fn check_with_batches(
    history: &[Invocation],
    batches: &[BatchInvocation],
    drained: bool,
) -> Result<(), String> {
    for (i, b) in batches.iter().enumerate() {
        if b.duplicates != 0 {
            return Err(format!(
                "batch {i} reports {} duplicates on an exact backend",
                b.duplicates
            ));
        }
    }
    batch_invariants(history, batches)?;
    let combined = expand_batches(history, batches);
    check(&combined)?;
    if drained {
        drained_complete(&combined)?;
    }
    Ok(())
}

/// Checks a fence-free history plus its batched steals against the
/// multiplicity semantics: the batch invariants, then
/// [`check_multiplicity`] over the batch-expanded history, with each
/// batch's `duplicates` expanded into pseudo-`Duplicate` invocations so
/// the Duplicate excuse is demanded of them too.
pub fn check_multiplicity_with_batches(
    history: &[Invocation],
    batches: &[BatchInvocation],
    spec: &MultiplicitySpec,
) -> Result<(), String> {
    batch_invariants(history, batches)?;
    let mut combined = expand_batches(history, batches);
    for b in batches {
        for _ in 0..b.duplicates {
            combined.push(Invocation {
                proc: b.proc,
                start: b.start,
                end: b.end,
                kind: ProgOp::PopTop,
                result: OpResult::Stolen(SimSteal::Duplicate),
            });
        }
    }
    check_multiplicity(&combined, spec)
}

/// Drained completeness for exact histories: every pushed value was
/// consumed (conservation already bounds it to exactly once).
fn drained_complete(history: &[Invocation]) -> Result<(), String> {
    let mut pushed = Vec::new();
    let mut consumed = Vec::new();
    for inv in history {
        match (inv.kind, inv.result) {
            (ProgOp::Push(v), OpResult::Pushed) => pushed.push(v),
            (_, OpResult::Popped(Some(v))) => consumed.push(v),
            (_, OpResult::Stolen(SimSteal::Taken(v))) => consumed.push(v),
            _ => {}
        }
    }
    for v in pushed {
        if !consumed.contains(&v) {
            return Err(format!("drained history lost value {v}: never consumed"));
        }
    }
    Ok(())
}

/// Records timestamped invoke/response histories from real concurrent
/// threads, for checking with [`check`].
///
/// One global logical clock (an `AtomicU64`, SeqCst) serializes all
/// endpoint events: call [`Recorder::invoked`] immediately *before* a
/// deque operation and [`Recorder::responded`] immediately *after* it
/// returns. The recorded interval therefore contains the operation's
/// true duration, so any two operations that overlap in real time
/// overlap in recorded ticks — the direction the checker's soundness
/// needs.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
    log: Mutex<Vec<Invocation>>,
    batch_log: Mutex<Vec<BatchInvocation>>,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Takes the invocation tick. Call right before the operation.
    #[inline]
    pub fn invoked(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Takes the response tick and appends the completed invocation.
    /// Call right after the operation returns, passing the tick from
    /// [`Recorder::invoked`].
    pub fn responded(&self, proc: usize, start: u64, kind: ProgOp, result: OpResult) {
        let end = self.clock.fetch_add(1, Ordering::SeqCst);
        self.log.lock().unwrap().push(Invocation {
            proc,
            start,
            end,
            kind,
            result,
        });
    }

    /// Takes the response tick and appends a completed *batched* steal.
    /// Call right after `steal_batch` returns, passing the tick from
    /// [`Recorder::invoked`], the taken tasks in returned (top) order,
    /// and the reported duplicate count. `claimed` is derived — the
    /// real deques report exactly the slots they advanced `top` over.
    pub fn responded_batch(&self, proc: usize, start: u64, tasks: Vec<u64>, duplicates: u64) {
        let end = self.clock.fetch_add(1, Ordering::SeqCst);
        let claimed = tasks.len() + duplicates as usize;
        self.batch_log.lock().unwrap().push(BatchInvocation {
            proc,
            start,
            end,
            claimed,
            tasks,
            duplicates,
        });
    }

    /// The history recorded so far. Call after joining every recording
    /// thread — a history with operations still in flight is incomplete
    /// and [`check`] may reject it spuriously.
    pub fn history(&self) -> Vec<Invocation> {
        self.log.lock().unwrap().clone()
    }

    /// The batched-steal invocations recorded so far, for
    /// [`check_with_batches`] / [`check_multiplicity_with_batches`].
    pub fn batch_history(&self) -> Vec<BatchInvocation> {
        self.batch_log.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(proc: usize, start: u64, end: u64, kind: ProgOp, result: OpResult) -> Invocation {
        Invocation {
            proc,
            start,
            end,
            kind,
            result,
        }
    }

    #[test]
    fn conservation_detects_duplicate() {
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::PopBottom, OpResult::Popped(Some(7))),
            inv(
                1,
                2,
                4,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
        ];
        assert!(conservation(&h).is_err());
    }

    #[test]
    fn conservation_detects_materialized_value() {
        let h = [inv(
            1,
            0,
            1,
            ProgOp::PopTop,
            OpResult::Stolen(SimSteal::Taken(9)),
        )];
        assert!(conservation(&h).unwrap_err().contains("never pushed"));
    }

    #[test]
    fn linearizability_rejects_wrong_order() {
        // Two sequential (non-overlapping) pushes then a popTop of the
        // *second* value: impossible serially.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(2), OpResult::Pushed),
            inv(
                1,
                4,
                5,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(2)),
            ),
        ];
        assert!(linearizable(&h).is_err());
    }

    #[test]
    fn empty_steal_requires_observably_empty_spec() {
        // popTop -> Empty while a pushed value sits in the deque the whole
        // time and nothing overlaps: not linearizable.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(1, 2, 3, ProgOp::PopTop, OpResult::Stolen(SimSteal::Empty)),
        ];
        assert!(linearizable(&h).is_err());
    }

    #[test]
    fn abort_needs_an_overlapping_removal() {
        let lone_abort = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(1, 2, 3, ProgOp::PopTop, OpResult::Stolen(SimSteal::Abort)),
        ];
        assert!(aborts_excused(&lone_abort).is_err());
        let excused = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 4, ProgOp::PopBottom, OpResult::Popped(Some(1))),
            inv(1, 3, 5, ProgOp::PopTop, OpResult::Stolen(SimSteal::Abort)),
        ];
        assert!(aborts_excused(&excused).is_ok());
        assert!(check(&excused).is_ok());
    }

    #[test]
    fn multiplicity_accepts_duplicated_extraction_within_k() {
        // Owner pops 7 while a thief also takes 7 (raw-mode duplicate),
        // and a second thief's lost race surfaces as Duplicate.
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::PopBottom, OpResult::Popped(Some(7))),
            inv(
                1,
                2,
                4,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
            inv(
                2,
                3,
                5,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Duplicate),
            ),
        ];
        let spec = MultiplicitySpec {
            k: 3,
            drained: true,
        };
        assert!(check_multiplicity(&h, &spec).is_ok());
        // The same history violates the exact spec of `check`.
        assert!(check(&h).is_err());
    }

    #[test]
    fn multiplicity_rejects_k_plus_one_extractions() {
        let mut h = vec![inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed)];
        for p in 1..=3u64 {
            h.push(inv(
                p as usize,
                2 * p,
                2 * p + 1,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ));
        }
        let spec = MultiplicitySpec {
            k: 2,
            drained: false,
        };
        let err = check_multiplicity(&h, &spec).unwrap_err();
        assert!(err.contains("multiplicity bound"), "{err}");
    }

    #[test]
    fn multiplicity_rejects_a_lost_value_when_drained() {
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(8), OpResult::Pushed),
            inv(0, 4, 5, ProgOp::PopBottom, OpResult::Popped(Some(8))),
        ];
        let spec = MultiplicitySpec {
            k: 2,
            drained: true,
        };
        let err = check_multiplicity(&h, &spec).unwrap_err();
        assert!(err.contains("lost value 7"), "{err}");
        // Not drained: an unextracted value may legitimately remain.
        assert!(check_multiplicity(
            &h,
            &MultiplicitySpec {
                k: 2,
                drained: false
            }
        )
        .is_ok());
    }

    #[test]
    fn multiplicity_rejects_materialized_and_time_traveling_values() {
        let never_pushed = [inv(
            1,
            0,
            1,
            ProgOp::PopTop,
            OpResult::Stolen(SimSteal::Taken(9)),
        )];
        let spec = MultiplicitySpec {
            k: 4,
            drained: false,
        };
        assert!(check_multiplicity(&never_pushed, &spec)
            .unwrap_err()
            .contains("never pushed"));
        // Consumption that *ended* before the push even started.
        let time_travel = [
            inv(
                1,
                0,
                1,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
            inv(0, 5, 6, ProgOp::Push(7), OpResult::Pushed),
        ];
        assert!(check_multiplicity(&time_travel, &spec)
            .unwrap_err()
            .contains("before its push started"));
    }

    #[test]
    fn multiplicity_rejects_aborts_and_unexcused_duplicates() {
        let spec = MultiplicitySpec {
            k: 4,
            drained: false,
        };
        let abort = [inv(
            1,
            0,
            1,
            ProgOp::PopTop,
            OpResult::Stolen(SimSteal::Abort),
        )];
        assert!(check_multiplicity(&abort, &spec)
            .unwrap_err()
            .contains("never aborts"));
        // A Duplicate with no removal anywhere: nothing to have lost to.
        let lone_dup = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(
                1,
                2,
                3,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Duplicate),
            ),
        ];
        assert!(check_multiplicity(&lone_dup, &spec)
            .unwrap_err()
            .contains("Duplicate with no removal"));
        // Excused once the winner exists, even without interval overlap.
        let excused = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(
                2,
                2,
                3,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
            inv(
                1,
                8,
                9,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Duplicate),
            ),
        ];
        assert!(check_multiplicity(&excused, &spec).is_ok());
    }

    fn batch(proc: usize, start: u64, end: u64, claimed: usize, tasks: &[u64]) -> BatchInvocation {
        BatchInvocation {
            proc,
            start,
            end,
            claimed,
            tasks: tasks.to_vec(),
            duplicates: 0,
        }
    }

    #[test]
    fn good_batch_history_checks_out() {
        // Owner pushes 1..=4, a thief batch-steals {1, 2}, the owner
        // pops 4 and 3, a second thief's batch takes the last one.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(2), OpResult::Pushed),
            inv(0, 4, 5, ProgOp::Push(3), OpResult::Pushed),
            inv(0, 6, 7, ProgOp::Push(4), OpResult::Pushed),
            inv(0, 10, 11, ProgOp::PopBottom, OpResult::Popped(Some(4))),
            inv(0, 12, 13, ProgOp::PopBottom, OpResult::Popped(Some(3))),
        ];
        let b = [batch(1, 8, 9, 2, &[1, 2]), batch(2, 14, 15, 1, &[3])];
        // Batch 2 takes value 3 — but the owner already popped it.
        assert!(check_with_batches(&h, &b, true).is_err());
        let b = [batch(1, 8, 9, 2, &[1, 2])];
        assert!(check_with_batches(&h[..5], &b, false).is_ok());
        // Drained: value 3 is never consumed anywhere.
        let err = check_with_batches(&h[..5], &b, true).unwrap_err();
        assert!(err.contains("lost value 3"), "{err}");
    }

    #[test]
    fn forged_lost_task_in_claimed_range_is_rejected() {
        // A batch claims 3 top slots but surfaces only 2 tasks and no
        // duplicates: the third task evaporated inside the claimed
        // range. INV-SB-1 must catch this.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(2), OpResult::Pushed),
            inv(0, 4, 5, ProgOp::Push(3), OpResult::Pushed),
        ];
        let b = [batch(1, 6, 7, 3, &[1, 2])];
        let err = check_with_batches(&h, &b, false).unwrap_err();
        assert!(err.contains("INV-SB-1"), "{err}");
        // The multiplicity judge applies the same invariant.
        let spec = MultiplicitySpec {
            k: 2,
            drained: false,
        };
        let err = check_multiplicity_with_batches(&h, &b, &spec).unwrap_err();
        assert!(err.contains("INV-SB-1"), "{err}");
    }

    #[test]
    fn batch_tasks_out_of_push_order_are_rejected() {
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(2), OpResult::Pushed),
        ];
        let b = [batch(1, 4, 5, 2, &[2, 1])];
        let err = check_with_batches(&h, &b, false).unwrap_err();
        assert!(err.contains("INV-SB-2"), "{err}");
    }

    #[test]
    fn batch_duplicate_on_exact_backend_is_rejected() {
        let h = [inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed)];
        let mut forged = batch(1, 2, 3, 2, &[1]);
        forged.duplicates = 1;
        let err = check_with_batches(&h, &[forged], false).unwrap_err();
        assert!(err.contains("duplicates on an exact backend"), "{err}");
    }

    #[test]
    fn batch_double_take_across_invocations_is_rejected() {
        // Two sequential batches both claim value 1: combined
        // conservation over the expanded history must reject it.
        let h = [inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed)];
        let b = [batch(1, 2, 3, 1, &[1]), batch(2, 4, 5, 1, &[1])];
        let err = check_with_batches(&h, &b, false).unwrap_err();
        assert!(err.contains("consumed twice"), "{err}");
    }

    #[test]
    fn multiplicity_batches_accept_duplicates_within_k() {
        // The owner pops 7 while a thief's batch loses the once-guard
        // race on that slot but takes 8 cleanly.
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(8), OpResult::Pushed),
            inv(0, 4, 6, ProgOp::PopBottom, OpResult::Popped(Some(7))),
        ];
        let b = [BatchInvocation {
            proc: 1,
            start: 5,
            end: 7,
            claimed: 2,
            tasks: vec![8],
            duplicates: 1,
        }];
        let spec = MultiplicitySpec {
            k: 2,
            drained: true,
        };
        assert!(check_multiplicity_with_batches(&h, &b, &spec).is_ok());
        // A batch duplicate with no winner anywhere is unexcused.
        let lone = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(8), OpResult::Pushed),
        ];
        let err = check_multiplicity_with_batches(
            &lone,
            &b,
            &MultiplicitySpec {
                k: 2,
                drained: false,
            },
        )
        .unwrap_err();
        assert!(err.contains("Duplicate with no removal"), "{err}");
    }

    #[test]
    fn recorder_batches_feed_the_batch_judge() {
        let rec = Recorder::new();
        for v in 1..=4 {
            let s = rec.invoked();
            rec.responded(0, s, ProgOp::Push(v), OpResult::Pushed);
        }
        let s = rec.invoked();
        rec.responded_batch(1, s, vec![1, 2], 0);
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::PopBottom, OpResult::Popped(Some(4)));
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::PopBottom, OpResult::Popped(Some(3)));
        let h = rec.history();
        let b = rec.batch_history();
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].claimed, 2);
        assert!(check_with_batches(&h, &b, true).is_ok());
    }

    #[test]
    fn recorder_intervals_nest_and_check() {
        let rec = Recorder::new();
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::Push(3), OpResult::Pushed);
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::PopBottom, OpResult::Popped(Some(3)));
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].end < h[1].start, "sequential ops do not overlap");
        assert!(check(&h).is_ok());
    }
}
