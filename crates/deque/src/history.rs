//! The reusable relaxed-semantics history checker (§3.2).
//!
//! A *history* is a set of completed invocations, each with a real-time
//! (or logical-time) interval `[start, end]`, an operation kind, and a
//! result. [`check`] decides whether a history satisfies the paper's
//! relaxed deque semantics:
//!
//! 1. **Conservation** — every consumed value was pushed, and no value
//!    is consumed twice (the check the untagged §3.3 ABA variant fails).
//! 2. **The Abort excuse** — every `popTop` that returned NIL by losing
//!    a `cas` must overlap a successful removal by another process:
//!    §3.2's "at some point during the invocation … the topmost item is
//!    removed from the deque by another process".
//! 3. **Linearizability of the good ops** — a Wing–Gong search must
//!    find linearization points, one inside each non-Abort invocation's
//!    interval, such that the results agree with a serial deque
//!    (`VecDeque` specification).
//!
//! Two clients drive the same checker: the bounded-exhaustive explorer
//! in [`crate::model`] feeds it every interleaving of the
//! instruction-stepped [`crate::sim_deque`], and the
//! `atomic_linearizability` integration test feeds it timestamped
//! histories recorded (via [`Recorder`]) from *real* concurrent threads
//! hammering the production [`crate::atomic`] deque.
//!
//! Interval semantics: invocation A precedes B in real time iff
//! `A.end < B.start`. [`Recorder`] guarantees this by drawing both
//! endpoints from one global logical clock — the start tick is taken
//! before the operation is invoked and the end tick after it returns,
//! so tick intervals contain the true real-time intervals and every
//! real-time overlap is preserved.

use crate::sim_deque::SimSteal;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One deque operation, as recorded in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgOp {
    /// Owner-only: `pushBottom(v)`.
    Push(u64),
    /// Owner-only: `popBottom()`.
    PopBottom,
    /// `popTop()`.
    PopTop,
}

/// A completed invocation within one history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    pub proc: usize,
    /// Time (global instruction index or logical clock tick) at which
    /// the operation was invoked.
    pub start: u64,
    /// Time of its response.
    pub end: u64,
    pub kind: ProgOp,
    pub result: OpResult,
}

/// The result attached to a completed invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    Pushed,
    Popped(Option<u64>),
    Stolen(SimSteal),
}

/// A relaxed-semantics violation with the offending history.
#[derive(Debug, Clone)]
pub struct Violation {
    pub reason: String,
    pub history: Vec<Invocation>,
}

/// Checks one complete history against the relaxed semantics
/// (conservation, then the Abort excuse, then linearizability).
pub fn check(history: &[Invocation]) -> Result<(), String> {
    conservation(history)?;
    aborts_excused(history)?;
    linearizable(history)?;
    Ok(())
}

/// Every pushed value consumed at most once; every consumed value was
/// pushed. (Values in a history must be unique by convention.)
pub fn conservation(history: &[Invocation]) -> Result<(), String> {
    let mut pushed = Vec::new();
    let mut consumed = Vec::new();
    for inv in history {
        match inv.result {
            OpResult::Pushed => {
                if let ProgOp::Push(v) = inv.kind {
                    pushed.push(v);
                }
            }
            OpResult::Popped(Some(v)) => consumed.push(v),
            OpResult::Stolen(SimSteal::Taken(v)) => consumed.push(v),
            _ => {}
        }
    }
    for &v in &consumed {
        if !pushed.contains(&v) {
            return Err(format!("value {v} consumed but never pushed"));
        }
    }
    let mut sorted = consumed.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(format!("value {} consumed twice", w[0]));
        }
    }
    Ok(())
}

/// Every Abort must overlap an actual removal by another process —
/// `Popped(Some(_))` or `Taken(_)`. An observed-empty `Popped(None)` is
/// deliberately *not* an excuse: in the ABP algorithm an abort's `cas`
/// fails only because `age` was written inside the abort's interval,
/// and although the owner's empty-reset path does write `age` while
/// returning NIL, reaching that reset from the state the aborting
/// `popTop` observed (`bot > top`) requires the deque to cross from
/// nonempty to empty inside the same interval — and that crossing is
/// itself a removal (`popBottom` → Some, or a winning steal) whose
/// invocation overlaps the abort. Accepting any empty pop would instead
/// mask a deque bug where `popTop` aborts spuriously on an empty deque.
pub fn aborts_excused(history: &[Invocation]) -> Result<(), String> {
    for inv in history {
        if inv.result != OpResult::Stolen(SimSteal::Abort) {
            continue;
        }
        let excused = history.iter().any(|other| {
            other.proc != inv.proc
                && other.start <= inv.end
                && other.end >= inv.start
                && matches!(
                    other.result,
                    OpResult::Popped(Some(_)) | OpResult::Stolen(SimSteal::Taken(_))
                )
        });
        if !excused {
            return Err("popTop aborted with no overlapping removal".to_string());
        }
    }
    Ok(())
}

/// Wing–Gong linearizability of the non-Abort invocations against a
/// serial deque specification.
pub fn linearizable(history: &[Invocation]) -> Result<(), String> {
    let ops: Vec<&Invocation> = history
        .iter()
        .filter(|inv| inv.result != OpResult::Stolen(SimSteal::Abort))
        .collect();
    let mut linearized = vec![false; ops.len()];
    let mut spec = VecDeque::new();
    if lin_search(&ops, &mut linearized, &mut spec) {
        Ok(())
    } else {
        Err("no linearization consistent with a serial deque".to_string())
    }
}

fn lin_search(ops: &[&Invocation], linearized: &mut [bool], spec: &mut VecDeque<u64>) -> bool {
    if linearized.iter().all(|&b| b) {
        return true;
    }
    for i in 0..ops.len() {
        if linearized[i] {
            continue;
        }
        // `i` is a candidate only if no unlinearized op finished strictly
        // before it started.
        let minimal = (0..ops.len()).all(|j| linearized[j] || j == i || ops[j].end >= ops[i].start);
        if !minimal {
            continue;
        }
        // Try linearizing op i here: replay on the spec.
        let ok = match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(v), OpResult::Pushed) => {
                spec.push_back(v);
                true
            }
            (ProgOp::PopBottom, OpResult::Popped(r)) => {
                if spec.back().copied() == r {
                    if r.is_some() {
                        spec.pop_back();
                    }
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) => {
                if spec.front() == Some(&v) {
                    spec.pop_front();
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Empty)) => spec.is_empty(),
            other => panic!("malformed invocation {other:?}"),
        };
        if ok {
            linearized[i] = true;
            if lin_search(ops, linearized, spec) {
                return true;
            }
            linearized[i] = false;
        }
        // Undo the spec mutation.
        match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(_), OpResult::Pushed) if ok => {
                spec.pop_back();
            }
            (ProgOp::PopBottom, OpResult::Popped(Some(v))) if ok => {
                spec.push_back(v);
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) if ok => {
                spec.push_front(v);
            }
            _ => {}
        }
    }
    false
}

/// Parameters for [`check_multiplicity`]: the relaxed *work stealing
/// with multiplicity* spec (Castañeda & Piña) that the fence-free deque
/// of [`crate::fence_free`] meets, in place of the ABP deque's relaxed
/// linearizability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiplicitySpec {
    /// Maximum extractions per value. For raw (unguarded) fence-free
    /// histories this is `1 (owner) + number of stealer handles`; for
    /// guarded histories it is 1 — extraction is exactly-once and the
    /// spec degenerates to conservation plus completeness.
    pub k: u32,
    /// The history ends quiesced and drained: the owner popped until
    /// `None` after every thief finished. When set, every pushed value
    /// must have been extracted at least once — the "no task is lost"
    /// half of the spec.
    pub drained: bool,
}

/// Checks one complete history against the multiplicity semantics — the
/// generalization of [`check`] where extraction is *at least once, at
/// most `k` times* instead of exactly once, and no total order over a
/// serial deque is demanded:
///
/// 1. **Conservation, generalized** — every consumed value was pushed,
///    and its push *started* no later than the consumption ended (a
///    value cannot materialize before its push exists); each value is
///    consumed at most `spec.k` times.
/// 2. **Completeness** — with `spec.drained`, every pushed value is
///    consumed at least once.
/// 3. **The Duplicate excuse** — a [`SimSteal::Duplicate`] result means
///    "lost the once-guard to another extraction of the same item", so
///    some successful removal by another process must have *started*
///    before the duplicate's response (unlike the Abort excuse of
///    [`aborts_excused`], the winner need not overlap: a stale `top`
///    hint can aim a thief at an item extracted long ago).
/// 4. **No Aborts** — the fence-free protocol has no `cas` to lose and
///    no lock to miss; an Abort result in one of its histories is a
///    recording bug.
///
/// Values must be unique across pushes (same convention as [`check`];
/// enforced here since counts are per value).
pub fn check_multiplicity(history: &[Invocation], spec: &MultiplicitySpec) -> Result<(), String> {
    use std::collections::HashMap;
    // Push table: value -> start tick.
    let mut pushes: HashMap<u64, u64> = HashMap::new();
    for inv in history {
        if let (ProgOp::Push(v), OpResult::Pushed) = (inv.kind, inv.result) {
            if pushes.insert(v, inv.start).is_some() {
                return Err(format!(
                    "value {v} pushed twice; histories must use unique values"
                ));
            }
        }
    }
    let mut counts: HashMap<u64, u32> = HashMap::new();
    for inv in history {
        let v = match inv.result {
            OpResult::Popped(Some(v)) => v,
            OpResult::Stolen(SimSteal::Taken(v)) => v,
            OpResult::Stolen(SimSteal::Abort) => {
                return Err("Abort in a multiplicity history: this protocol never aborts".into())
            }
            OpResult::Stolen(SimSteal::Duplicate) => {
                let excused = history.iter().any(|other| {
                    other.proc != inv.proc
                        && other.start <= inv.end
                        && matches!(
                            other.result,
                            OpResult::Popped(Some(_)) | OpResult::Stolen(SimSteal::Taken(_))
                        )
                });
                if !excused {
                    return Err(
                        "Duplicate with no removal by another process started before it".into(),
                    );
                }
                continue;
            }
            _ => continue,
        };
        match pushes.get(&v) {
            None => return Err(format!("value {v} consumed but never pushed")),
            Some(&push_start) if push_start > inv.end => {
                return Err(format!("value {v} consumed before its push started"))
            }
            Some(_) => {}
        }
        let c = counts.entry(v).or_insert(0);
        *c += 1;
        if *c > spec.k {
            return Err(format!(
                "value {v} extracted {} times; multiplicity bound is {}",
                *c, spec.k
            ));
        }
    }
    if spec.drained {
        for v in pushes.keys() {
            if !counts.contains_key(v) {
                return Err(format!("drained history lost value {v}: extracted 0 times"));
            }
        }
    }
    Ok(())
}

/// Records timestamped invoke/response histories from real concurrent
/// threads, for checking with [`check`].
///
/// One global logical clock (an `AtomicU64`, SeqCst) serializes all
/// endpoint events: call [`Recorder::invoked`] immediately *before* a
/// deque operation and [`Recorder::responded`] immediately *after* it
/// returns. The recorded interval therefore contains the operation's
/// true duration, so any two operations that overlap in real time
/// overlap in recorded ticks — the direction the checker's soundness
/// needs.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
    log: Mutex<Vec<Invocation>>,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Takes the invocation tick. Call right before the operation.
    #[inline]
    pub fn invoked(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Takes the response tick and appends the completed invocation.
    /// Call right after the operation returns, passing the tick from
    /// [`Recorder::invoked`].
    pub fn responded(&self, proc: usize, start: u64, kind: ProgOp, result: OpResult) {
        let end = self.clock.fetch_add(1, Ordering::SeqCst);
        self.log.lock().unwrap().push(Invocation {
            proc,
            start,
            end,
            kind,
            result,
        });
    }

    /// The history recorded so far. Call after joining every recording
    /// thread — a history with operations still in flight is incomplete
    /// and [`check`] may reject it spuriously.
    pub fn history(&self) -> Vec<Invocation> {
        self.log.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(proc: usize, start: u64, end: u64, kind: ProgOp, result: OpResult) -> Invocation {
        Invocation {
            proc,
            start,
            end,
            kind,
            result,
        }
    }

    #[test]
    fn conservation_detects_duplicate() {
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::PopBottom, OpResult::Popped(Some(7))),
            inv(
                1,
                2,
                4,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
        ];
        assert!(conservation(&h).is_err());
    }

    #[test]
    fn conservation_detects_materialized_value() {
        let h = [inv(
            1,
            0,
            1,
            ProgOp::PopTop,
            OpResult::Stolen(SimSteal::Taken(9)),
        )];
        assert!(conservation(&h).unwrap_err().contains("never pushed"));
    }

    #[test]
    fn linearizability_rejects_wrong_order() {
        // Two sequential (non-overlapping) pushes then a popTop of the
        // *second* value: impossible serially.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(2), OpResult::Pushed),
            inv(
                1,
                4,
                5,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(2)),
            ),
        ];
        assert!(linearizable(&h).is_err());
    }

    #[test]
    fn empty_steal_requires_observably_empty_spec() {
        // popTop -> Empty while a pushed value sits in the deque the whole
        // time and nothing overlaps: not linearizable.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(1, 2, 3, ProgOp::PopTop, OpResult::Stolen(SimSteal::Empty)),
        ];
        assert!(linearizable(&h).is_err());
    }

    #[test]
    fn abort_needs_an_overlapping_removal() {
        let lone_abort = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(1, 2, 3, ProgOp::PopTop, OpResult::Stolen(SimSteal::Abort)),
        ];
        assert!(aborts_excused(&lone_abort).is_err());
        let excused = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 4, ProgOp::PopBottom, OpResult::Popped(Some(1))),
            inv(1, 3, 5, ProgOp::PopTop, OpResult::Stolen(SimSteal::Abort)),
        ];
        assert!(aborts_excused(&excused).is_ok());
        assert!(check(&excused).is_ok());
    }

    #[test]
    fn multiplicity_accepts_duplicated_extraction_within_k() {
        // Owner pops 7 while a thief also takes 7 (raw-mode duplicate),
        // and a second thief's lost race surfaces as Duplicate.
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::PopBottom, OpResult::Popped(Some(7))),
            inv(
                1,
                2,
                4,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
            inv(
                2,
                3,
                5,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Duplicate),
            ),
        ];
        let spec = MultiplicitySpec {
            k: 3,
            drained: true,
        };
        assert!(check_multiplicity(&h, &spec).is_ok());
        // The same history violates the exact spec of `check`.
        assert!(check(&h).is_err());
    }

    #[test]
    fn multiplicity_rejects_k_plus_one_extractions() {
        let mut h = vec![inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed)];
        for p in 1..=3u64 {
            h.push(inv(
                p as usize,
                2 * p,
                2 * p + 1,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ));
        }
        let spec = MultiplicitySpec {
            k: 2,
            drained: false,
        };
        let err = check_multiplicity(&h, &spec).unwrap_err();
        assert!(err.contains("multiplicity bound"), "{err}");
    }

    #[test]
    fn multiplicity_rejects_a_lost_value_when_drained() {
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(8), OpResult::Pushed),
            inv(0, 4, 5, ProgOp::PopBottom, OpResult::Popped(Some(8))),
        ];
        let spec = MultiplicitySpec {
            k: 2,
            drained: true,
        };
        let err = check_multiplicity(&h, &spec).unwrap_err();
        assert!(err.contains("lost value 7"), "{err}");
        // Not drained: an unextracted value may legitimately remain.
        assert!(check_multiplicity(
            &h,
            &MultiplicitySpec {
                k: 2,
                drained: false
            }
        )
        .is_ok());
    }

    #[test]
    fn multiplicity_rejects_materialized_and_time_traveling_values() {
        let never_pushed = [inv(
            1,
            0,
            1,
            ProgOp::PopTop,
            OpResult::Stolen(SimSteal::Taken(9)),
        )];
        let spec = MultiplicitySpec {
            k: 4,
            drained: false,
        };
        assert!(check_multiplicity(&never_pushed, &spec)
            .unwrap_err()
            .contains("never pushed"));
        // Consumption that *ended* before the push even started.
        let time_travel = [
            inv(
                1,
                0,
                1,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
            inv(0, 5, 6, ProgOp::Push(7), OpResult::Pushed),
        ];
        assert!(check_multiplicity(&time_travel, &spec)
            .unwrap_err()
            .contains("before its push started"));
    }

    #[test]
    fn multiplicity_rejects_aborts_and_unexcused_duplicates() {
        let spec = MultiplicitySpec {
            k: 4,
            drained: false,
        };
        let abort = [inv(
            1,
            0,
            1,
            ProgOp::PopTop,
            OpResult::Stolen(SimSteal::Abort),
        )];
        assert!(check_multiplicity(&abort, &spec)
            .unwrap_err()
            .contains("never aborts"));
        // A Duplicate with no removal anywhere: nothing to have lost to.
        let lone_dup = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(
                1,
                2,
                3,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Duplicate),
            ),
        ];
        assert!(check_multiplicity(&lone_dup, &spec)
            .unwrap_err()
            .contains("Duplicate with no removal"));
        // Excused once the winner exists, even without interval overlap.
        let excused = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(
                2,
                2,
                3,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
            inv(
                1,
                8,
                9,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Duplicate),
            ),
        ];
        assert!(check_multiplicity(&excused, &spec).is_ok());
    }

    #[test]
    fn recorder_intervals_nest_and_check() {
        let rec = Recorder::new();
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::Push(3), OpResult::Pushed);
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::PopBottom, OpResult::Popped(Some(3)));
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].end < h[1].start, "sequential ops do not overlap");
        assert!(check(&h).is_ok());
    }
}
