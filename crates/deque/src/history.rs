//! The reusable relaxed-semantics history checker (§3.2).
//!
//! A *history* is a set of completed invocations, each with a real-time
//! (or logical-time) interval `[start, end]`, an operation kind, and a
//! result. [`check`] decides whether a history satisfies the paper's
//! relaxed deque semantics:
//!
//! 1. **Conservation** — every consumed value was pushed, and no value
//!    is consumed twice (the check the untagged §3.3 ABA variant fails).
//! 2. **The Abort excuse** — every `popTop` that returned NIL by losing
//!    a `cas` must overlap a successful removal by another process:
//!    §3.2's "at some point during the invocation … the topmost item is
//!    removed from the deque by another process".
//! 3. **Linearizability of the good ops** — a Wing–Gong search must
//!    find linearization points, one inside each non-Abort invocation's
//!    interval, such that the results agree with a serial deque
//!    (`VecDeque` specification).
//!
//! Two clients drive the same checker: the bounded-exhaustive explorer
//! in [`crate::model`] feeds it every interleaving of the
//! instruction-stepped [`crate::sim_deque`], and the
//! `atomic_linearizability` integration test feeds it timestamped
//! histories recorded (via [`Recorder`]) from *real* concurrent threads
//! hammering the production [`crate::atomic`] deque.
//!
//! Interval semantics: invocation A precedes B in real time iff
//! `A.end < B.start`. [`Recorder`] guarantees this by drawing both
//! endpoints from one global logical clock — the start tick is taken
//! before the operation is invoked and the end tick after it returns,
//! so tick intervals contain the true real-time intervals and every
//! real-time overlap is preserved.

use crate::sim_deque::SimSteal;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// One deque operation, as recorded in a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgOp {
    /// Owner-only: `pushBottom(v)`.
    Push(u64),
    /// Owner-only: `popBottom()`.
    PopBottom,
    /// `popTop()`.
    PopTop,
}

/// A completed invocation within one history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    pub proc: usize,
    /// Time (global instruction index or logical clock tick) at which
    /// the operation was invoked.
    pub start: u64,
    /// Time of its response.
    pub end: u64,
    pub kind: ProgOp,
    pub result: OpResult,
}

/// The result attached to a completed invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    Pushed,
    Popped(Option<u64>),
    Stolen(SimSteal),
}

/// A relaxed-semantics violation with the offending history.
#[derive(Debug, Clone)]
pub struct Violation {
    pub reason: String,
    pub history: Vec<Invocation>,
}

/// Checks one complete history against the relaxed semantics
/// (conservation, then the Abort excuse, then linearizability).
pub fn check(history: &[Invocation]) -> Result<(), String> {
    conservation(history)?;
    aborts_excused(history)?;
    linearizable(history)?;
    Ok(())
}

/// Every pushed value consumed at most once; every consumed value was
/// pushed. (Values in a history must be unique by convention.)
pub fn conservation(history: &[Invocation]) -> Result<(), String> {
    let mut pushed = Vec::new();
    let mut consumed = Vec::new();
    for inv in history {
        match inv.result {
            OpResult::Pushed => {
                if let ProgOp::Push(v) = inv.kind {
                    pushed.push(v);
                }
            }
            OpResult::Popped(Some(v)) => consumed.push(v),
            OpResult::Stolen(SimSteal::Taken(v)) => consumed.push(v),
            _ => {}
        }
    }
    for &v in &consumed {
        if !pushed.contains(&v) {
            return Err(format!("value {v} consumed but never pushed"));
        }
    }
    let mut sorted = consumed.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(format!("value {} consumed twice", w[0]));
        }
    }
    Ok(())
}

/// Every Abort must overlap an actual removal by another process —
/// `Popped(Some(_))` or `Taken(_)`. An observed-empty `Popped(None)` is
/// deliberately *not* an excuse: in the ABP algorithm an abort's `cas`
/// fails only because `age` was written inside the abort's interval,
/// and although the owner's empty-reset path does write `age` while
/// returning NIL, reaching that reset from the state the aborting
/// `popTop` observed (`bot > top`) requires the deque to cross from
/// nonempty to empty inside the same interval — and that crossing is
/// itself a removal (`popBottom` → Some, or a winning steal) whose
/// invocation overlaps the abort. Accepting any empty pop would instead
/// mask a deque bug where `popTop` aborts spuriously on an empty deque.
pub fn aborts_excused(history: &[Invocation]) -> Result<(), String> {
    for inv in history {
        if inv.result != OpResult::Stolen(SimSteal::Abort) {
            continue;
        }
        let excused = history.iter().any(|other| {
            other.proc != inv.proc
                && other.start <= inv.end
                && other.end >= inv.start
                && matches!(
                    other.result,
                    OpResult::Popped(Some(_)) | OpResult::Stolen(SimSteal::Taken(_))
                )
        });
        if !excused {
            return Err("popTop aborted with no overlapping removal".to_string());
        }
    }
    Ok(())
}

/// Wing–Gong linearizability of the non-Abort invocations against a
/// serial deque specification.
pub fn linearizable(history: &[Invocation]) -> Result<(), String> {
    let ops: Vec<&Invocation> = history
        .iter()
        .filter(|inv| inv.result != OpResult::Stolen(SimSteal::Abort))
        .collect();
    let mut linearized = vec![false; ops.len()];
    let mut spec = VecDeque::new();
    if lin_search(&ops, &mut linearized, &mut spec) {
        Ok(())
    } else {
        Err("no linearization consistent with a serial deque".to_string())
    }
}

fn lin_search(ops: &[&Invocation], linearized: &mut [bool], spec: &mut VecDeque<u64>) -> bool {
    if linearized.iter().all(|&b| b) {
        return true;
    }
    for i in 0..ops.len() {
        if linearized[i] {
            continue;
        }
        // `i` is a candidate only if no unlinearized op finished strictly
        // before it started.
        let minimal = (0..ops.len()).all(|j| linearized[j] || j == i || ops[j].end >= ops[i].start);
        if !minimal {
            continue;
        }
        // Try linearizing op i here: replay on the spec.
        let ok = match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(v), OpResult::Pushed) => {
                spec.push_back(v);
                true
            }
            (ProgOp::PopBottom, OpResult::Popped(r)) => {
                if spec.back().copied() == r {
                    if r.is_some() {
                        spec.pop_back();
                    }
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) => {
                if spec.front() == Some(&v) {
                    spec.pop_front();
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Empty)) => spec.is_empty(),
            other => panic!("malformed invocation {other:?}"),
        };
        if ok {
            linearized[i] = true;
            if lin_search(ops, linearized, spec) {
                return true;
            }
            linearized[i] = false;
        }
        // Undo the spec mutation.
        match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(_), OpResult::Pushed) if ok => {
                spec.pop_back();
            }
            (ProgOp::PopBottom, OpResult::Popped(Some(v))) if ok => {
                spec.push_back(v);
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) if ok => {
                spec.push_front(v);
            }
            _ => {}
        }
    }
    false
}

/// Records timestamped invoke/response histories from real concurrent
/// threads, for checking with [`check`].
///
/// One global logical clock (an `AtomicU64`, SeqCst) serializes all
/// endpoint events: call [`Recorder::invoked`] immediately *before* a
/// deque operation and [`Recorder::responded`] immediately *after* it
/// returns. The recorded interval therefore contains the operation's
/// true duration, so any two operations that overlap in real time
/// overlap in recorded ticks — the direction the checker's soundness
/// needs.
#[derive(Debug, Default)]
pub struct Recorder {
    clock: AtomicU64,
    log: Mutex<Vec<Invocation>>,
}

impl Recorder {
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Takes the invocation tick. Call right before the operation.
    #[inline]
    pub fn invoked(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::SeqCst)
    }

    /// Takes the response tick and appends the completed invocation.
    /// Call right after the operation returns, passing the tick from
    /// [`Recorder::invoked`].
    pub fn responded(&self, proc: usize, start: u64, kind: ProgOp, result: OpResult) {
        let end = self.clock.fetch_add(1, Ordering::SeqCst);
        self.log.lock().unwrap().push(Invocation {
            proc,
            start,
            end,
            kind,
            result,
        });
    }

    /// The history recorded so far. Call after joining every recording
    /// thread — a history with operations still in flight is incomplete
    /// and [`check`] may reject it spuriously.
    pub fn history(&self) -> Vec<Invocation> {
        self.log.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inv(proc: usize, start: u64, end: u64, kind: ProgOp, result: OpResult) -> Invocation {
        Invocation {
            proc,
            start,
            end,
            kind,
            result,
        }
    }

    #[test]
    fn conservation_detects_duplicate() {
        let h = [
            inv(0, 0, 1, ProgOp::Push(7), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::PopBottom, OpResult::Popped(Some(7))),
            inv(
                1,
                2,
                4,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(7)),
            ),
        ];
        assert!(conservation(&h).is_err());
    }

    #[test]
    fn conservation_detects_materialized_value() {
        let h = [inv(
            1,
            0,
            1,
            ProgOp::PopTop,
            OpResult::Stolen(SimSteal::Taken(9)),
        )];
        assert!(conservation(&h).unwrap_err().contains("never pushed"));
    }

    #[test]
    fn linearizability_rejects_wrong_order() {
        // Two sequential (non-overlapping) pushes then a popTop of the
        // *second* value: impossible serially.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 3, ProgOp::Push(2), OpResult::Pushed),
            inv(
                1,
                4,
                5,
                ProgOp::PopTop,
                OpResult::Stolen(SimSteal::Taken(2)),
            ),
        ];
        assert!(linearizable(&h).is_err());
    }

    #[test]
    fn empty_steal_requires_observably_empty_spec() {
        // popTop -> Empty while a pushed value sits in the deque the whole
        // time and nothing overlaps: not linearizable.
        let h = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(1, 2, 3, ProgOp::PopTop, OpResult::Stolen(SimSteal::Empty)),
        ];
        assert!(linearizable(&h).is_err());
    }

    #[test]
    fn abort_needs_an_overlapping_removal() {
        let lone_abort = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(1, 2, 3, ProgOp::PopTop, OpResult::Stolen(SimSteal::Abort)),
        ];
        assert!(aborts_excused(&lone_abort).is_err());
        let excused = [
            inv(0, 0, 1, ProgOp::Push(1), OpResult::Pushed),
            inv(0, 2, 4, ProgOp::PopBottom, OpResult::Popped(Some(1))),
            inv(1, 3, 5, ProgOp::PopTop, OpResult::Stolen(SimSteal::Abort)),
        ];
        assert!(aborts_excused(&excused).is_ok());
        assert!(check(&excused).is_ok());
    }

    #[test]
    fn recorder_intervals_nest_and_check() {
        let rec = Recorder::new();
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::Push(3), OpResult::Pushed);
        let s = rec.invoked();
        rec.responded(0, s, ProgOp::PopBottom, OpResult::Popped(Some(3)));
        let h = rec.history();
        assert_eq!(h.len(), 2);
        assert!(h[0].end < h[1].start, "sequential ops do not overlap");
        assert!(check(&h).is_ok());
    }
}
