//! A lock-based deque with the same interface as the ABP deque.
//!
//! This is the ablation baseline for the paper's claim (§1) that
//! *non-blocking* data structures are essential under multiprogramming: if
//! the kernel preempts a process while it holds a deque lock, every thief
//! that targets that deque spins uselessly until the victim runs again.
//! On a dedicated machine the difference is modest; once `P_A < P` it is
//! dramatic. The real-runtime benchmarks and the simulator both expose the
//! backend choice so the two can be compared head to head.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

use crate::atomic::{batch_want, Steal, StolenBatch};

/// A mutex-protected deque. `pushBottom`/`popBottom`/`popTop` all take the
/// same lock; there is no owner/thief distinction in the type system
/// because the lock serializes everyone anyway.
#[derive(Clone)]
pub struct LockingDeque<T> {
    inner: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Default for LockingDeque<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LockingDeque<T> {
    /// Creates an empty deque.
    pub fn new() -> Self {
        LockingDeque {
            inner: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Pushes at the bottom (owner end).
    pub fn push_bottom(&self, v: T) {
        self.inner.lock().unwrap().push_back(v);
    }

    /// Pops from the bottom (owner end).
    pub fn pop_bottom(&self) -> Option<T> {
        self.inner.lock().unwrap().pop_back()
    }

    /// Pops from the top (thief end). Uses `try_lock` so a thief never
    /// sleeps on a preempted lock holder: contention reports
    /// [`Steal::Abort`], mirroring the non-blocking deque's interface.
    pub fn pop_top(&self) -> Steal<T> {
        match self.inner.try_lock() {
            Ok(mut q) => match q.pop_front() {
                Some(v) => Steal::Taken(v),
                None => Steal::Empty,
            },
            Err(_) => Steal::Abort,
        }
    }

    /// Batched pop from the top: up to `max` entries (biased toward
    /// half the backlog, sized under the lock) under **one** `try_lock`.
    /// Contention reports an aborted batch, mirroring
    /// [`pop_top`](LockingDeque::pop_top)'s [`Steal::Abort`].
    pub fn pop_top_batch(&self, max: usize) -> StolenBatch<T> {
        let mut out = StolenBatch::empty();
        self.pop_top_batch_into(max, &mut out);
        out
    }

    /// [`pop_top_batch`](LockingDeque::pop_top_batch) into a
    /// caller-owned buffer (cleared and refilled): a reused buffer
    /// makes the grab allocation-free in steady state.
    pub fn pop_top_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        out.clear();
        match self.inner.try_lock() {
            Ok(mut q) => {
                let want = batch_want(q.len(), max);
                out.tasks.reserve(want);
                for _ in 0..want {
                    match q.pop_front() {
                        Some(v) => out.tasks.push(v),
                        None => break,
                    }
                }
            }
            Err(_) => out.aborted = true,
        }
    }

    /// Current size.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Snapshot of the contents, bottom (owner end) to top (thief end).
    /// Diagnostic only — meaningful when no operation is in flight, which
    /// is exactly the situation in the simulator's structural checks.
    pub fn contents_bottom_to_top(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.inner.lock().unwrap().iter().rev().cloned().collect()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_bottom_fifo_top() {
        let d = LockingDeque::new();
        for i in 0..5 {
            d.push_bottom(i);
        }
        assert_eq!(d.pop_top().taken(), Some(0));
        assert_eq!(d.pop_bottom(), Some(4));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn empty_behaviour() {
        let d: LockingDeque<u64> = LockingDeque::new();
        assert!(d.is_empty());
        assert_eq!(d.pop_bottom(), None);
        assert_eq!(d.pop_top(), Steal::Empty);
    }

    #[test]
    fn batch_pops_half_under_one_lock() {
        let d = LockingDeque::new();
        for i in 0..6 {
            d.push_bottom(i);
        }
        let b = d.pop_top_batch(8);
        assert_eq!(b.tasks, vec![0, 1, 2]);
        assert!(!b.aborted);
        assert_eq!(b.duplicates, 0);
        let b = d.pop_top_batch(1);
        assert_eq!(b.tasks, vec![3]);
        d.pop_bottom();
        d.pop_bottom();
        let b = d.pop_top_batch(8);
        assert!(b.is_empty() && !b.aborted);
    }

    #[test]
    fn concurrent_conservation() {
        use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
        const N: usize = 10_000;
        let d: LockingDeque<usize> = LockingDeque::new();
        let counts: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let d = d.clone();
            let counts = Arc::clone(&counts);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match d.pop_top() {
                    Steal::Taken(v) => {
                        counts[v].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    Steal::Abort => {}
                    Steal::Duplicate => unreachable!("locking deque is exact: no duplicates"),
                }
            }));
        }
        for i in 0..N {
            d.push_bottom(i);
            if i % 3 == 0 {
                if let Some(v) = d.pop_bottom() {
                    counts[v].fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        while let Some(v) = d.pop_bottom() {
            counts[v].fetch_add(1, Ordering::Relaxed);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "value {i}");
        }
    }
}
