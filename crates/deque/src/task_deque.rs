//! The pluggable deque seam: one trait family, four backends.
//!
//! [`TaskDeque`] abstracts "one worker's deque" the way
//! [`crate::order::OrderProfile`] abstracts the memory-ordering
//! protocol: a zero-sized-ish *descriptor* names the backend, and the
//! runtime monomorphizes its worker loops over it. Each backend splits
//! into an owner handle ([`TaskDeque::Owner`]: `pushBottom`/`popBottom`,
//! `!Sync` where the algorithm demands a unique owner) and a cloneable
//! stealer handle ([`TaskDeque::Stealer`]: `popTop`). The associated
//! [`Steal`] result is shared by all backends and is
//! `Duplicate`-capable: multiplicity-relaxed backends report a lost
//! once-guard as [`Steal::Duplicate`], which exact backends never
//! produce (pinned per backend by [`TaskDeque::EXACT`]).
//!
//! Two capability constants drive per-backend accounting assertions in
//! the runtimes (the four-way identity holds for every backend, with a
//! structurally-zero term where the backend cannot produce the
//! outcome):
//!
//! * [`TaskDeque::CAN_ABORT`] — `popTop` may lose a race and return
//!   [`Steal::Abort`] (ABP's failed `cas`, the locking deque's
//!   contended `try_lock`). The fence-free backend never aborts: its
//!   steal fast path has no `cas` to lose and no lock to miss, so its
//!   `aborts` counter must be exactly zero at shutdown.
//! * [`TaskDeque::EXACT`] — `popTop` never reports
//!   [`Steal::Duplicate`]. Exact backends must show `duplicates == 0`
//!   at shutdown; the fence-free backend may not.
//!
//! Consumers: `hood::pool` selects a backend per pool
//! (`PoolConfig::with_deque`) and spawns monomorphized worker loops;
//! the simulator's locking model delegates its queue state to the real
//! [`LockingDeque`] through these same traits.

use crate::atomic::{batch_want, PushError, Steal, Stealer, StolenBatch, Worker};
use crate::fence_free::{FenceFreeStealer, FenceFreeWorker};
use crate::growable::{GrowableStealer, GrowableWorker};
use crate::locking::LockingDeque;
use crate::word::Word;

/// The owner-side handle: `pushBottom` / `popBottom`, plus the size
/// hint the runtimes' pre-sleep re-scan uses.
pub trait DequeOwner<T: Word>: Send {
    /// `pushBottom`. `Err` means the backend's array is exhausted (the
    /// caller then runs the job inline); growable and locking backends
    /// never fail.
    fn push_bottom(&self, v: T) -> Result<(), PushError<T>>;
    /// `popBottom`.
    fn pop_bottom(&self) -> Option<T>;
    /// Best-effort size (may be stale under concurrent steals).
    fn len_hint(&self) -> usize;
}

/// The thief-side handle: cloneable, shared across workers.
pub trait DequeStealer<T: Word>: Clone + Send + Sync {
    /// `popTop`.
    fn steal(&self) -> Steal<T>;
    /// Best-effort size (may be stale).
    fn len_hint(&self) -> usize;

    /// Batched `popTop`: claim up to `max` tasks, biased toward half
    /// the victim's visible backlog, under as little synchronization as
    /// the backend allows. Every backend overrides this with a native
    /// grab (a re-validated `cas` chain for ABP/growable — one fence +
    /// `bot` reload per claim, INV-SB-REVAL — one range of once-guard
    /// claims for fence-free, one `try_lock` for locking); the default
    /// is a single-steal loop so third-party backends get correct — if
    /// unamortized — batch semantics for free.
    ///
    /// Outcome mapping mirrors [`Steal`]: an empty non-aborted batch is
    /// the `Empty` observation, `aborted` is the batch `Abort` (nothing
    /// claimed and a race lost), and `duplicates` counts lost
    /// once-guard races inside the scanned range.
    fn steal_batch(&self, max: usize) -> StolenBatch<T> {
        let mut out = StolenBatch::empty();
        self.steal_batch_into(max, &mut out);
        out
    }

    /// [`steal_batch`](DequeStealer::steal_batch) into a caller-owned
    /// buffer: `out` is cleared and refilled. Reusing one buffer across
    /// grabs makes the seam allocation-free in steady state — the other
    /// half of the amortization (one synchronization episode *and* zero
    /// allocations per multi-task grab). Backends override this with
    /// their native grabs; `steal_batch` always delegates here.
    fn steal_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        out.clear();
        for _ in 0..batch_want(self.len_hint(), max) {
            match self.steal() {
                Steal::Taken(v) => out.tasks.push(v),
                Steal::Duplicate => out.duplicates += 1,
                Steal::Abort => {
                    out.aborted = out.tasks.is_empty() && out.duplicates == 0;
                    break;
                }
                Steal::Empty => break,
            }
        }
    }
}

/// A deque backend descriptor: names the algorithm, carries its sizing
/// parameters, and constructs owner/stealer pairs.
pub trait TaskDeque<T: Word>: Clone + Send + Sync + std::fmt::Debug + 'static {
    type Owner: DequeOwner<T>;
    type Stealer: DequeStealer<T>;

    /// Whether `popTop` can return [`Steal::Abort`]. When false, the
    /// runtime asserts `aborts == 0` at shutdown for this backend.
    const CAN_ABORT: bool;
    /// Whether extraction is exactly-once at the deque interface. When
    /// true, the runtime asserts `duplicates == 0` at shutdown.
    const EXACT: bool;
    /// Short label for reports and benchmarks.
    const NAME: &'static str;

    /// Builds one worker's deque, returning the unique owner handle and
    /// a cloneable stealer handle.
    fn new_pair(&self) -> (Self::Owner, Self::Stealer);
}

// ---------------------------------------------------------------------
// ABP (fixed capacity)
// ---------------------------------------------------------------------

/// The non-blocking ABP deque (Figure 5) with a fixed array capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbpBackend {
    pub capacity: usize,
}

impl Default for AbpBackend {
    fn default() -> Self {
        AbpBackend { capacity: 1 << 15 }
    }
}

impl<T: Word + Send + Sync + 'static> DequeOwner<T> for Worker<T> {
    fn push_bottom(&self, v: T) -> Result<(), PushError<T>> {
        Worker::push_bottom(self, v)
    }
    fn pop_bottom(&self) -> Option<T> {
        Worker::pop_bottom(self)
    }
    fn len_hint(&self) -> usize {
        Worker::len_hint(self)
    }
}

impl<T: Word + Send + Sync + 'static> DequeStealer<T> for Stealer<T> {
    fn steal(&self) -> Steal<T> {
        self.pop_top()
    }
    fn len_hint(&self) -> usize {
        Stealer::len_hint(self)
    }
    fn steal_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        self.pop_top_batch_into(max, out)
    }
}

impl<T: Word + Send + Sync + 'static> TaskDeque<T> for AbpBackend {
    type Owner = Worker<T>;
    type Stealer = Stealer<T>;
    const CAN_ABORT: bool = true; // a steal can lose the `age` cas
    const EXACT: bool = true;
    const NAME: &'static str = "abp";

    fn new_pair(&self) -> (Self::Owner, Self::Stealer) {
        crate::atomic::new::<T>(self.capacity)
    }
}

// ---------------------------------------------------------------------
// ABP growable
// ---------------------------------------------------------------------

/// The growable ABP deque (retire-list buffers): never overflows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowableBackend {
    pub initial_capacity: usize,
}

impl Default for GrowableBackend {
    fn default() -> Self {
        GrowableBackend {
            initial_capacity: 64,
        }
    }
}

impl<T: Word + Send + Sync + 'static> DequeOwner<T> for GrowableWorker<T> {
    fn push_bottom(&self, v: T) -> Result<(), PushError<T>> {
        GrowableWorker::push_bottom(self, v);
        Ok(())
    }
    fn pop_bottom(&self) -> Option<T> {
        GrowableWorker::pop_bottom(self)
    }
    fn len_hint(&self) -> usize {
        GrowableWorker::len_hint(self)
    }
}

impl<T: Word + Send + Sync + 'static> DequeStealer<T> for GrowableStealer<T> {
    fn steal(&self) -> Steal<T> {
        self.pop_top()
    }
    fn len_hint(&self) -> usize {
        GrowableStealer::len_hint(self)
    }
    fn steal_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        self.pop_top_batch_into(max, out)
    }
}

impl<T: Word + Send + Sync + 'static> TaskDeque<T> for GrowableBackend {
    type Owner = GrowableWorker<T>;
    type Stealer = GrowableStealer<T>;
    const CAN_ABORT: bool = true;
    const EXACT: bool = true;
    const NAME: &'static str = "abp-growable";

    fn new_pair(&self) -> (Self::Owner, Self::Stealer) {
        crate::growable::new_growable::<T>(self.initial_capacity)
    }
}

// ---------------------------------------------------------------------
// Locking baseline
// ---------------------------------------------------------------------

/// The mutex-protected baseline for the "non-blocking data structures
/// are essential" ablation. Owner and stealer are clones of the same
/// handle; the lock serializes everyone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockingBackend;

impl<T: Word + Send + Sync + 'static> DequeOwner<T> for LockingDeque<T> {
    fn push_bottom(&self, v: T) -> Result<(), PushError<T>> {
        LockingDeque::push_bottom(self, v);
        Ok(())
    }
    fn pop_bottom(&self) -> Option<T> {
        LockingDeque::pop_bottom(self)
    }
    fn len_hint(&self) -> usize {
        self.len()
    }
}

impl<T: Word + Send + Sync + 'static> DequeStealer<T> for LockingDeque<T> {
    fn steal(&self) -> Steal<T> {
        self.pop_top()
    }
    fn len_hint(&self) -> usize {
        self.len()
    }
    fn steal_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        self.pop_top_batch_into(max, out)
    }
}

impl<T: Word + Send + Sync + 'static> TaskDeque<T> for LockingBackend {
    type Owner = LockingDeque<T>;
    type Stealer = LockingDeque<T>;
    const CAN_ABORT: bool = true; // a contended `try_lock` reports Abort
    const EXACT: bool = true;
    const NAME: &'static str = "locking";

    fn new_pair(&self) -> (Self::Owner, Self::Stealer) {
        let d = LockingDeque::new();
        (d.clone(), d)
    }
}

// ---------------------------------------------------------------------
// Fence-free multiplicity deque
// ---------------------------------------------------------------------

/// The fence-free read/write deque with multiplicity (Castañeda & Piña,
/// PAPERS.md): the steal fast path is plain loads and stores — no `cas`
/// on the shared `top` word, no SeqCst fence — at the cost of rare
/// duplicate extraction *attempts*, which the per-item once-guard
/// resolves to exactly one winner ([`Steal::Duplicate`] for the rest).
/// Never aborts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FenceFreeBackend {
    pub capacity: usize,
}

impl Default for FenceFreeBackend {
    fn default() -> Self {
        FenceFreeBackend { capacity: 1 << 15 }
    }
}

impl<T: Word + Send + Sync + 'static> DequeOwner<T> for FenceFreeWorker<T> {
    fn push_bottom(&self, v: T) -> Result<(), PushError<T>> {
        FenceFreeWorker::push_bottom(self, v)
    }
    fn pop_bottom(&self) -> Option<T> {
        FenceFreeWorker::pop_bottom(self)
    }
    fn len_hint(&self) -> usize {
        FenceFreeWorker::len_hint(self)
    }
}

impl<T: Word + Send + Sync + 'static> DequeStealer<T> for FenceFreeStealer<T> {
    fn steal(&self) -> Steal<T> {
        FenceFreeStealer::steal(self)
    }
    fn len_hint(&self) -> usize {
        FenceFreeStealer::len_hint(self)
    }
    fn steal_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        FenceFreeStealer::steal_batch_into(self, max, out)
    }
}

impl<T: Word + Send + Sync + 'static> TaskDeque<T> for FenceFreeBackend {
    type Owner = FenceFreeWorker<T>;
    type Stealer = FenceFreeStealer<T>;
    const CAN_ABORT: bool = false; // nothing to lose: no cas, no lock
    const EXACT: bool = false; // lost once-guards surface as Duplicate
    const NAME: &'static str = "fence-free";

    fn new_pair(&self) -> (Self::Owner, Self::Stealer) {
        crate::fence_free::new_fence_free::<T>(self.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every backend round-trips values through the trait surface.
    fn smoke<B: TaskDeque<u64>>(backend: B) {
        let (owner, stealer) = backend.new_pair();
        assert_eq!(owner.pop_bottom(), None);
        assert_eq!(stealer.steal().taken(), None);
        for v in 0..8u64 {
            owner.push_bottom(v).unwrap();
        }
        assert!(owner.len_hint() >= 1);
        // Top yields the oldest, bottom the newest.
        assert_eq!(stealer.steal().taken(), Some(0));
        assert_eq!(owner.pop_bottom(), Some(7));
        let mut got = vec![0u64, 7];
        while let Some(v) = owner.pop_bottom() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        assert_eq!(stealer.steal().taken(), None);
    }

    /// Batched steals through the trait seam: half-backlog bias, top
    /// order, exact conservation against owner pops.
    fn batch_smoke<B: TaskDeque<u64>>(backend: B) {
        let (owner, stealer) = backend.new_pair();
        let b = stealer.steal_batch(8);
        assert!(b.is_empty() && !b.aborted, "{}: empty deque", B::NAME);
        for v in 0..10u64 {
            owner.push_bottom(v).unwrap();
        }
        let b = stealer.steal_batch(64);
        assert_eq!(b.tasks, (0..5).collect::<Vec<_>>(), "{}", B::NAME);
        assert_eq!(b.duplicates, 0);
        let b = stealer.steal_batch(2);
        assert_eq!(b.tasks, vec![5, 6], "{}: max caps the grab", B::NAME);
        let mut got: Vec<u64> = (0..7).collect();
        while let Some(v) = owner.pop_bottom() {
            got.push(v);
        }
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>(), "{}", B::NAME);
    }

    #[test]
    fn all_backends_batch_through_the_trait() {
        batch_smoke(AbpBackend { capacity: 32 });
        batch_smoke(GrowableBackend {
            initial_capacity: 2,
        });
        batch_smoke(LockingBackend);
        batch_smoke(FenceFreeBackend { capacity: 32 });
    }

    /// The default single-steal-loop fallback (a stealer type that does
    /// not override `steal_batch`) honors the same semantics.
    #[test]
    fn default_steal_batch_fallback_loops_singles() {
        #[derive(Clone)]
        struct PlainStealer(Stealer<u64>);
        impl DequeStealer<u64> for PlainStealer {
            fn steal(&self) -> Steal<u64> {
                self.0.pop_top()
            }
            fn len_hint(&self) -> usize {
                self.0.len_hint()
            }
            // No steal_batch override: exercises the trait default.
        }
        let (owner, stealer) = crate::atomic::new::<u64>(32);
        let plain = PlainStealer(stealer);
        for v in 0..8u64 {
            owner.push_bottom(v).unwrap();
        }
        let b = plain.steal_batch(64);
        assert_eq!(b.tasks, vec![0, 1, 2, 3]);
        assert!(!b.aborted);
        let b = plain.steal_batch(1);
        assert_eq!(b.tasks, vec![4]);
    }

    #[test]
    fn all_backends_satisfy_the_trait_contract() {
        smoke(AbpBackend { capacity: 32 });
        smoke(GrowableBackend {
            initial_capacity: 2,
        });
        smoke(LockingBackend);
        smoke(FenceFreeBackend { capacity: 32 });
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // pinning the constants IS the test
    fn capability_constants_name_the_backend_semantics() {
        assert!(<AbpBackend as TaskDeque<u64>>::EXACT);
        assert!(<AbpBackend as TaskDeque<u64>>::CAN_ABORT);
        assert!(<LockingBackend as TaskDeque<u64>>::CAN_ABORT);
        assert!(!<FenceFreeBackend as TaskDeque<u64>>::EXACT);
        assert!(!<FenceFreeBackend as TaskDeque<u64>>::CAN_ABORT);
    }
}
