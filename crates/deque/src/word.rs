//! Machine-word element types for the lock-free deque.
//!
//! The ABP deque's array entries are read by thieves *concurrently* with
//! possible overwrites by the owner; the algorithm discards stale reads via
//! the `age` CAS, but at the memory-model level the slot accesses must be
//! atomic. We therefore store elements in `AtomicU64` slots and restrict
//! element types to those that round-trip through a `u64` — exactly the
//! paper's model, where the deque holds pointers to thread objects.

/// A value that fits losslessly in a single 64-bit machine word.
///
/// # Safety
///
/// Implementations must guarantee `from_word(to_word(x)) == x` for every
/// value `x`, and `from_word` must be safe for any word previously produced
/// by `to_word`. All provided implementations are plain integer casts.
pub unsafe trait Word: Copy {
    /// Encodes the value into a word.
    fn to_word(self) -> u64;
    /// Decodes a word previously produced by [`Word::to_word`].
    fn from_word(w: u64) -> Self;
}

unsafe impl Word for u64 {
    #[inline]
    fn to_word(self) -> u64 {
        self
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w
    }
}

unsafe impl Word for usize {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as usize
    }
}

unsafe impl Word for u32 {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as u32
    }
}

unsafe impl Word for i64 {
    #[inline]
    fn to_word(self) -> u64 {
        self as u64
    }
    #[inline]
    fn from_word(w: u64) -> Self {
        w as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips() {
        assert_eq!(u64::from_word(u64::MAX.to_word()), u64::MAX);
        assert_eq!(usize::from_word(12345usize.to_word()), 12345);
        assert_eq!(u32::from_word(u32::MAX.to_word()), u32::MAX);
        assert_eq!(i64::from_word((-7i64).to_word()), -7);
    }
}
