//! A growable variant of the ABP deque (extension beyond the paper).
//!
//! The Figure-5 deque uses a fixed array; Hood simply sized it "big
//! enough". Practical descendants grow the array on demand, which
//! requires replacing the buffer while thieves may still hold references
//! to the old one. This module adds that, keeping the ABP `age`/`bot`
//! protocol intact:
//!
//! * the owner, on running out of room, allocates a buffer of twice the
//!   capacity, copies the live region, and publishes it; the old buffer
//!   is parked on an owner-private retire list and freed only when the
//!   deque itself is dropped, so a preempted thief can safely finish
//!   reading it (retired buffers form a geometric series, so they total
//!   less than the current buffer's size — bounded waste, no GC);
//! * stale-buffer reads are harmless by the same argument that protects
//!   stale slot reads in the original algorithm: the owner only rewrites
//!   low indices after a bottom reset, every reset bumps the `tag`, and
//!   the thief's `cas` on the whole age word rejects anything read before
//!   a tag change. Growth itself never changes indices, and buffers are
//!   immutable once superseded, so a thief holding the old buffer reads
//!   exactly the bytes the new buffer holds at the same index.
//!
//! The owner-side operations remain lock-free (an allocation is not
//! wait-free, but never blocks on other processes); thieves are
//! non-blocking exactly as before.
//!
//! Memory orderings follow [`crate::atomic`] exactly (same
//! [`OrderProfile`] constants, same `INV-*` citations — see
//! [`crate::order`]); the only growable-specific edge is the buffer
//! pointer, which the owner publishes with a `Release` swap and thieves
//! read with `Acquire` so the copied slot contents (plain initialization
//! writes) are visible before the pointer is dereferenced
//! \[INV-GROW below\].
//!
//! Like the fixed-capacity deque's `tag`, the 32-bit `top` field bounds
//! extreme behaviour: `top` wraps only after 2³² steals occur without the
//! owner ever draining the deque (every drain resets the indices). A
//! fork-join runtime drains constantly, so this is unreachable in
//! practice, but a pathological producer/consumer pipeline that never
//! empties the deque should use bounded batches.

use crate::atomic::{batch_want, Steal, StolenBatch};
use crate::order::{DefaultProtocol, OrderProfile};
use crate::word::Word;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicPtr, AtomicU64};
use std::sync::Arc;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct AgeWord {
    tag: u32,
    top: u32,
}

impl AgeWord {
    #[inline]
    fn pack(self) -> u64 {
        ((self.tag as u64) << 32) | self.top as u64
    }

    #[inline]
    fn unpack(w: u64) -> Self {
        AgeWord {
            tag: (w >> 32) as u32,
            top: w as u32,
        }
    }
}

struct Buffer {
    slots: Box<[AtomicU64]>,
}

impl Buffer {
    fn new(cap: usize) -> Self {
        Buffer {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Pads a word onto its own cache line (see [`crate::atomic`]): `age` is
/// CAS-hammered by thieves while the owner stores `bot` on every
/// push/pop. The buffer pointer rides with `bot` writes far more rarely
/// than thieves read it, so it gets its own line too.
#[repr(align(128))]
struct Line<T>(T);

struct Inner<T: Word> {
    age: Line<AtomicU64>,
    bot: Line<AtomicU64>,
    buffer: Line<AtomicPtr<Buffer>>,
    /// Superseded buffers, kept alive so preempted thieves can finish
    /// reading them. Pushed to only by the owner (`GrowableWorker` is
    /// `!Sync`), drained only in `Drop` when no handles remain. The
    /// boxes are required: stealers hold raw pointers into the buffers,
    /// so their addresses must survive the `Vec` reallocating.
    #[allow(clippy::vec_box)]
    retired: UnsafeCell<Vec<Box<Buffer>>>,
    _marker: PhantomData<T>,
}

unsafe impl<T: Word> Send for Inner<T> {}
unsafe impl<T: Word> Sync for Inner<T> {}

impl<T: Word> Drop for Inner<T> {
    fn drop(&mut self) {
        // Sole owner at this point: reclaim the current buffer directly
        // (`retired` drops itself).
        let ptr = *self.buffer.0.get_mut();
        if !ptr.is_null() {
            unsafe {
                drop(Box::from_raw(ptr));
            }
        }
    }
}

/// Owner handle of a growable ABP deque.
pub struct GrowableWorker<T: Word, P: OrderProfile = DefaultProtocol> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<std::cell::Cell<()>>,
    _order: PhantomData<fn() -> P>,
}

unsafe impl<T: Word, P: OrderProfile> Send for GrowableWorker<T, P> {}

/// Thief handle of a growable ABP deque.
pub struct GrowableStealer<T: Word, P: OrderProfile = DefaultProtocol> {
    inner: Arc<Inner<T>>,
    _order: PhantomData<fn() -> P>,
}

impl<T: Word, P: OrderProfile> Clone for GrowableStealer<T, P> {
    fn clone(&self) -> Self {
        GrowableStealer {
            inner: Arc::clone(&self.inner),
            _order: PhantomData,
        }
    }
}

/// Creates a growable ABP deque with the given initial capacity.
pub fn new_growable<T: Word>(initial_capacity: usize) -> (GrowableWorker<T>, GrowableStealer<T>) {
    new_growable_with_order::<T, DefaultProtocol>(initial_capacity)
}

/// [`new_growable`], but with an explicit [`OrderProfile`] — used by the
/// benchmarks to compare the relaxed protocol against the blanket-SeqCst
/// baseline in the same binary.
pub fn new_growable_with_order<T: Word, P: OrderProfile>(
    initial_capacity: usize,
) -> (GrowableWorker<T, P>, GrowableStealer<T, P>) {
    let cap = initial_capacity.next_power_of_two().max(4);
    let inner = Arc::new(Inner {
        age: Line(AtomicU64::new(AgeWord { tag: 0, top: 0 }.pack())),
        bot: Line(AtomicU64::new(0)),
        buffer: Line(AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(cap))))),
        retired: UnsafeCell::new(Vec::new()),
        _marker: PhantomData,
    });
    (
        GrowableWorker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
            _order: PhantomData,
        },
        GrowableStealer {
            inner,
            _order: PhantomData,
        },
    )
}

impl<T: Word, P: OrderProfile> GrowableWorker<T, P> {
    /// `pushBottom`, growing the backing array when the bottom index
    /// reaches its end. Never fails.
    pub fn push_bottom(&self, node: T) {
        let inner = &*self.inner;
        // Relaxed: owner is the sole writer of bot [INV-OWNER].
        let local_bot = inner.bot.0.load(P::RELAXED);
        // SAFETY: the buffer is live (freed only in Drop); only this owner
        // replaces it. Relaxed load: the owner is also the pointer's sole
        // writer [INV-OWNER].
        let mut buf = unsafe { &*inner.buffer.0.load(P::RELAXED) };
        if local_bot as usize >= buf.slots.len() {
            // Grow: copy everything (indices are absolute and small — bot
            // resets to 0 whenever the owner drains the deque). Relaxed
            // slot traffic: published by the Release swap below
            // [INV-GROW], and stale values a thief reads from the old
            // buffer are rejected by the tag cas [INV-TAG].
            let new = Buffer::new(buf.slots.len() * 2);
            for (i, s) in buf.slots.iter().enumerate() {
                new.slots[i].store(s.load(P::RELAXED), P::RELAXED);
            }
            let new_ptr = Box::into_raw(Box::new(new));
            // Release: publishes the copied contents (and the buffer's
            // initialization writes) to any thief that Acquire-loads the
            // new pointer [INV-GROW].
            let old = inner.buffer.0.swap(new_ptr, P::RELEASE);
            // SAFETY: `old` is unlinked but thieves may still hold it;
            // retire it until Drop. `retired` is owner-private: this
            // `GrowableWorker` is `!Sync` and nothing else touches it.
            unsafe {
                (*inner.retired.get()).push(Box::from_raw(old));
            }
            buf = unsafe { &*new_ptr };
        }
        // Relaxed slot store, Release bot store: exactly pushBottom in
        // `crate::atomic` [INV-PUSH].
        buf.slots[local_bot as usize].store(node.to_word(), P::RELAXED);
        inner.bot.0.store(local_bot + 1, P::RELEASE);
    }

    /// `popBottom`, identical to the fixed-capacity protocol (orderings
    /// and invariant citations in [`crate::atomic::Worker::pop_bottom`]).
    pub fn pop_bottom(&self) -> Option<T> {
        let inner = &*self.inner;
        // Relaxed: owner is bot's sole writer [INV-OWNER].
        let local_bot = inner.bot.0.load(P::RELAXED);
        if local_bot == 0 {
            return None;
        }
        let local_bot = local_bot - 1;
        // Relaxed claim store; decided at the fence [INV-FENCE].
        inner.bot.0.store(local_bot, P::RELAXED);
        // The §3.3 store→load window [INV-FENCE].
        P::owner_fence();
        // SAFETY: live until Drop, as above. Relaxed: the owner is the
        // pointer's sole writer [INV-OWNER].
        let buf = unsafe { &*inner.buffer.0.load(P::RELAXED) };
        // Relaxed: the owner wrote this slot itself [INV-OWNER].
        let node = T::from_word(buf.slots[local_bot as usize].load(P::RELAXED));
        // Acquire: fence-ordered after the claim [INV-FENCE]; pairs with
        // observed steal cases before slots are reused [INV-STEAL-HB].
        let old_age = AgeWord::unpack(inner.age.0.load(P::ACQUIRE));
        if local_bot > old_age.top as u64 {
            return Some(node);
        }
        // Relaxed: published by the Release age reset below [INV-RESET].
        inner.bot.0.store(0, P::RELAXED);
        let new_age = AgeWord {
            tag: old_age.tag.wrapping_add(1),
            top: 0,
        };
        // AcqRel success / Acquire failure: see `crate::atomic`
        // [INV-RESET, INV-STEAL-HB].
        if local_bot == old_age.top as u64
            && inner
                .age
                .0
                .compare_exchange(
                    old_age.pack(),
                    new_age.pack(),
                    P::RESET_CAS,
                    P::RESET_CAS_FAIL,
                )
                .is_ok()
        {
            return Some(node);
        }
        // Release: publishes bot = 0 [INV-RESET].
        inner.age.0.store(new_age.pack(), P::RELEASE);
        None
    }

    /// Observed size; immediately stale under concurrency.
    pub fn len_hint(&self) -> usize {
        let age = AgeWord::unpack(self.inner.age.0.load(std::sync::atomic::Ordering::Relaxed));
        self.inner
            .bot
            .0
            .load(std::sync::atomic::Ordering::Relaxed)
            .saturating_sub(age.top as u64) as usize
    }

    /// Current backing-array capacity (for tests/diagnostics).
    pub fn capacity(&self) -> usize {
        // SAFETY: live until Drop, as above. Relaxed: owner is the
        // pointer's sole writer [INV-OWNER].
        unsafe { &*self.inner.buffer.0.load(P::RELAXED) }
            .slots
            .len()
    }

    /// Another thief handle.
    pub fn stealer(&self) -> GrowableStealer<T, P> {
        GrowableStealer {
            inner: Arc::clone(&self.inner),
            _order: PhantomData,
        }
    }
}

impl<T: Word, P: OrderProfile> GrowableStealer<T, P> {
    /// `popTop`. The only growable-specific step is re-loading the buffer
    /// if the one observed is too small for the top index — it must then
    /// be stale, because the owner grows before publishing such a `bot`.
    pub fn pop_top(&self) -> Steal<T> {
        let inner = &*self.inner;
        // Acquire + fence + Acquire: the same thief-side sequence as
        // `crate::atomic` [INV-RESET, INV-FENCE, INV-PUSH].
        let old_age = AgeWord::unpack(inner.age.0.load(P::ACQUIRE));
        P::thief_fence();
        let local_bot = inner.bot.0.load(P::ACQUIRE);
        if local_bot <= old_age.top as u64 {
            return Steal::Empty;
        }
        let mut spins = 0;
        let node = loop {
            // SAFETY: buffers are never freed before `Inner` drops, and
            // this stealer's `Arc` keeps `Inner` alive. Acquire: must pair
            // with whichever Release swap published this pointer so the
            // buffer's (plain) initialization and copied contents are
            // visible before the dereference [INV-GROW].
            let buf = unsafe { &*inner.buffer.0.load(P::ACQUIRE) };
            if (old_age.top as usize) < buf.slots.len() {
                // Relaxed: validated by the tag cas [INV-TAG].
                break T::from_word(buf.slots[old_age.top as usize].load(P::RELAXED));
            }
            // Stale buffer: the owner has already published a bigger one.
            spins += 1;
            if spins > 64 {
                // Pathological staleness: give up this attempt rather than
                // spin (non-blocking discipline).
                return Steal::Abort;
            }
            std::hint::spin_loop();
        };
        let new_age = AgeWord {
            tag: old_age.tag,
            top: old_age.top + 1,
        };
        // SeqCst success (three-agent argument, [INV-FENCE] — see
        // `crate::order`) / Relaxed failure.
        if inner
            .age
            .0
            .compare_exchange(
                old_age.pack(),
                new_age.pack(),
                P::STEAL_CAS,
                P::STEAL_CAS_FAIL,
            )
            .is_ok()
        {
            Steal::Taken(node)
        } else {
            Steal::Abort
        }
    }

    /// Batched `popTop`: the same single-slot `cas` chain as
    /// [`crate::atomic::Stealer::pop_top_batch`] (one range `cas` would
    /// race the owner's keep-path pops — INV-SB-CHAIN there), with the
    /// same per-claim preamble re-run — thief fence + Acquire `bot`
    /// reload, stopping when `bot <= top` [INV-SB-REVAL there] — and
    /// the growable-specific buffer reload per slot read [INV-GROW].
    pub fn pop_top_batch(&self, max: usize) -> StolenBatch<T> {
        let mut out = StolenBatch::empty();
        self.pop_top_batch_into(max, &mut out);
        out
    }

    /// [`pop_top_batch`](GrowableStealer::pop_top_batch) into a
    /// caller-owned buffer (cleared and refilled): a reused buffer
    /// makes the grab allocation-free in steady state.
    pub fn pop_top_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        out.clear();
        let inner = &*self.inner;
        let mut age = AgeWord::unpack(inner.age.0.load(P::ACQUIRE));
        P::thief_fence();
        let mut bot = inner.bot.0.load(P::ACQUIRE);
        if bot <= age.top as u64 {
            return;
        }
        let avail = (bot - age.top as u64) as usize;
        let want = batch_want(avail, max);
        out.tasks.reserve(want);
        while out.tasks.len() < want {
            let mut spins = 0;
            let node = loop {
                // SAFETY: buffers live until `Inner` drops; Acquire pairs
                // with the Release publication swap [INV-GROW].
                let buf = unsafe { &*inner.buffer.0.load(P::ACQUIRE) };
                if (age.top as usize) < buf.slots.len() {
                    break T::from_word(buf.slots[age.top as usize].load(P::RELAXED));
                }
                spins += 1;
                if spins > 64 {
                    // Pathological buffer staleness: end the grab rather
                    // than spin (non-blocking discipline, as in pop_top).
                    out.aborted = out.tasks.is_empty();
                    return;
                }
                std::hint::spin_loop();
            };
            let new_age = AgeWord {
                tag: age.tag,
                top: age.top + 1,
            };
            match inner.age.0.compare_exchange(
                age.pack(),
                new_age.pack(),
                P::STEAL_CAS,
                P::STEAL_CAS_FAIL,
            ) {
                Ok(_) => {
                    out.tasks.push(node);
                    age = new_age;
                    if out.tasks.len() == want {
                        break;
                    }
                    // INV-SB-REVAL (see atomic.rs): the owner's keep path
                    // can drain past a stale `bot` without touching `age`.
                    P::thief_fence();
                    bot = inner.bot.0.load(P::ACQUIRE);
                    if bot <= age.top as u64 {
                        break;
                    }
                }
                Err(_) => {
                    out.aborted = out.tasks.is_empty();
                    break;
                }
            }
        }
    }

    /// Observed size; immediately stale under concurrency.
    pub fn len_hint(&self) -> usize {
        let age = AgeWord::unpack(self.inner.age.0.load(std::sync::atomic::Ordering::Relaxed));
        self.inner
            .bot
            .0
            .load(std::sync::atomic::Ordering::Relaxed)
            .saturating_sub(age.top as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{RelaxedProtocol, SeqCstProtocol};
    use std::sync::atomic::Ordering;

    #[test]
    fn grows_transparently() {
        let (w, s) = new_growable::<u64>(4);
        assert_eq!(w.capacity(), 4);
        for i in 0..1000 {
            w.push_bottom(i);
        }
        assert!(w.capacity() >= 1000);
        for i in 0..500 {
            assert_eq!(s.pop_top(), Steal::Taken(i));
        }
        for i in (500..1000).rev() {
            assert_eq!(w.pop_bottom(), Some(i));
        }
        assert_eq!(w.pop_bottom(), None);
        assert_eq!(s.pop_top(), Steal::Empty);
    }

    #[test]
    fn sequential_spec_with_growth() {
        use std::collections::VecDeque;
        let (w, s) = new_growable::<u64>(4);
        let mut spec: VecDeque<u64> = VecDeque::new();
        let mut x = 0u64;
        let mut rng = 0xACE1u64;
        for _ in 0..20_000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            match rng >> 62 {
                0 | 1 => {
                    w.push_bottom(x);
                    spec.push_back(x);
                    x += 1;
                }
                2 => assert_eq!(w.pop_bottom(), spec.pop_back()),
                _ => assert_eq!(s.pop_top().taken(), spec.pop_front()),
            }
            assert_eq!(w.len_hint(), spec.len());
        }
    }

    #[test]
    fn batch_spans_growth_boundaries() {
        let (w, s) = new_growable::<u64>(4);
        for i in 0..100 {
            w.push_bottom(i);
        }
        // Batches drain in top order across the grown buffer.
        let mut got = vec![];
        loop {
            let b = s.pop_top_batch(8);
            assert!(!b.aborted, "uncontended grab");
            assert_eq!(b.duplicates, 0);
            if b.is_empty() {
                break;
            }
            got.extend(b.tasks);
        }
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(w.pop_bottom(), None);
    }

    #[test]
    fn reset_reclaims_index_space() {
        let (w, _s) = new_growable::<u64>(4);
        // Push/drain cycles never grow the array because bot resets.
        for round in 0..200 {
            w.push_bottom(round);
            w.push_bottom(round + 1);
            assert_eq!(w.pop_bottom(), Some(round + 1));
            assert_eq!(w.pop_bottom(), Some(round));
            assert_eq!(w.pop_bottom(), None);
        }
        assert_eq!(w.capacity(), 4);
    }

    fn concurrent_conservation_with<P: OrderProfile>() {
        use std::sync::atomic::{AtomicBool, AtomicU8};
        const N: usize = 30_000;
        let (w, s) = new_growable_with_order::<u64, P>(8); // tiny: forces many growths
        let counts: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
        let done = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = s.clone();
            let counts = Arc::clone(&counts);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match s.pop_top() {
                    Steal::Taken(v) => {
                        counts[v as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    Steal::Abort => {}
                    Steal::Duplicate => unreachable!("growable ABP is exact: no duplicates"),
                }
            }));
        }
        let mut rng = 0x8badf00du64;
        let mut pushed = 0u64;
        while (pushed as usize) < N {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            if rng % 4 < 3 {
                w.push_bottom(pushed);
                pushed += 1;
            } else if let Some(v) = w.pop_bottom() {
                counts[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        while let Some(v) = w.pop_bottom() {
            counts[v as usize].fetch_add(1, Ordering::Relaxed);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "value {i}");
        }
    }

    #[test]
    fn concurrent_conservation_with_growth() {
        concurrent_conservation_with::<RelaxedProtocol>();
    }

    #[test]
    fn concurrent_conservation_with_growth_seqcst_baseline() {
        concurrent_conservation_with::<SeqCstProtocol>();
    }

    #[test]
    fn initial_capacity_rounds_up() {
        let (w, _s) = new_growable::<u64>(0);
        assert_eq!(w.capacity(), 4);
        let (w, _s) = new_growable::<u64>(100);
        assert_eq!(w.capacity(), 128);
    }
}
