//! The non-blocking ABP deque (Figures 4 and 5 of the paper), on real
//! atomics.
//!
//! The deque is an array `deq` of word-sized entries plus two shared
//! variables: `bot`, the index below the bottom entry, and `age`, a single
//! word holding two fields — `top`, the index of the top entry, and `tag`,
//! a "uniquifier". The owner pushes and pops at the bottom; thieves pop at
//! the top with a `cas` on `age`.
//!
//! The `tag` exists to defeat the ABA scenario of Section 3.3: a thief that
//! reads the top entry and is then preempted could otherwise succeed with
//! its `cas` after the owner has emptied and refilled the deque to the same
//! `top` index, stealing a node that is no longer there. Every time the
//! owner resets `top` to zero it increments the tag, so the sleeping
//! thief's `cas` — which compares the whole `age` word — fails. The paper
//! notes the counter tag can wrap and points at bounded-tags constructions;
//! here `tag` is 32 bits wide and only ever incremented on a bottom-reset,
//! so wrap requires 2³² owner resets to occur while a thief sleeps inside
//! one `popTop` — unreachable in practice (and the instruction-stepped
//! model checker in [`crate::model`] verifies the protocol logic
//! exhaustively at small scope).
//!
//! # Memory orderings
//!
//! The point of the Figure-5 protocol is that the owner's hot path is a
//! handful of plain loads and stores; paying a full fence (`SeqCst`) on
//! each of them squanders it. Every access below names its ordering
//! through an [`OrderProfile`] and cites the protocol invariant that
//! licenses it (the `INV-*` names and the full argument live in
//! [`crate::order`]; DESIGN.md §7 maps them to Figure 4/5 lines). The
//! single deliberate full fence on each side of the §3.3 owner/thief
//! window is `P::owner_fence()` / `P::thief_fence()`. The profile is
//! [`DefaultProtocol`] unless instantiated explicitly via
//! [`new_with_order`] — which is how the `hotpath` benchmarks compare the
//! relaxed protocol against the blanket-SeqCst baseline in one binary —
//! and the `seqcst-fallback` cargo feature flips the default back to
//! all-`SeqCst` so behavioural equivalence can be pinned in CI.
//!
//! The store→load reordering that makes the fence necessary is modeled
//! (and its omission caught) by [`crate::sim_deque::MemModel`] in the
//! exhaustive checker, and the whole protocol re-runs under the
//! linearizability history suite (`tests/atomic_linearizability.rs`) at
//! 3 thieves.
//!
//! This implementation meets the paper's *relaxed semantics* (§3.2): owner
//! operations and successful steals are linearizable; a [`Steal::Abort`]
//! result corresponds to a `popTop` that lost a race and may be retried.
//!
//! # Ownership model
//!
//! [`new`] returns a ([`Worker`], [`Stealer`]) pair. `Worker` is the unique
//! owner handle — it is `Send` but deliberately not `Clone`/`Sync`, which
//! enforces at the type level the paper's "good set of invocations" (no two
//! `pushBottom`/`popBottom` invocations are ever concurrent). `Stealer` is
//! `Clone + Send + Sync` and may be used from any number of processes.

use crate::order::{DefaultProtocol, OrderProfile};
use crate::word::Word;
use std::marker::PhantomData;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;

/// Packed `age` word: tag in the high 32 bits, top in the low 32 bits —
/// the structure of Figure 4, fitting in one atomically-updatable word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct AgeWord {
    tag: u32,
    top: u32,
}

impl AgeWord {
    #[inline]
    fn pack(self) -> u64 {
        ((self.tag as u64) << 32) | self.top as u64
    }

    #[inline]
    fn unpack(w: u64) -> Self {
        AgeWord {
            tag: (w >> 32) as u32,
            top: w as u32,
        }
    }
}

/// Pads a word onto its own cache line. `age` is CAS-hammered by thieves
/// while `bot` is stored by the owner on every push/pop; sharing a line
/// would turn every owner operation into a coherence miss whenever any
/// thief is scanning. 128 bytes covers adjacent-line prefetch pairing on
/// modern x86 as well as plain 64-byte lines.
#[repr(align(128))]
struct Line<T>(T);

struct Inner<T: Word> {
    age: Line<AtomicU64>,
    bot: Line<AtomicU64>,
    deq: Box<[AtomicU64]>,
    _marker: PhantomData<T>,
}

// SAFETY: all shared state is accessed through atomics; T is a plain
// machine word (Word is Copy and round-trips through u64).
unsafe impl<T: Word> Send for Inner<T> {}
unsafe impl<T: Word> Sync for Inner<T> {}

/// Result of a steal attempt ([`Stealer::pop_top`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The top entry was taken.
    Taken(T),
    /// The deque was observed empty (`bot ≤ top`). Under the relaxed
    /// semantics this is a *successful* NIL: the deque really was empty at
    /// some instant during the invocation.
    Empty,
    /// The `cas` failed: another process removed the top entry first. The
    /// deque may well be non-empty; the caller may retry.
    Abort,
    /// The extraction raced an extraction of the *same* item by another
    /// process and lost the once-guard — only multiplicity-relaxed
    /// backends ([`crate::fence_free`]) ever report this; the exact
    /// backends (ABP, growable, locking) never do. The item is owned by
    /// the winner; the caller must not retry *this* item but may retry
    /// the steal.
    Duplicate,
}

impl<T> Steal<T> {
    /// The stolen value, if any.
    pub fn taken(self) -> Option<T> {
        match self {
            Steal::Taken(v) => Some(v),
            _ => None,
        }
    }

    /// True for [`Steal::Abort`].
    pub fn is_abort(&self) -> bool {
        matches!(self, Steal::Abort)
    }

    /// True for [`Steal::Duplicate`].
    pub fn is_duplicate(&self) -> bool {
        matches!(self, Steal::Duplicate)
    }
}

/// Result of a batched steal ([`Stealer::pop_top_batch`] and the
/// [`crate::task_deque::DequeStealer::steal_batch`] seam): up to `max`
/// tasks claimed under one synchronization episode, biased toward half
/// the victim's visible backlog.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StolenBatch<T> {
    /// Claimed tasks in top order (oldest first).
    pub tasks: Vec<T>,
    /// Extraction attempts inside the scanned range that lost a
    /// once-guard race (fence-free backend only; exact backends always
    /// report zero).
    pub duplicates: u64,
    /// True when the grab claimed nothing because it lost a race — the
    /// first `cas` of the ABP/growable claim chain failed, or the
    /// locking deque's `try_lock` was contended. The batch analogue of
    /// [`Steal::Abort`]; never set once any task was claimed.
    pub aborted: bool,
}

impl<T> StolenBatch<T> {
    /// An empty, non-aborted batch (the [`Steal::Empty`] analogue).
    pub fn empty() -> Self {
        StolenBatch {
            tasks: Vec::new(),
            duplicates: 0,
            aborted: false,
        }
    }

    /// Number of tasks claimed.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when no task was claimed.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Resets the batch to empty while keeping the task buffer's
    /// allocation — the caller-side half of the amortization story: a
    /// thief that reuses one `StolenBatch` across grabs pays zero
    /// allocations in steady state.
    pub fn clear(&mut self) {
        self.tasks.clear();
        self.duplicates = 0;
        self.aborted = false;
    }
}

/// The per-grab claim target: up to `max` tasks, biased toward half the
/// visible backlog (`hint` tasks), never less than one — except that a
/// zero cap claims nothing at all (a `max == 0` grab must not be able to
/// remove work). Shared by every backend so the "steal half" bias is
/// identical across the seam.
pub(crate) fn batch_want(hint: usize, max: usize) -> usize {
    if max == 0 {
        return 0;
    }
    max.min(hint.div_ceil(2)).max(1)
}

/// The owner handle: `pushBottom` and `popBottom`.
pub struct Worker<T: Word, P: OrderProfile = DefaultProtocol> {
    inner: Arc<Inner<T>>,
    // !Sync: a Worker must not be shared across processes.
    _not_sync: PhantomData<std::cell::Cell<()>>,
    _order: PhantomData<fn() -> P>,
}

// A Worker may migrate between OS threads (processes are multiplexed), but
// never be used by two at once.
unsafe impl<T: Word, P: OrderProfile> Send for Worker<T, P> {}

/// A thief handle: `popTop`. Freely cloneable and shareable.
pub struct Stealer<T: Word, P: OrderProfile = DefaultProtocol> {
    inner: Arc<Inner<T>>,
    _order: PhantomData<fn() -> P>,
}

impl<T: Word, P: OrderProfile> Clone for Stealer<T, P> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
            _order: PhantomData,
        }
    }
}

/// Creates an ABP deque with space for `capacity` entries, returning the
/// unique owner handle and a cloneable stealer handle.
///
/// ```
/// use abp_deque::{new, Steal};
///
/// let (worker, stealer) = new::<u64>(64);
/// worker.push_bottom(1).unwrap();
/// worker.push_bottom(2).unwrap();
/// // Owner pops LIFO at the bottom; thieves pop FIFO at the top.
/// assert_eq!(worker.pop_bottom(), Some(2));
/// assert_eq!(stealer.pop_top(), Steal::Taken(1));
/// assert_eq!(stealer.pop_top(), Steal::Empty);
/// ```
///
/// `capacity` bounds the *bottom index*, not the instantaneous size: `bot`
/// only resets to zero when the owner observes the deque empty, so a
/// workload where thieves keep the deque non-empty forever can push the
/// index past `capacity`, in which case [`Worker::push_bottom`] reports
/// [`PushError`] instead of overwriting live entries. Size generously.
pub fn new<T: Word>(capacity: usize) -> (Worker<T>, Stealer<T>) {
    new_with_order::<T, DefaultProtocol>(capacity)
}

/// [`new`], but with an explicit [`OrderProfile`] — used by the benchmarks
/// to compare [`crate::order::RelaxedProtocol`] against the blanket-SeqCst
/// baseline ([`crate::order::SeqCstProtocol`]) in the same binary.
pub fn new_with_order<T: Word, P: OrderProfile>(capacity: usize) -> (Worker<T, P>, Stealer<T, P>) {
    assert!(capacity >= 1 && capacity <= u32::MAX as usize);
    let deq = (0..capacity).map(|_| AtomicU64::new(0)).collect();
    let inner = Arc::new(Inner {
        age: Line(AtomicU64::new(AgeWord { tag: 0, top: 0 }.pack())),
        bot: Line(AtomicU64::new(0)),
        deq,
        _marker: PhantomData,
    });
    (
        Worker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
            _order: PhantomData,
        },
        Stealer {
            inner,
            _order: PhantomData,
        },
    )
}

/// The deque's bottom index reached the end of the backing array; the push
/// did not happen and the value is handed back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PushError<T>(pub T);

impl<T: Word, P: OrderProfile> Worker<T, P> {
    /// `pushBottom` (Figure 5): store the node at `deq[bot]` and advance
    /// `bot`. Owner-only; never blocks, never fails except on array
    /// exhaustion.
    pub fn push_bottom(&self, node: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        // 1: load localBot <- bot. Relaxed: the owner is the sole writer
        // of bot, so coherence alone yields its own latest value
        // [INV-OWNER].
        let local_bot = inner.bot.0.load(P::RELAXED);
        if local_bot as usize >= inner.deq.len() {
            return Err(PushError(node));
        }
        // 2: store node -> deq[localBot]. Relaxed: published by the
        // Release store of bot below [INV-PUSH]; a thief that reads the
        // slot without having acquired that bot has its value rejected by
        // the tag cas [INV-TAG].
        inner.deq[local_bot as usize].store(node.to_word(), P::RELAXED);
        // 3-4: store localBot + 1 -> bot. Release: a thief that
        // Acquire-loads the advanced bot also observes the slot contents
        // [INV-PUSH].
        inner.bot.0.store(local_bot + 1, P::RELEASE);
        Ok(())
    }

    /// `popBottom` (Figure 5): claim the bottom entry, then reconcile with
    /// thieves through `age` if the deque looked empty or nearly so.
    pub fn pop_bottom(&self) -> Option<T> {
        let inner = &*self.inner;
        // 1: load localBot <- bot. Relaxed: owner is bot's sole writer
        // [INV-OWNER].
        let local_bot = inner.bot.0.load(P::RELAXED);
        // 2-3: empty deque.
        if local_bot == 0 {
            return None;
        }
        // 4-5: localBot -= 1; store localBot -> bot. Relaxed: the claim
        // only *decides* anything at the fence below [INV-FENCE], and a
        // shrinking bot publishes no data [INV-PUSH is about pushes].
        let local_bot = local_bot - 1;
        inner.bot.0.store(local_bot, P::RELAXED);
        // The §3.3 owner/thief race window: the claim store must be
        // globally ordered before the age load, or a thief (whose
        // symmetric fence sits between its age and bot loads) and the
        // owner could both observe the pre-race state and take the same
        // entry — the store-buffering outcome [INV-FENCE]. This is the
        // one full fence the owner ever pays.
        P::owner_fence();
        // 6: load node <- deq[localBot]. Relaxed: the owner wrote this
        // slot itself [INV-OWNER].
        let node = T::from_word(inner.deq[local_bot as usize].load(P::RELAXED));
        // 7: load oldAge <- age. Acquire: ordered after the claim store by
        // the fence [INV-FENCE]; synchronizes with the Release half of any
        // observed steal cas, so the slot rewrites that follow a reset
        // cannot be read by that thief's earlier slot read [INV-STEAL-HB].
        let old_age = AgeWord::unpack(inner.age.0.load(P::ACQUIRE));
        // 8-9: plenty of entries left: the claimed one is ours.
        if local_bot > old_age.top as u64 {
            return Some(node);
        }
        // 10: the deque is now empty or we are racing thieves for the last
        // entry. Reset bot. Relaxed: published by the Release age reset
        // below — a thief that observes the new age also observes bot = 0
        // [INV-RESET].
        inner.bot.0.store(0, P::RELAXED);
        // 11-12: fresh age: top = 0, bumped tag.
        let new_age = AgeWord {
            tag: old_age.tag.wrapping_add(1),
            top: 0,
        };
        // 13-16: race for the last entry. Success AcqRel: Release
        // publishes the bot reset [INV-RESET] (the last-entry race itself
        // is arbitrated by per-location cas atomicity on age). Failure
        // Acquire: the failure load reads the winning thief's Release cas,
        // and the owner goes on to reset and reuse low slots
        // [INV-STEAL-HB].
        if local_bot == old_age.top as u64
            && inner
                .age
                .0
                .compare_exchange(
                    old_age.pack(),
                    new_age.pack(),
                    P::RESET_CAS,
                    P::RESET_CAS_FAIL,
                )
                .is_ok()
        {
            return Some(node);
        }
        // 17-18: a thief won (or the deque was already empty): publish the
        // reset age and give up. Release: publishes bot = 0 [INV-RESET].
        // Only the owner ever *stores* age directly, so this cannot
        // clobber a concurrent thief update beyond what the algorithm
        // intends.
        inner.age.0.store(new_age.pack(), P::RELEASE);
        None
    }

    /// Observed size (`bot - top`), for diagnostics/heuristics only — it is
    /// immediately stale under concurrency.
    pub fn len_hint(&self) -> usize {
        len_hint(&self.inner)
    }

    /// Creates another stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T, P> {
        Stealer {
            inner: Arc::clone(&self.inner),
            _order: PhantomData,
        }
    }
}

impl<T: Word, P: OrderProfile> Stealer<T, P> {
    /// `popTop` (Figure 5): read `age` and `bot`, and if the deque is
    /// non-empty try to advance `top` with a `cas` on the whole age word.
    pub fn pop_top(&self) -> Steal<T> {
        let inner = &*self.inner;
        // 1: load oldAge <- age. Acquire: a thief that observes a reset
        // age must also observe bot = 0 (pairs with the owner's Release
        // reset) instead of acting on a stale large bot [INV-RESET].
        let old_age = AgeWord::unpack(inner.age.0.load(P::ACQUIRE));
        // The thief half of the §3.3 window: the age load must be
        // globally ordered before the bot load, mirroring the owner's
        // fence between its claim store and age load [INV-FENCE].
        P::thief_fence();
        // 2: load localBot <- bot. Acquire: pairs with pushBottom's
        // Release so the slot store below bot is visible [INV-PUSH].
        let local_bot = inner.bot.0.load(P::ACQUIRE);
        // 3-4: empty.
        if local_bot <= old_age.top as u64 {
            return Steal::Empty;
        }
        // 5: read the top entry *before* the cas; a successful cas
        // validates that this read saw the live value (the tag makes a
        // stale read impossible to validate [INV-TAG]), so Relaxed
        // suffices here.
        let node = T::from_word(inner.deq[old_age.top as usize].load(P::RELAXED));
        // 6-7: newAge = oldAge with top + 1.
        let new_age = AgeWord {
            tag: old_age.tag,
            top: old_age.top + 1,
        };
        // 8-10: the cas; success means we own the entry. SeqCst (not
        // AcqRel): the successful steal must enter the single total order
        // so a third agent's fence-separated loads cannot observe it while
        // the owner's post-fence age load misses it — see the three-agent
        // argument in [`crate::order`] [INV-FENCE]; its Release half also
        // keeps the slot read above ordered before the epoch can advance
        // [INV-STEAL-HB]. Failure Relaxed: the attempt is abandoned.
        if inner
            .age
            .0
            .compare_exchange(
                old_age.pack(),
                new_age.pack(),
                P::STEAL_CAS,
                P::STEAL_CAS_FAIL,
            )
            .is_ok()
        {
            return Steal::Taken(node);
        }
        // 11: contention: someone else took it.
        Steal::Abort
    }

    /// Batched `popTop`: claim up to `max` entries (biased toward half
    /// the visible backlog) as a chain of single-slot `cas`es on `age`,
    /// re-running the steal preamble between claims.
    ///
    /// Why a chain and not one `cas` of `{tag, top} -> {tag, top + k}`
    /// (INV-SB-CHAIN): the owner's `popBottom` keep path removes entries
    /// at indices *strictly above* `top` without ever touching `age`, so
    /// a range claim could succeed after the owner has already taken
    /// entries inside `[top + 1, top + k)` — a double take the age word
    /// cannot detect. Only the entry *at* `top` is arbitrated (the
    /// owner's last-entry reset bumps the tag), so each claim must
    /// advance `top` by exactly one.
    ///
    /// Why the preamble must be re-run per claim (INV-SB-REVAL): the
    /// same keep path makes a `bot` bound loaded once at grab start go
    /// stale *mid-chain*. With `top = 0`, `bot = 4`, a thief that loads
    /// `bot = 4` and plans two claims races an owner that keep-pops
    /// indices 3, 2, 1 (never touching `age`): the thief's second `cas`
    /// `{g,1} -> {g,2}` still succeeds — `age` never changed — and index
    /// 1 runs twice. The single steal is immune because every episode
    /// reloads `bot` after observing `age`, with the thief fence in
    /// between [INV-FENCE]; so after every successful claim `cas` (a
    /// SeqCst rmw, which is this claim's `age` observation) the chain
    /// re-runs exactly that preamble — `thief_fence()` then an Acquire
    /// reload of `bot` — and stops when `bot <= top`. The store-buffering
    /// argument then applies per claim: either the owner's post-fence
    /// `age` load sees our `cas` and backs off through the reset path,
    /// or our `bot` reload sees the owner's claim and the chain stops.
    /// Each claim keeps the single-steal invariants — the slot read is
    /// validated by the full-word `cas` [INV-TAG], and every claimed
    /// index lies below a `bot` bound loaded *after* the `age` value the
    /// `cas` validated [INV-PUSH].
    ///
    /// The fence is therefore *not* amortized — a grab of `k` pays `k`
    /// fences and `k` `bot` loads, like `k` single steals. What the
    /// batch still amortizes: the `age` load (each claim's `cas` doubles
    /// as the next claim's `age` observation), the per-task allocation
    /// (one reused buffer), and — the dominant term in the runtime — the
    /// victim scan, sleeper wake, and cross-pool migration round-trips.
    pub fn pop_top_batch(&self, max: usize) -> StolenBatch<T> {
        let mut out = StolenBatch::empty();
        self.pop_top_batch_into(max, &mut out);
        out
    }

    /// [`pop_top_batch`](Stealer::pop_top_batch) into a caller-owned
    /// buffer: `out` is cleared and refilled, so a reused buffer makes
    /// the grab allocation-free in steady state.
    pub fn pop_top_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        out.clear();
        let inner = &*self.inner;
        // Entry sequence of `pop_top`, paid once for the whole grab
        // [INV-RESET, INV-FENCE, INV-PUSH].
        let mut age = AgeWord::unpack(inner.age.0.load(P::ACQUIRE));
        P::thief_fence();
        let mut bot = inner.bot.0.load(P::ACQUIRE);
        if bot <= age.top as u64 {
            return;
        }
        let avail = (bot - age.top as u64) as usize;
        let want = batch_want(avail, max);
        out.tasks.reserve(want);
        while out.tasks.len() < want {
            // Slot read before the cas, validated by it [INV-TAG].
            let node = T::from_word(inner.deq[age.top as usize].load(P::RELAXED));
            let new_age = AgeWord {
                tag: age.tag,
                top: age.top + 1,
            };
            // Same orderings as the single steal [INV-FENCE,
            // INV-STEAL-HB]; the first failure aborts the grab, later
            // failures just end it (the claimed prefix is ours).
            match inner.age.0.compare_exchange(
                age.pack(),
                new_age.pack(),
                P::STEAL_CAS,
                P::STEAL_CAS_FAIL,
            ) {
                Ok(_) => {
                    out.tasks.push(node);
                    age = new_age;
                    if out.tasks.len() == want {
                        break;
                    }
                    // INV-SB-REVAL: re-run the steal preamble before the
                    // next claim — the owner's keep path may have drained
                    // past our stale bound without touching `age`.
                    P::thief_fence();
                    bot = inner.bot.0.load(P::ACQUIRE);
                    if bot <= age.top as u64 {
                        break;
                    }
                }
                Err(_) => {
                    out.aborted = out.tasks.is_empty();
                    break;
                }
            }
        }
    }

    /// Observed size; immediately stale under concurrency.
    pub fn len_hint(&self) -> usize {
        len_hint(&self.inner)
    }
}

fn len_hint<T: Word>(inner: &Inner<T>) -> usize {
    // Diagnostic only: Relaxed reads of both words; the answer is stale
    // the instant it is produced regardless of ordering.
    let age = AgeWord::unpack(inner.age.0.load(std::sync::atomic::Ordering::Relaxed));
    let bot = inner.bot.0.load(std::sync::atomic::Ordering::Relaxed);
    bot.saturating_sub(age.top as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::order::{RelaxedProtocol, SeqCstProtocol};
    use std::sync::atomic::Ordering;

    #[test]
    fn age_word_packs_losslessly() {
        for &(tag, top) in &[(0, 0), (1, 0), (0, 1), (u32::MAX, u32::MAX), (7, 42)] {
            let a = AgeWord { tag, top };
            assert_eq!(AgeWord::unpack(a.pack()), a);
        }
    }

    #[test]
    fn age_and_bot_live_on_separate_cache_lines() {
        let (w, _s) = new::<u64>(4);
        let inner = &*w.inner;
        let age = &inner.age.0 as *const _ as usize;
        let bot = &inner.bot.0 as *const _ as usize;
        assert_eq!(age % 128, 0);
        assert_eq!(bot % 128, 0);
        assert!(age.abs_diff(bot) >= 128);
    }

    #[test]
    fn lifo_for_owner() {
        let (w, _s) = new::<u64>(64);
        for i in 0..10 {
            w.push_bottom(i).unwrap();
        }
        for i in (0..10).rev() {
            assert_eq!(w.pop_bottom(), Some(i));
        }
        assert_eq!(w.pop_bottom(), None);
    }

    #[test]
    fn fifo_for_thief() {
        let (w, s) = new::<u64>(64);
        for i in 0..10 {
            w.push_bottom(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(s.pop_top(), Steal::Taken(i));
        }
        assert_eq!(s.pop_top(), Steal::Empty);
    }

    fn mixed_sequential_matches_spec_with<P: OrderProfile>() {
        // Sequentially interleaved owner/thief ops must agree with a
        // VecDeque specification exactly — under both order profiles.
        use std::collections::VecDeque;
        // bot only resets when the owner drains the deque, so capacity
        // must cover the total number of pushes in the worst case.
        let (w, s) = new_with_order::<u64, P>(10_001);
        let mut spec: VecDeque<u64> = VecDeque::new();
        let mut x = 0u64;
        let mut rng = 0x12345678u64;
        for _ in 0..10_000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            match rng >> 62 {
                0 | 1 => {
                    w.push_bottom(x).unwrap();
                    spec.push_back(x);
                    x += 1;
                }
                2 => {
                    let got = w.pop_bottom();
                    assert_eq!(got, spec.pop_back());
                }
                _ => {
                    let got = s.pop_top().taken();
                    assert_eq!(got, spec.pop_front());
                }
            }
        }
    }

    #[test]
    fn mixed_sequential_matches_spec() {
        mixed_sequential_matches_spec_with::<RelaxedProtocol>();
        mixed_sequential_matches_spec_with::<SeqCstProtocol>();
    }

    #[test]
    fn empty_reset_reuses_space() {
        // Popping to empty resets bot, so capacity is not consumed by
        // balanced push/pop traffic.
        let (w, _s) = new::<u64>(4);
        for round in 0..100 {
            w.push_bottom(round).unwrap();
            w.push_bottom(round + 1).unwrap();
            assert_eq!(w.pop_bottom(), Some(round + 1));
            assert_eq!(w.pop_bottom(), Some(round));
            assert_eq!(w.pop_bottom(), None);
        }
    }

    #[test]
    fn push_overflow_reports() {
        let (w, s) = new::<u64>(4);
        for i in 0..4 {
            w.push_bottom(i).unwrap();
        }
        assert_eq!(w.push_bottom(99), Err(PushError(99)));
        // Stealing does NOT free space at the bottom...
        assert_eq!(s.pop_top(), Steal::Taken(0));
        assert_eq!(w.push_bottom(99), Err(PushError(99)));
        // ...but draining to empty resets the indices.
        while w.pop_bottom().is_some() {}
        assert_eq!(w.push_bottom(1), Ok(()));
    }

    #[test]
    fn steal_empty_vs_taken_transitions() {
        let (w, s) = new::<u64>(8);
        assert_eq!(s.pop_top(), Steal::Empty);
        w.push_bottom(5).unwrap();
        assert_eq!(s.pop_top(), Steal::Taken(5));
        assert_eq!(s.pop_top(), Steal::Empty);
        assert_eq!(w.pop_bottom(), None);
        // After the owner saw empty, the structure is reset and reusable.
        w.push_bottom(6).unwrap();
        assert_eq!(s.pop_top(), Steal::Taken(6));
    }

    #[test]
    fn len_hint_tracks_sequential_size() {
        let (w, s) = new::<u64>(32);
        assert_eq!(w.len_hint(), 0);
        for i in 0..5 {
            w.push_bottom(i).unwrap();
        }
        assert_eq!(w.len_hint(), 5);
        s.pop_top();
        assert_eq!(s.len_hint(), 4);
        w.pop_bottom();
        assert_eq!(w.len_hint(), 3);
    }

    #[test]
    fn batch_claims_half_the_backlog_in_top_order() {
        let (w, s) = new::<u64>(64);
        for i in 0..8 {
            w.push_bottom(i).unwrap();
        }
        // Half of 8 visible entries, capped by max.
        let b = s.pop_top_batch(16);
        assert_eq!(b.tasks, vec![0, 1, 2, 3]);
        assert_eq!(b.duplicates, 0);
        assert!(!b.aborted);
        // max caps below the half-backlog bias.
        let b = s.pop_top_batch(2);
        assert_eq!(b.tasks, vec![4, 5]);
        // Remaining entries drain; an empty deque yields an empty,
        // non-aborted batch.
        assert_eq!(s.pop_top_batch(16).tasks, vec![6]);
        assert_eq!(s.pop_top_batch(16).tasks, vec![7]);
        let b = s.pop_top_batch(16);
        assert!(b.is_empty() && !b.aborted);
    }

    #[test]
    fn batch_with_zero_cap_claims_nothing() {
        // A zero-cap grab must not be able to remove work: batch_want's
        // `.max(1)` floor only applies once max >= 1.
        assert_eq!(batch_want(5, 0), 0);
        assert_eq!(batch_want(0, 0), 0);
        assert_eq!(batch_want(1, 1), 1);
        let (w, s) = new::<u64>(8);
        w.push_bottom(7).unwrap();
        let b = s.pop_top_batch(0);
        assert!(b.is_empty() && !b.aborted);
        assert_eq!(w.pop_bottom(), Some(7));
    }

    #[test]
    fn batch_interleaves_with_owner_pops_without_loss() {
        // Seeded sequential mix of owner ops and batched steals must
        // conserve every value exactly once.
        let (w, s) = new::<u64>(4096);
        let mut rng = 0xBA7C4u64;
        let mut next = 0u64;
        let mut seen = vec![];
        for _ in 0..4000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            match rng >> 62 {
                0 | 1 => {
                    if w.push_bottom(next).is_ok() {
                        next += 1;
                    }
                }
                2 => {
                    if let Some(v) = w.pop_bottom() {
                        seen.push(v);
                    }
                }
                _ => {
                    let b = s.pop_top_batch(1 + (rng % 7) as usize);
                    assert_eq!(b.duplicates, 0, "ABP is exact");
                    seen.extend(b.tasks);
                }
            }
        }
        while let Some(v) = w.pop_bottom() {
            seen.push(v);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..next).collect::<Vec<_>>());
    }

    fn concurrent_conservation_with<P: OrderProfile>() {
        // Every pushed value is consumed exactly once across the owner and
        // 3 thieves. Runs even on a single core: preemption provides the
        // interleaving.
        use std::sync::atomic::{AtomicBool, AtomicU8};
        const N: usize = 20_000;
        let (w, s) = new_with_order::<u64, P>(N + 1);
        let counts: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
        let done = Arc::new(AtomicBool::new(false));

        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = s.clone();
            let counts = Arc::clone(&counts);
            let done = Arc::clone(&done);
            handles.push(std::thread::spawn(move || loop {
                match s.pop_top() {
                    Steal::Taken(v) => {
                        counts[v as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    Steal::Empty => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    Steal::Abort => {}
                    Steal::Duplicate => unreachable!("ABP is exact: no duplicates"),
                }
            }));
        }

        // Owner: push everything, popping now and then.
        let mut pushed = 0u64;
        let mut rng = 0xdeadbeefu64;
        while (pushed as usize) < N {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            if rng % 4 < 3 {
                w.push_bottom(pushed).unwrap();
                pushed += 1;
            } else if let Some(v) = w.pop_bottom() {
                counts[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        // Drain what remains.
        while let Some(v) = w.pop_bottom() {
            counts[v as usize].fetch_add(1, Ordering::Relaxed);
        }
        done.store(true, Ordering::Release);
        for h in handles {
            h.join().unwrap();
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "value {i} consumed wrong number of times"
            );
        }
    }

    #[test]
    fn concurrent_owner_and_thieves_conserve_items() {
        concurrent_conservation_with::<RelaxedProtocol>();
    }

    fn batch_chain_vs_owner_keep_path_conserves_with<P: OrderProfile>() {
        // Regression for the stale-`bot` chain race: a thief whose batch
        // grab reused the `bot` loaded at the start of the chain could
        // claim an index the owner's keep-path `pop_bottom` (which never
        // touches `age`) had already returned — a double take. The owner
        // churns shallow bursts (push 2–7, drain flat out), so its
        // keep-path pops constantly overlap thieves' chains with the
        // backlog inside the claimed range — the window the deep-burst
        // tests almost never open.
        use std::sync::atomic::{AtomicBool, AtomicU8};
        const N: usize = 300_000;
        let (w, s) = new_with_order::<u64, P>(64);
        let counts: Arc<Vec<AtomicU8>> = Arc::new((0..N).map(|_| AtomicU8::new(0)).collect());
        let done = Arc::new(AtomicBool::new(false));
        let mut thieves = Vec::new();
        for t in 0..2u64 {
            let s = s.clone();
            let counts = Arc::clone(&counts);
            let done = Arc::clone(&done);
            thieves.push(std::thread::spawn(move || {
                let mut buf = StolenBatch::empty();
                let mut max = 2 + t as usize;
                loop {
                    s.pop_top_batch_into(max, &mut buf);
                    // Grab sizes 2..=6, cycling so chains of every length
                    // race the owner's drains.
                    max = 2 + (max + t as usize) % 5;
                    assert_eq!(buf.duplicates, 0, "ABP is exact");
                    for &v in &buf.tasks {
                        counts[v as usize].fetch_add(1, Ordering::Relaxed);
                    }
                    if buf.is_empty() && !buf.aborted {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        let mut next = 0u64;
        let mut rng = 0x6EE9_F00Du64;
        while (next as usize) < N {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            let burst = (2 + rng % 6).min(N as u64 - next);
            for _ in 0..burst {
                w.push_bottom(next).unwrap();
                next += 1;
            }
            // Keep-path pops racing the thieves' chains.
            while let Some(v) = w.pop_bottom() {
                counts[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        }
        done.store(true, Ordering::Release);
        for th in thieves {
            th.join().unwrap();
        }
        for (i, c) in counts.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "value {i} consumed wrong number of times"
            );
        }
    }

    #[test]
    fn batch_chain_vs_owner_keep_path_conserves() {
        batch_chain_vs_owner_keep_path_conserves_with::<RelaxedProtocol>();
    }

    #[test]
    fn batch_chain_vs_owner_keep_path_conserves_seqcst_baseline() {
        batch_chain_vs_owner_keep_path_conserves_with::<SeqCstProtocol>();
    }

    #[test]
    fn concurrent_owner_and_thieves_conserve_items_seqcst_baseline() {
        concurrent_conservation_with::<SeqCstProtocol>();
    }
}
