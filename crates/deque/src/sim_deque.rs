//! An instruction-stepped execution of the Figure-5 deque pseudocode.
//!
//! The simulator in `abp-sim` executes the scheduling loop one
//! *instruction* at a time so that the kernel adversary can preempt a
//! process in the middle of a deque operation — which is precisely where
//! the interesting behaviour lives (the §3.3 ABA scenario happens to a
//! thief preempted between reading the top entry and its `cas`). This
//! module provides the same three methods as [`crate::atomic`], but with
//! every shared-memory access (`load`, `store`, `cas`) surfaced as an
//! explicit step.
//!
//! The element type is a bare `u64` (the simulator stores node ids). The
//! backing array grows on demand, modeling the paper's "big enough" array.
//!
//! Setting `tagged = false` builds the *broken* variant the paper warns
//! about — `popBottom`'s reset does not change the tag — which the model
//! checker in [`crate::model`] and a directed test below both catch.
//!
//! [`MemModel`] extends the same idea to *memory-ordering* bugs: the
//! default model executes each instruction sequentially consistently, but
//! the two reordered variants re-introduce, at small scope, exactly the
//! reorderings the relaxed protocol in [`crate::atomic`] must forbid —
//! the owner's claim store sinking below its `age` load (what the
//! `SeqCst` fence in `popBottom` prevents) and the thief loading `bot`
//! before `age` (what the thief-side ordering prevents). Both broken
//! variants are caught by the exhaustive checker; see
//! [`crate::order`]'s INV-FENCE.

/// The `age` structure: `top` plus the uniquifier `tag` (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimAge {
    pub tag: u64,
    pub top: u64,
}

/// Which instruction-level reordering the stepped execution models.
///
/// The default is sequential consistency per instruction. The other two
/// variants each surface one hardware/compiler reordering that the
/// relaxed protocol of [`crate::atomic`] must — and does — forbid
/// (INV-FENCE in [`crate::order`]); running the model checker over them
/// demonstrates the *necessity* of the fence/ordering, the same way
/// `tagged = false` demonstrates the necessity of the tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MemModel {
    /// Every instruction takes effect in program order (the baseline the
    /// Figure-5 pseudocode assumes).
    #[default]
    SeqCst,
    /// `popBottom`'s claim store (`bot -= 1`) stays in the owner's store
    /// buffer until just after its `age` load — the TSO store→load
    /// reordering that omitting the owner-side `SeqCst` fence would
    /// allow. (On TSO the buffer must drain at the first RMW, so draining
    /// immediately after the load is the maximal harmful delay.)
    OwnerStoreLoadReordered,
    /// `popTop` loads `bot` *before* `age` — the load→load reordering
    /// that omitting the thief-side ordering between the two loads would
    /// allow.
    ThiefLoadLoadReordered,
}

/// Shared-memory state of one simulated deque.
#[derive(Debug, Clone)]
pub struct SimDeque {
    age: SimAge,
    bot: u64,
    deq: Vec<u64>,
    tagged: bool,
    mem_model: MemModel,
    /// `Some(cap)` models a bounded backing array that the owner grows
    /// (doubles) when `pushBottom` finds it full, like
    /// [`crate::growable`]; `None` (the default) is the paper's
    /// "big enough" array, which simply resizes on demand with no
    /// observable growth event.
    cap: Option<usize>,
    /// In growth mode: whether growing copies the live region into the
    /// new buffer (the faithful [`crate::growable`] protocol) or
    /// publishes a fresh zeroed buffer (a deliberately broken variant
    /// for the model checker to catch).
    copy_on_grow: bool,
    growths: u64,
}

/// Result of a simulated `popTop`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimSteal {
    Taken(u64),
    /// NIL because the deque was observed empty.
    Empty,
    /// NIL because the `cas` lost a race.
    Abort,
    /// NIL because the extraction lost a multiplicity once-guard — only
    /// histories recorded from the guarded fence-free backend carry
    /// this; the exact ABP protocol never produces it.
    Duplicate,
}

impl SimSteal {
    pub fn taken(self) -> Option<u64> {
        match self {
            SimSteal::Taken(v) => Some(v),
            _ => None,
        }
    }
}

impl SimDeque {
    /// An empty deque with the tag mechanism enabled (the correct
    /// algorithm).
    pub fn new() -> Self {
        Self::with_tagging(true)
    }

    /// An empty deque; `tagged = false` reproduces the ABA-vulnerable
    /// variant of §3.3.
    pub fn with_tagging(tagged: bool) -> Self {
        SimDeque {
            age: SimAge { tag: 0, top: 0 },
            bot: 0,
            deq: Vec::new(),
            tagged,
            mem_model: MemModel::SeqCst,
            cap: None,
            copy_on_grow: true,
            growths: 0,
        }
    }

    /// Selects the [`MemModel`] the stepped execution follows (builder
    /// style; the default is [`MemModel::SeqCst`]).
    pub fn with_mem_model(mut self, mem_model: MemModel) -> Self {
        self.mem_model = mem_model;
        self
    }

    /// The memory model this deque executes under.
    pub fn mem_model(&self) -> MemModel {
        self.mem_model
    }

    /// An empty deque with a *bounded* backing array of `cap` slots that
    /// the owner doubles when `pushBottom` finds it full, modeling the
    /// growable deque of [`crate::growable`]. The growth happens inside
    /// `pushBottom`'s slot-store instruction (publish-then-store, one
    /// shared-memory step), so thieves can observe the new buffer between
    /// their own instructions. `copy_on_grow = false` builds the broken
    /// variant whose growth forgets to copy the live region — the model
    /// checker catches it racing a concurrent `popTop`.
    ///
    /// Default-constructed deques ([`SimDeque::new`] /
    /// [`SimDeque::with_tagging`]) never take these paths, and growth
    /// adds no extra instructions, so [`MAX_OP_STEPS`] and the default
    /// step-for-step behaviour are unchanged.
    pub fn with_growth(tagged: bool, cap: usize, copy_on_grow: bool) -> Self {
        let cap = cap.max(1);
        SimDeque {
            age: SimAge { tag: 0, top: 0 },
            bot: 0,
            deq: vec![0; cap],
            tagged,
            mem_model: MemModel::SeqCst,
            cap: Some(cap),
            copy_on_grow,
            growths: 0,
        }
    }

    /// Number of growth events so far (growth mode only).
    pub fn growths(&self) -> u64 {
        self.growths
    }

    /// Grows the bounded backing array to twice its capacity. Faithful
    /// growth copies the old contents (buffers in [`crate::growable`]
    /// are immutable once superseded, so copying is equivalent to a
    /// thief finishing its read from the retired buffer); the broken
    /// variant publishes a fresh zeroed buffer.
    fn grow(&mut self) {
        let cap = self.cap.expect("grow only in bounded mode");
        let new_cap = cap * 2;
        if self.copy_on_grow {
            self.deq.resize(new_cap, 0);
        } else {
            self.deq = vec![0; new_cap];
        }
        self.cap = Some(new_cap);
        self.growths += 1;
    }

    /// Observed size (for invariant checks between operations).
    pub fn len(&self) -> usize {
        self.bot.saturating_sub(self.age.top) as usize
    }

    /// True if observed empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The current age word.
    pub fn age(&self) -> SimAge {
        self.age
    }

    /// The current bottom index.
    pub fn bot(&self) -> u64 {
        self.bot
    }

    /// Contents from top to bottom (for invariant checks between
    /// operations; meaningless while an owner op is mid-flight).
    pub fn contents(&self) -> Vec<u64> {
        (self.age.top..self.bot)
            .map(|i| self.deq[i as usize])
            .collect()
    }

    fn store_slot(&mut self, idx: u64, v: u64) {
        let idx = idx as usize;
        if idx >= self.deq.len() {
            self.deq.resize(idx + 1, 0);
        }
        self.deq[idx] = v;
    }

    fn load_slot(&self, idx: u64) -> u64 {
        self.deq.get(idx as usize).copied().unwrap_or(0)
    }

    /// One atomic `cas` on the age word.
    fn cas_age(&mut self, old: SimAge, new: SimAge) -> bool {
        if self.age == old {
            self.age = new;
            true
        } else {
            false
        }
    }
}

impl Default for SimDeque {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a simulated batched `popTop` — the stepped analogue of
/// [`crate::StolenBatch`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SimBatch {
    /// Claimed tasks in top order (oldest first).
    pub tasks: Vec<u64>,
    /// True when the grab claimed nothing because its first `cas` lost.
    pub aborted: bool,
}

/// What a single instruction step produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The operation needs more steps.
    Continue,
    /// `pushBottom` finished.
    PushDone,
    /// `popBottom` finished with this result.
    PopBottomDone(Option<u64>),
    /// `popTop` finished with this result.
    PopTopDone(SimSteal),
    /// `popTopBatch` finished with this result.
    PopTopBatchDone(SimBatch),
}

impl StepOutcome {
    /// True unless `Continue`.
    pub fn is_done(&self) -> bool {
        !matches!(self, StepOutcome::Continue)
    }
}

/// An in-flight deque operation: local registers plus a program counter.
/// Each [`DequeOp::step`] executes exactly one instruction against the
/// shared deque.
///
/// ```
/// use abp_deque::{DequeOp, SimDeque, StepOutcome};
///
/// let mut d = SimDeque::new();
/// let mut op = DequeOp::push_bottom(7);
/// assert_eq!(op.step(&mut d), StepOutcome::Continue); // load bot
/// assert_eq!(op.step(&mut d), StepOutcome::Continue); // store slot
/// assert_eq!(op.step(&mut d), StepOutcome::PushDone); // store bot
/// assert_eq!(d.contents(), vec![7]);
/// ```
#[derive(Debug, Clone)]
pub enum DequeOp {
    /// Figure 5 `pushBottom`: 3 shared-memory instructions.
    PushBottom { v: u64, pc: u8, local_bot: u64 },
    /// Figure 5 `popBottom`: up to 7 instructions.
    PopBottom {
        pc: u8,
        local_bot: u64,
        node: u64,
        old_age: SimAge,
    },
    /// Figure 5 `popTop`: up to 4 instructions.
    PopTop {
        pc: u8,
        old_age: SimAge,
        node: u64,
        local_bot: u64,
    },
    /// Batched `popTop` as in [`crate::atomic::Stealer::pop_top_batch`]:
    /// a chain of single-slot `cas`es on `age`. `revalidate = true`
    /// re-runs the steal preamble — a `bot` reload — after every
    /// successful claim and stops when `bot <= top` (INV-SB-REVAL, the
    /// shipped protocol); `revalidate = false` is the *broken* chain
    /// that reuses the `bot` loaded once at grab start, which the
    /// owner's keep-path `popBottom` can silently invalidate — a
    /// double take the exhaustive checker in [`crate::model`] and a
    /// directed test both catch, the same way `tagged = false`
    /// demonstrates the necessity of the tag.
    ///
    /// The op always steps sequentially consistently (the runtime's
    /// claims are `SeqCst` rmws and its revalidation is a fence plus an
    /// Acquire load, so the SC stepping is the faithful model); the
    /// [`MemModel`] variants only reorder the single-steal ops. A grab
    /// of `k` tasks takes `2 + 2k` (unrevalidated) or up to `3k + 1`
    /// (revalidated) instructions, so this op is *not* covered by
    /// [`MAX_OP_STEPS`] — the scheduling simulator models batching at
    /// the pool level and never issues it.
    PopTopBatch {
        max: usize,
        revalidate: bool,
        pc: u8,
        old_age: SimAge,
        local_bot: u64,
        want: usize,
        node: u64,
        tasks: Vec<u64>,
    },
}

impl DequeOp {
    /// Starts a `pushBottom(v)`.
    pub fn push_bottom(v: u64) -> Self {
        DequeOp::PushBottom {
            v,
            pc: 0,
            local_bot: 0,
        }
    }

    /// Starts a `popBottom()`.
    pub fn pop_bottom() -> Self {
        DequeOp::PopBottom {
            pc: 0,
            local_bot: 0,
            node: 0,
            old_age: SimAge { tag: 0, top: 0 },
        }
    }

    /// Starts a `popTop()`.
    pub fn pop_top() -> Self {
        DequeOp::PopTop {
            pc: 0,
            old_age: SimAge { tag: 0, top: 0 },
            node: 0,
            local_bot: 0,
        }
    }

    /// Starts a batched `popTop(max)`; `revalidate` selects the shipped
    /// per-claim preamble re-run or the broken stale-`bot` chain (see
    /// [`DequeOp::PopTopBatch`]).
    pub fn pop_top_batch(max: usize, revalidate: bool) -> Self {
        DequeOp::PopTopBatch {
            max,
            revalidate,
            pc: 0,
            old_age: SimAge { tag: 0, top: 0 },
            local_bot: 0,
            want: 0,
            node: 0,
            tasks: Vec::new(),
        }
    }

    /// Executes one instruction of this operation against `d`.
    pub fn step(&mut self, d: &mut SimDeque) -> StepOutcome {
        match self {
            DequeOp::PushBottom { v, pc, local_bot } => match pc {
                0 => {
                    // load localBot <- bot
                    *local_bot = d.bot;
                    *pc = 1;
                    StepOutcome::Continue
                }
                1 => {
                    // Bounded mode: a full array is grown (and published)
                    // in the same shared-memory step as the slot store.
                    if let Some(cap) = d.cap {
                        if *local_bot as usize >= cap {
                            d.grow();
                        }
                    }
                    // store node -> deq[localBot]
                    d.store_slot(*local_bot, *v);
                    *pc = 2;
                    StepOutcome::Continue
                }
                _ => {
                    // store localBot + 1 -> bot
                    d.bot = *local_bot + 1;
                    StepOutcome::PushDone
                }
            },
            DequeOp::PopBottom {
                pc,
                local_bot,
                node,
                old_age,
            } if d.mem_model == MemModel::OwnerStoreLoadReordered => match pc {
                // The claim store (`store localBot -> bot`) sits in the
                // owner's store buffer and drains only *after* the age
                // load — the reordering the owner-side SeqCst fence of
                // the relaxed protocol forbids (INV-FENCE). The local
                // decrement and both loads proceed in order (the owner
                // forwards its own buffered store, so its later steps use
                // `local_bot` directly); thieves observe the stale bot
                // until the drain step.
                0 => {
                    // load localBot <- bot; the zero test is local.
                    *local_bot = d.bot;
                    if *local_bot == 0 {
                        return StepOutcome::PopBottomDone(None);
                    }
                    *pc = 1;
                    StepOutcome::Continue
                }
                1 => {
                    // localBot -= 1 (local); load node <- deq[localBot].
                    // The claim store is buffered, not yet visible.
                    *local_bot -= 1;
                    *node = d.load_slot(*local_bot);
                    *pc = 2;
                    StepOutcome::Continue
                }
                2 => {
                    // load oldAge <- age, with the claim store still
                    // invisible to thieves.
                    *old_age = d.age;
                    *pc = 3;
                    StepOutcome::Continue
                }
                3 => {
                    // The store buffer drains: store localBot -> bot. On
                    // TSO it must drain before the cas (a locked RMW), so
                    // this is the maximal harmful delay. The fast-path
                    // test is local and was decided by the pc-2 load.
                    d.bot = *local_bot;
                    if *local_bot > old_age.top {
                        return StepOutcome::PopBottomDone(Some(*node));
                    }
                    *pc = 4;
                    StepOutcome::Continue
                }
                4 => {
                    // store 0 -> bot
                    d.bot = 0;
                    *pc = 5;
                    StepOutcome::Continue
                }
                5 => {
                    let new_age = SimAge {
                        tag: if d.tagged {
                            old_age.tag.wrapping_add(1)
                        } else {
                            old_age.tag
                        },
                        top: 0,
                    };
                    if *local_bot == old_age.top && d.cas_age(*old_age, new_age) {
                        return StepOutcome::PopBottomDone(Some(*node));
                    }
                    *pc = 6;
                    StepOutcome::Continue
                }
                _ => {
                    let new_age = SimAge {
                        tag: if d.tagged {
                            old_age.tag.wrapping_add(1)
                        } else {
                            old_age.tag
                        },
                        top: 0,
                    };
                    d.age = new_age;
                    StepOutcome::PopBottomDone(None)
                }
            },
            DequeOp::PopBottom {
                pc,
                local_bot,
                node,
                old_age,
            } => match pc {
                0 => {
                    // load localBot <- bot; the zero test is local.
                    *local_bot = d.bot;
                    if *local_bot == 0 {
                        return StepOutcome::PopBottomDone(None);
                    }
                    *pc = 1;
                    StepOutcome::Continue
                }
                1 => {
                    // localBot -= 1 (local); store localBot -> bot.
                    *local_bot -= 1;
                    d.bot = *local_bot;
                    *pc = 2;
                    StepOutcome::Continue
                }
                2 => {
                    // load node <- deq[localBot]
                    *node = d.load_slot(*local_bot);
                    *pc = 3;
                    StepOutcome::Continue
                }
                3 => {
                    // load oldAge <- age; fast path test is local.
                    *old_age = d.age;
                    if *local_bot > old_age.top {
                        return StepOutcome::PopBottomDone(Some(*node));
                    }
                    *pc = 4;
                    StepOutcome::Continue
                }
                4 => {
                    // store 0 -> bot
                    d.bot = 0;
                    *pc = 5;
                    StepOutcome::Continue
                }
                5 => {
                    // newAge construction is local; the cas happens only in
                    // the race-for-last-entry case.
                    let new_age = SimAge {
                        tag: if d.tagged {
                            old_age.tag.wrapping_add(1)
                        } else {
                            old_age.tag
                        },
                        top: 0,
                    };
                    if *local_bot == old_age.top && d.cas_age(*old_age, new_age) {
                        return StepOutcome::PopBottomDone(Some(*node));
                    }
                    *pc = 6;
                    StepOutcome::Continue
                }
                _ => {
                    // store newAge -> age (reset after losing the race or
                    // finding the deque already empty).
                    let new_age = SimAge {
                        tag: if d.tagged {
                            old_age.tag.wrapping_add(1)
                        } else {
                            old_age.tag
                        },
                        top: 0,
                    };
                    d.age = new_age;
                    StepOutcome::PopBottomDone(None)
                }
            },
            DequeOp::PopTop {
                pc,
                old_age,
                node,
                local_bot,
            } if d.mem_model == MemModel::ThiefLoadLoadReordered => match pc {
                // The thief's two loads swap: bot before age — the
                // reordering the thief-side ordering of the relaxed
                // protocol forbids (INV-FENCE). Slot read and cas are
                // unchanged.
                0 => {
                    // load localBot <- bot (hoisted above the age load).
                    *local_bot = d.bot;
                    *pc = 1;
                    StepOutcome::Continue
                }
                1 => {
                    // load oldAge <- age; empty test is local.
                    *old_age = d.age;
                    if *local_bot <= old_age.top {
                        return StepOutcome::PopTopDone(SimSteal::Empty);
                    }
                    *pc = 2;
                    StepOutcome::Continue
                }
                2 => {
                    // load node <- deq[oldAge.top]
                    *node = d.load_slot(old_age.top);
                    *pc = 3;
                    StepOutcome::Continue
                }
                _ => {
                    // cas(age, oldAge, newAge)
                    let new_age = SimAge {
                        tag: old_age.tag,
                        top: old_age.top + 1,
                    };
                    if d.cas_age(*old_age, new_age) {
                        StepOutcome::PopTopDone(SimSteal::Taken(*node))
                    } else {
                        StepOutcome::PopTopDone(SimSteal::Abort)
                    }
                }
            },
            DequeOp::PopTop {
                pc, old_age, node, ..
            } => match pc {
                0 => {
                    // load oldAge <- age
                    *old_age = d.age;
                    *pc = 1;
                    StepOutcome::Continue
                }
                1 => {
                    // load localBot <- bot; empty test is local.
                    let local_bot = d.bot;
                    if local_bot <= old_age.top {
                        return StepOutcome::PopTopDone(SimSteal::Empty);
                    }
                    *pc = 2;
                    StepOutcome::Continue
                }
                2 => {
                    // load node <- deq[oldAge.top]
                    *node = d.load_slot(old_age.top);
                    *pc = 3;
                    StepOutcome::Continue
                }
                _ => {
                    // cas(age, oldAge, newAge)
                    let new_age = SimAge {
                        tag: old_age.tag,
                        top: old_age.top + 1,
                    };
                    if d.cas_age(*old_age, new_age) {
                        StepOutcome::PopTopDone(SimSteal::Taken(*node))
                    } else {
                        StepOutcome::PopTopDone(SimSteal::Abort)
                    }
                }
            },
            DequeOp::PopTopBatch {
                max,
                revalidate,
                pc,
                old_age,
                local_bot,
                want,
                node,
                tasks,
            } => match pc {
                0 => {
                    // load oldAge <- age
                    *old_age = d.age;
                    *pc = 1;
                    StepOutcome::Continue
                }
                1 => {
                    // load localBot <- bot; empty test and the claim
                    // target are local.
                    *local_bot = d.bot;
                    if *local_bot <= old_age.top {
                        return StepOutcome::PopTopBatchDone(SimBatch::default());
                    }
                    let avail = (*local_bot - old_age.top) as usize;
                    *want = crate::atomic::batch_want(avail, *max);
                    if *want == 0 {
                        return StepOutcome::PopTopBatchDone(SimBatch::default());
                    }
                    *pc = 2;
                    StepOutcome::Continue
                }
                2 => {
                    // load node <- deq[oldAge.top]
                    *node = d.load_slot(old_age.top);
                    *pc = 3;
                    StepOutcome::Continue
                }
                3 => {
                    // cas(age, oldAge, oldAge with top + 1): one claim.
                    let new_age = SimAge {
                        tag: old_age.tag,
                        top: old_age.top + 1,
                    };
                    if d.cas_age(*old_age, new_age) {
                        tasks.push(*node);
                        *old_age = new_age;
                        if tasks.len() == *want {
                            return StepOutcome::PopTopBatchDone(SimBatch {
                                tasks: std::mem::take(tasks),
                                aborted: false,
                            });
                        }
                        // The shipped chain re-runs the preamble; the
                        // broken one goes straight to the next slot read
                        // trusting the stale bot bound.
                        *pc = if *revalidate { 4 } else { 2 };
                        StepOutcome::Continue
                    } else {
                        StepOutcome::PopTopBatchDone(SimBatch {
                            aborted: tasks.is_empty(),
                            tasks: std::mem::take(tasks),
                        })
                    }
                }
                _ => {
                    // INV-SB-REVAL: reload bot; stop when the owner's
                    // keep path has drained to (or past) our top.
                    *local_bot = d.bot;
                    if *local_bot <= old_age.top {
                        return StepOutcome::PopTopBatchDone(SimBatch {
                            tasks: std::mem::take(tasks),
                            aborted: false,
                        });
                    }
                    *pc = 2;
                    StepOutcome::Continue
                }
            },
        }
    }

    /// Runs the operation to completion with no interleaving (owner-only
    /// convenience for tests and setup).
    pub fn run_to_completion(mut self, d: &mut SimDeque) -> StepOutcome {
        loop {
            let out = self.step(d);
            if out.is_done() {
                return out;
            }
        }
    }
}

/// Upper bound on the number of instructions any deque operation takes;
/// used to derive the milestone constant `C` in the simulator.
pub const MAX_OP_STEPS: u32 = 7;

#[cfg(test)]
mod tests {
    use super::*;

    fn push(d: &mut SimDeque, v: u64) {
        assert_eq!(
            DequeOp::push_bottom(v).run_to_completion(d),
            StepOutcome::PushDone
        );
    }

    fn pop_bottom(d: &mut SimDeque) -> Option<u64> {
        match DequeOp::pop_bottom().run_to_completion(d) {
            StepOutcome::PopBottomDone(r) => r,
            other => panic!("unexpected {other:?}"),
        }
    }

    fn pop_top(d: &mut SimDeque) -> SimSteal {
        match DequeOp::pop_top().run_to_completion(d) {
            StepOutcome::PopTopDone(r) => r,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequential_matches_spec() {
        use std::collections::VecDeque;
        let mut d = SimDeque::new();
        let mut spec: VecDeque<u64> = VecDeque::new();
        let mut x = 0u64;
        let mut rng = 0x2545F491u64;
        for _ in 0..5000 {
            rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
            match rng >> 62 {
                0 | 1 => {
                    push(&mut d, x);
                    spec.push_back(x);
                    x += 1;
                }
                2 => assert_eq!(pop_bottom(&mut d), spec.pop_back()),
                _ => assert_eq!(pop_top(&mut d).taken(), spec.pop_front()),
            }
            assert_eq!(d.len(), spec.len());
        }
    }

    #[test]
    fn empty_pops() {
        let mut d = SimDeque::new();
        assert_eq!(pop_bottom(&mut d), None);
        assert_eq!(pop_top(&mut d), SimSteal::Empty);
        // popBottom on empty finishes in a single step (the local test).
        let mut op = DequeOp::pop_bottom();
        assert_eq!(op.step(&mut d), StepOutcome::PopBottomDone(None));
    }

    #[test]
    fn tag_bumps_on_reset() {
        let mut d = SimDeque::new();
        push(&mut d, 1);
        let t0 = d.age().tag;
        assert_eq!(pop_bottom(&mut d), Some(1));
        assert!(d.age().tag > t0, "reset must change the tag");
    }

    #[test]
    fn last_item_race_owner_vs_thief_exactly_one_wins() {
        // One item; interleave owner popBottom and thief popTop at every
        // possible thief-preemption point and check exactly one gets it.
        for thief_head_start in 0..=4u32 {
            let mut d = SimDeque::new();
            push(&mut d, 42);
            let mut thief = DequeOp::pop_top();
            let mut owner = DequeOp::pop_bottom();
            let mut thief_res = None;
            let mut owner_res = None;
            for _ in 0..thief_head_start {
                if thief_res.is_none() {
                    if let StepOutcome::PopTopDone(r) = thief.step(&mut d) {
                        thief_res = Some(r);
                    }
                }
            }
            // Owner runs to completion.
            while owner_res.is_none() {
                if let StepOutcome::PopBottomDone(r) = owner.step(&mut d) {
                    owner_res = Some(r);
                }
            }
            // Thief finishes.
            while thief_res.is_none() {
                if let StepOutcome::PopTopDone(r) = thief.step(&mut d) {
                    thief_res = Some(r);
                }
            }
            let owner_got = owner_res.unwrap().is_some();
            let thief_got = matches!(thief_res.unwrap(), SimSteal::Taken(_));
            assert!(
                owner_got ^ thief_got,
                "head start {thief_head_start}: owner {owner_got}, thief {thief_got}"
            );
            assert!(d.is_empty());
        }
    }

    /// The §3.3 scenario: a thief preempted after reading the top entry
    /// but before its cas; the owner empties the deque and pushes a new
    /// value, restoring the same top index. With tags the thief's cas
    /// fails; without tags it succeeds and the same value is consumed
    /// twice while the new value is lost.
    #[test]
    fn aba_scenario_tagged_vs_untagged() {
        for tagged in [true, false] {
            let mut d = SimDeque::with_tagging(tagged);
            push(&mut d, 100); // deque: [100], top=0, bot=1
            let mut thief = DequeOp::pop_top();
            // Thief reads age, bot, and the entry, then is "preempted".
            assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load age
            assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load bot
            assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load deq[0]
                                                                   // Owner pops 100 (reset path: localBot == top == 0) and pushes
                                                                   // 200, restoring top=0, bot=1.
            assert_eq!(pop_bottom(&mut d), Some(100));
            push(&mut d, 200);
            // Thief resumes with its cas.
            let res = match thief.step(&mut d) {
                StepOutcome::PopTopDone(r) => r,
                o => panic!("{o:?}"),
            };
            if tagged {
                assert_eq!(res, SimSteal::Abort, "tag must defeat the ABA");
                assert_eq!(d.contents(), vec![200], "200 still present");
            } else {
                // The broken variant: 100 is returned a second time and
                // 200 is silently lost.
                assert_eq!(res, SimSteal::Taken(100));
                assert!(d.is_empty(), "200 vanished");
            }
        }
    }

    #[test]
    fn owner_fast_path_skips_reset() {
        let mut d = SimDeque::new();
        push(&mut d, 1);
        push(&mut d, 2);
        let t0 = d.age().tag;
        assert_eq!(pop_bottom(&mut d), Some(2));
        // Fast path (localBot=1 > top=0): no reset, no tag bump.
        assert_eq!(d.age().tag, t0);
        assert_eq!(d.bot(), 1);
    }

    #[test]
    fn steps_within_declared_bound() {
        let mut d = SimDeque::new();
        // Longest paths: popBottom reset path.
        push(&mut d, 1);
        let mut op = DequeOp::pop_bottom();
        let mut steps = 0;
        loop {
            steps += 1;
            if op.step(&mut d).is_done() {
                break;
            }
        }
        assert!(steps <= MAX_OP_STEPS, "popBottom took {steps}");

        push(&mut d, 1);
        let mut op = DequeOp::pop_top();
        let mut steps = 0;
        loop {
            steps += 1;
            if op.step(&mut d).is_done() {
                break;
            }
        }
        assert!(steps <= MAX_OP_STEPS, "popTop took {steps}");

        let mut op = DequeOp::push_bottom(9);
        let mut steps = 0;
        loop {
            steps += 1;
            if op.step(&mut d).is_done() {
                break;
            }
        }
        assert!(steps <= MAX_OP_STEPS, "pushBottom took {steps}");
    }

    /// Bounded growth mode: a full array doubles during `pushBottom`,
    /// contents survive faithful growth, and the default (unbounded)
    /// deque is byte-for-byte unaffected — push still takes exactly
    /// three steps.
    #[test]
    fn bounded_growth_preserves_contents_and_default_steps() {
        let mut d = SimDeque::with_growth(true, 2, true);
        push(&mut d, 1);
        push(&mut d, 2);
        assert_eq!(d.growths(), 0);
        push(&mut d, 3); // full: grows 2 -> 4 inside the store step
        assert_eq!(d.growths(), 1);
        assert_eq!(d.contents(), vec![1, 2, 3]);
        assert_eq!(pop_top(&mut d), SimSteal::Taken(1));
        assert_eq!(pop_bottom(&mut d), Some(3));
        assert_eq!(pop_bottom(&mut d), Some(2));
        assert!(d.is_empty());

        // The broken variant forgets the copy: old values read as zero.
        let mut b = SimDeque::with_growth(true, 1, false);
        push(&mut b, 7);
        push(&mut b, 8);
        assert_eq!(b.growths(), 1);
        assert_eq!(b.contents(), vec![0, 8], "live region was not copied");

        // Default mode never grows and keeps the 3-step push.
        let mut plain = SimDeque::new();
        let mut op = DequeOp::push_bottom(9);
        assert_eq!(op.step(&mut plain), StepOutcome::Continue);
        assert_eq!(op.step(&mut plain), StepOutcome::Continue);
        assert_eq!(op.step(&mut plain), StepOutcome::PushDone);
        assert_eq!(plain.growths(), 0);
    }

    /// Directed version of the store→load-reordering race: with the
    /// owner's claim store buffered past its age load (no fence), two
    /// thieves drain a 2-entry deque while the owner fast-path-pops —
    /// the last entry is consumed twice. The fenced (SeqCst) model is
    /// immune to the same schedule.
    #[test]
    fn owner_store_load_reordering_double_take() {
        // Reordered model: owner claims entry 1 but the store is still
        // buffered when the thieves read bot.
        let mut d = SimDeque::new().with_mem_model(MemModel::OwnerStoreLoadReordered);
        push(&mut d, 10);
        push(&mut d, 11); // bot = 2, top = 0
        let mut owner = DequeOp::pop_bottom();
        assert_eq!(owner.step(&mut d), StepOutcome::Continue); // load bot = 2
        assert_eq!(owner.step(&mut d), StepOutcome::Continue); // load slot[1] (store buffered)
        assert_eq!(owner.step(&mut d), StepOutcome::Continue); // load age: top = 0 < 1
        assert_eq!(d.bot(), 2, "claim store must still be invisible");
        // Thief 1 steals entry 0; thief 2 sees top=1 and the STALE bot=2,
        // so it steals entry 1 — the entry the owner has already decided
        // to keep.
        assert_eq!(pop_top(&mut d), SimSteal::Taken(10));
        assert_eq!(pop_top(&mut d), SimSteal::Taken(11));
        // The buffered store drains and the owner returns entry 1 too.
        assert_eq!(owner.step(&mut d), StepOutcome::PopBottomDone(Some(11)));

        // Same schedule on the fenced model: the claim store is visible
        // before any thief can read bot, so thief 2 observes bot = 1 and
        // reports Empty.
        let mut d = SimDeque::new();
        push(&mut d, 10);
        push(&mut d, 11);
        let mut owner = DequeOp::pop_bottom();
        assert_eq!(owner.step(&mut d), StepOutcome::Continue); // load bot
        assert_eq!(owner.step(&mut d), StepOutcome::Continue); // store bot = 1
        assert_eq!(d.bot(), 1, "fenced model publishes the claim");
        assert_eq!(owner.step(&mut d), StepOutcome::Continue); // load slot[1]
        assert_eq!(pop_top(&mut d), SimSteal::Taken(10));
        assert_eq!(pop_top(&mut d), SimSteal::Empty);
        // The owner's age load now sees top = 1 == localBot, so it wins
        // entry 11 through the last-entry cas — exactly once.
        let res = loop {
            if let StepOutcome::PopBottomDone(r) = owner.step(&mut d) {
                break r;
            }
        };
        assert_eq!(res, Some(11));
    }

    /// Directed version of the thief load→load-reordering race: the
    /// thief reads `bot` first, the owner pops the only entry through the
    /// reset path (bumping the tag and rewriting age), and the thief then
    /// reads the *reset* age — whose fresh tag its cas happily validates
    /// against the stale bot. The in-order thief is immune: reading age
    /// first means it either sees the old tag (cas fails) or the new age
    /// together with bot = 0 (Empty).
    #[test]
    fn thief_load_load_reordering_double_take() {
        let mut d = SimDeque::new().with_mem_model(MemModel::ThiefLoadLoadReordered);
        push(&mut d, 7); // bot = 1, top = 0
        let mut thief = DequeOp::pop_top();
        // First step: load bot = 1 (hoisted).
        assert_eq!(thief.step(&mut d), StepOutcome::Continue);
        // Owner takes the entry via the reset path: age becomes
        // (tag+1, 0), bot becomes 0.
        assert_eq!(pop_bottom(&mut d), Some(7));
        // Thief resumes: loads the fresh age, pairs it with the stale
        // bot = 1, and its cas on the *new* tag succeeds — entry 7 is
        // consumed a second time.
        assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load age (fresh tag)
        assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load slot[0]
        assert_eq!(
            thief.step(&mut d),
            StepOutcome::PopTopDone(SimSteal::Taken(7))
        );

        // In-order thief under the same schedule: age is read first, so
        // the preemption window pairs the *old* age with the owner's
        // reset and the cas fails.
        let mut d = SimDeque::new();
        push(&mut d, 7);
        let mut thief = DequeOp::pop_top();
        assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load age (old tag)
        assert_eq!(pop_bottom(&mut d), Some(7));
        // bot = 0 <= top = 0: the empty test fires — the dangerous
        // stale-bot/fresh-age pairing is impossible in order.
        assert_eq!(thief.step(&mut d), StepOutcome::PopTopDone(SimSteal::Empty));
    }

    fn pop_top_batch(d: &mut SimDeque, max: usize, revalidate: bool) -> SimBatch {
        match DequeOp::pop_top_batch(max, revalidate).run_to_completion(d) {
            StepOutcome::PopTopBatchDone(b) => b,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn batch_sequential_matches_single_steals() {
        let mut d = SimDeque::new();
        for v in [1, 2, 3, 4, 5, 6, 7, 8] {
            push(&mut d, v);
        }
        // Half of 8, capped by max; uninterleaved, both variants agree.
        assert_eq!(pop_top_batch(&mut d, 16, true).tasks, vec![1, 2, 3, 4]);
        assert_eq!(pop_top_batch(&mut d, 2, false).tasks, vec![5, 6]);
        assert_eq!(pop_top_batch(&mut d, 0, true), SimBatch::default());
        assert_eq!(pop_top_batch(&mut d, 16, true).tasks, vec![7]);
        assert_eq!(pop_top_batch(&mut d, 16, true).tasks, vec![8]);
        let b = pop_top_batch(&mut d, 16, true);
        assert!(b.tasks.is_empty() && !b.aborted);
    }

    /// Directed version of the stale-`bot` chain race the batched steal
    /// must survive: top = 0, bot = 4; a thief plans a 2-task grab from
    /// a `bot` loaded before the owner keep-path-pops indices 3, 2, 1
    /// (never touching `age`). The broken chain's second cas
    /// `{g,1} -> {g,2}` still succeeds — `age` never changed — and
    /// index 1 is consumed twice. The shipped chain's preamble re-run
    /// (INV-SB-REVAL) reloads `bot = 1 <= top = 1` and stops after the
    /// first claim.
    #[test]
    fn batch_stale_bot_vs_owner_keep_path_double_take() {
        for revalidate in [false, true] {
            let mut d = SimDeque::new();
            for v in [10, 11, 12, 13] {
                push(&mut d, v);
            }
            let mut thief = DequeOp::pop_top_batch(2, revalidate);
            assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load age {g,0}
            assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load bot = 4; want = 2
            assert_eq!(thief.step(&mut d), StepOutcome::Continue); // load slot[0]
            // Owner keep-pops indices 3, 2, 1; age untouched, bot = 1.
            assert_eq!(pop_bottom(&mut d), Some(13));
            assert_eq!(pop_bottom(&mut d), Some(12));
            assert_eq!(pop_bottom(&mut d), Some(11));
            assert_eq!(d.age(), SimAge { tag: 0, top: 0 });
            assert_eq!(d.bot(), 1);
            // Thief resumes: first cas {g,0} -> {g,1} wins slot 0.
            assert_eq!(thief.step(&mut d), StepOutcome::Continue);
            let b = loop {
                if let StepOutcome::PopTopBatchDone(b) = thief.step(&mut d) {
                    break b;
                }
            };
            if revalidate {
                assert_eq!(b.tasks, vec![10], "reloaded bot = 1 <= top = 1 stops the grab");
            } else {
                assert_eq!(
                    b.tasks,
                    vec![10, 11],
                    "stale bot lets the chain re-take the owner's entry"
                );
            }
            assert!(d.is_empty());
        }
    }

    #[test]
    fn contents_reflects_window() {
        let mut d = SimDeque::new();
        for v in [5, 6, 7] {
            push(&mut d, v);
        }
        assert_eq!(d.contents(), vec![5, 6, 7]);
        assert_eq!(pop_top(&mut d), SimSteal::Taken(5));
        assert_eq!(d.contents(), vec![6, 7]);
        assert_eq!(pop_bottom(&mut d), Some(7));
        assert_eq!(d.contents(), vec![6]);
    }
}
