//! Bounded exhaustive checking of the deque's relaxed semantics (§3.2).
//!
//! The paper's correctness argument for the Figure-5 deque lives in a
//! separate technical report \[11\]; in its place this module *exhaustively
//! enumerates every interleaving* of small owner/thief programs over the
//! instruction-stepped deque of [`crate::sim_deque`] and checks each
//! complete history with the shared relaxed-semantics checker in
//! [`crate::history`] (conservation, the §3.2 Abort excuse, and Wing–Gong
//! linearizability of the good ops). The same checker also runs over
//! timestamped histories recorded from the *real* [`crate::atomic`] deque
//! — see [`crate::history::Recorder`].
//!
//! The state space of a scenario with a handful of operations is small
//! (thousands to a few million interleavings), so the exploration is a
//! plain depth-first search with no state hashing.

use crate::sim_deque::{DequeOp, SimDeque, StepOutcome};

pub use crate::history::{check, Invocation, OpResult, ProgOp, Violation};

/// A scenario: `programs[0]` is the owner (may push/pop bottom), the rest
/// are thieves (must only `PopTop`) — the "good invocation sets" of §3.2.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub programs: Vec<Vec<ProgOp>>,
}

impl Scenario {
    /// Builds and sanity-checks a scenario.
    pub fn new(programs: Vec<Vec<ProgOp>>) -> Self {
        assert!(!programs.is_empty());
        for prog in &programs[1..] {
            assert!(
                prog.iter().all(|op| matches!(op, ProgOp::PopTop)),
                "thief programs may only contain PopTop (good invocation sets)"
            );
        }
        Scenario { programs }
    }
}

/// Outcome of exploring every interleaving of a scenario.
#[derive(Debug)]
pub struct Report {
    /// Number of complete histories enumerated.
    pub histories: u64,
    /// Number of histories that violated the relaxed semantics.
    pub violating: u64,
    /// One concrete counterexample, if any.
    pub example: Option<Violation>,
}

impl Report {
    /// True if no history violated the semantics.
    pub fn ok(&self) -> bool {
        self.violating == 0
    }
}

#[derive(Clone)]
struct ProcState {
    program: Vec<ProgOp>,
    next_op: usize,
    current: Option<(DequeOp, ProgOp, u64)>, // op, kind, start step
}

impl ProcState {
    fn done(&self) -> bool {
        self.current.is_none() && self.next_op >= self.program.len()
    }
}

/// Explores every interleaving of `scenario` on a deque with the tag
/// mechanism enabled (`tagged = true`) or disabled.
///
/// ```
/// use abp_deque::model::{explore, ProgOp, Scenario};
///
/// let sc = Scenario::new(vec![
///     vec![ProgOp::Push(1), ProgOp::PopBottom], // owner
///     vec![ProgOp::PopTop],                     // one thief
/// ]);
/// assert!(explore(&sc, true).ok());   // the real algorithm is clean
/// assert!(!explore(&Scenario::new(vec![
///     vec![ProgOp::Push(1), ProgOp::PopBottom, ProgOp::Push(2)],
///     vec![ProgOp::PopTop],
/// ]), false).ok());                   // the untagged variant is not
/// ```
pub fn explore(scenario: &Scenario, tagged: bool) -> Report {
    explore_on(scenario, SimDeque::with_tagging(tagged))
}

/// Explores every interleaving of `scenario` starting from an arbitrary
/// initial deque — e.g. [`SimDeque::with_growth`] to model the growable
/// deque's buffer replacement racing concurrent `popTop`s.
pub fn explore_on(scenario: &Scenario, initial: SimDeque) -> Report {
    let procs: Vec<ProcState> = scenario
        .programs
        .iter()
        .map(|p| ProcState {
            program: p.clone(),
            next_op: 0,
            current: None,
        })
        .collect();
    let mut report = Report {
        histories: 0,
        violating: 0,
        example: None,
    };
    let mut history = Vec::new();
    let mut deque = initial;
    dfs(&mut deque, procs, 0, &mut history, &mut report);
    report
}

fn dfs(
    deque: &mut SimDeque,
    procs: Vec<ProcState>,
    step: u64,
    history: &mut Vec<Invocation>,
    report: &mut Report,
) {
    if procs.iter().all(|p| p.done()) {
        report.histories += 1;
        if let Err(reason) = check(history) {
            report.violating += 1;
            if report.example.is_none() {
                report.example = Some(Violation {
                    reason,
                    history: history.clone(),
                });
            }
        }
        return;
    }
    for i in 0..procs.len() {
        if procs[i].done() {
            continue;
        }
        // Step process i by one instruction on a cloned world.
        let mut d2 = deque.clone();
        let mut p2 = procs.clone();
        let pushed_hist = step_proc(&mut d2, &mut p2[i], i, step, history);
        dfs(&mut d2, p2, step + 1, history, report);
        if pushed_hist {
            history.pop();
        }
    }
}

/// Advances one instruction of process `i`; returns true if an invocation
/// completed (and was appended to `history`).
fn step_proc(
    deque: &mut SimDeque,
    p: &mut ProcState,
    proc_idx: usize,
    step: u64,
    history: &mut Vec<Invocation>,
) -> bool {
    if p.current.is_none() {
        let kind = p.program[p.next_op];
        p.next_op += 1;
        let op = match kind {
            ProgOp::Push(v) => DequeOp::push_bottom(v),
            ProgOp::PopBottom => DequeOp::pop_bottom(),
            ProgOp::PopTop => DequeOp::pop_top(),
        };
        p.current = Some((op, kind, step));
    }
    let (op, kind, start) = p.current.as_mut().unwrap();
    let outcome = op.step(deque);
    let (kind, start) = (*kind, *start);
    match outcome {
        StepOutcome::Continue => false,
        done => {
            let result = match done {
                StepOutcome::PushDone => OpResult::Pushed,
                StepOutcome::PopBottomDone(r) => OpResult::Popped(r),
                StepOutcome::PopTopDone(r) => OpResult::Stolen(r),
                StepOutcome::Continue => unreachable!(),
            };
            history.push(Invocation {
                proc: proc_idx,
                start,
                end: step,
                kind,
                result,
            });
            p.current = None;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(ops: &[ProgOp]) -> Vec<ProgOp> {
        ops.to_vec()
    }

    #[test]
    fn single_thief_scenarios_pass_when_tagged() {
        use ProgOp::*;
        let scenarios = [
            Scenario::new(vec![owner(&[Push(1), PopBottom]), vec![PopTop]]),
            Scenario::new(vec![owner(&[Push(1), Push(2), PopBottom]), vec![PopTop]]),
            Scenario::new(vec![owner(&[Push(1), PopBottom, Push(2)]), vec![PopTop]]),
            Scenario::new(vec![
                owner(&[Push(1), Push(2), PopBottom, PopBottom]),
                vec![PopTop, PopTop],
            ]),
        ];
        for (i, sc) in scenarios.iter().enumerate() {
            let rep = explore(sc, true);
            assert!(rep.histories > 0);
            assert!(
                rep.ok(),
                "scenario {i} violated: {:?}",
                rep.example.as_ref().map(|v| &v.reason)
            );
        }
    }

    #[test]
    fn two_thieves_pass_when_tagged() {
        use ProgOp::*;
        let sc = Scenario::new(vec![
            owner(&[Push(1), Push(2), PopBottom]),
            vec![PopTop],
            vec![PopTop],
        ]);
        let rep = explore(&sc, true);
        assert!(rep.histories > 1000, "histories: {}", rep.histories);
        assert!(
            rep.ok(),
            "violated: {:?}",
            rep.example.as_ref().map(|v| &v.reason)
        );
    }

    #[test]
    fn untagged_aba_is_found() {
        use ProgOp::*;
        // The §3.3 scenario: the checker must find a violating
        // interleaving for the untagged deque...
        let sc = Scenario::new(vec![owner(&[Push(1), PopBottom, Push(2)]), vec![PopTop]]);
        let rep = explore(&sc, false);
        assert!(
            !rep.ok(),
            "untagged deque should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
        // ...and the same scenario must be clean with tags.
        let rep_tagged = explore(&sc, true);
        assert!(
            rep_tagged.ok(),
            "tagged: {:?}",
            rep_tagged.example.as_ref().map(|v| &v.reason)
        );
    }

    #[test]
    #[should_panic(expected = "good invocation sets")]
    fn thief_cannot_push() {
        Scenario::new(vec![vec![ProgOp::Push(1)], vec![ProgOp::Push(2)]]);
    }

    /// INV-FENCE, owner side: with `popBottom`'s claim store buffered
    /// past its age load (the store→load reordering the owner's SeqCst
    /// fence forbids), a thief can observe the stale `bot` and re-steal
    /// the entry the owner fast-path-popped. The checker must find it —
    /// and the same scenario must be clean under the in-order model.
    #[test]
    fn owner_store_load_reordering_is_caught() {
        use crate::sim_deque::{MemModel, SimDeque};
        use ProgOp::*;
        let sc = Scenario::new(vec![
            owner(&[Push(1), Push(2), PopBottom]),
            vec![PopTop, PopTop],
        ]);
        let rep = explore_on(
            &sc,
            SimDeque::new().with_mem_model(MemModel::OwnerStoreLoadReordered),
        );
        assert!(
            !rep.ok(),
            "unfenced owner should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
        let fenced = explore(&sc, true);
        assert!(
            fenced.ok(),
            "fenced: {:?}",
            fenced.example.as_ref().map(|v| &v.reason)
        );
    }

    /// INV-FENCE, thief side: with `popTop` loading `bot` before `age`
    /// (the load→load reordering the thief-side ordering forbids), a
    /// stale large `bot` can pair with a *reset* age word — whose fresh
    /// tag validates the cas — and the thief consumes an entry the owner
    /// already took through the reset path.
    #[test]
    fn thief_load_load_reordering_is_caught() {
        use crate::sim_deque::{MemModel, SimDeque};
        use ProgOp::*;
        let sc = Scenario::new(vec![owner(&[Push(1), PopBottom]), vec![PopTop]]);
        let rep = explore_on(
            &sc,
            SimDeque::new().with_mem_model(MemModel::ThiefLoadLoadReordered),
        );
        assert!(
            !rep.ok(),
            "reordered thief should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
        let ordered = explore(&sc, true);
        assert!(
            ordered.ok(),
            "in-order: {:?}",
            ordered.example.as_ref().map(|v| &v.reason)
        );
    }

    /// A growth event racing concurrent popTops: with the faithful
    /// copy-on-grow protocol (the one `crate::growable` implements),
    /// every interleaving satisfies the relaxed semantics.
    #[test]
    fn growth_racing_poptop_is_clean_when_copied() {
        use crate::sim_deque::SimDeque;
        use ProgOp::*;
        // cap = 1, so the second push grows the array while the thieves'
        // popTops may be mid-flight (between their slot read and cas).
        let scenarios = [
            Scenario::new(vec![owner(&[Push(1), Push(2)]), vec![PopTop]]),
            Scenario::new(vec![
                owner(&[Push(1), Push(2), PopBottom]),
                vec![PopTop],
                vec![PopTop],
            ]),
        ];
        for (i, sc) in scenarios.iter().enumerate() {
            let rep = explore_on(sc, SimDeque::with_growth(true, 1, true));
            assert!(rep.histories > 0);
            assert!(
                rep.ok(),
                "scenario {i} violated: {:?}",
                rep.example.as_ref().map(|v| &v.reason)
            );
        }
    }

    /// The broken growth variant — publish a fresh buffer without copying
    /// the live region — is caught by the checker: a thief whose slot
    /// read lands after the growth consumes a value that was never
    /// pushed (the zeroed slot).
    #[test]
    fn growth_without_copy_is_caught() {
        use crate::sim_deque::SimDeque;
        use ProgOp::*;
        let sc = Scenario::new(vec![owner(&[Push(1), Push(2)]), vec![PopTop]]);
        let rep = explore_on(&sc, SimDeque::with_growth(true, 1, false));
        assert!(
            !rep.ok(),
            "no-copy growth should violate conservation somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("never pushed") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
    }
}
