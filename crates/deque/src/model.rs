//! Bounded exhaustive checking of the deque's relaxed semantics (§3.2).
//!
//! The paper's correctness argument for the Figure-5 deque lives in a
//! separate technical report \[11\]; in its place this module *exhaustively
//! enumerates every interleaving* of small owner/thief programs over the
//! instruction-stepped deque of [`crate::sim_deque`] and checks each
//! complete history against the relaxed semantics:
//!
//! 1. **Linearizability of the good ops** — there must exist a
//!    linearization point inside every invocation's interval such that the
//!    results agree with a serial deque execution (Wing–Gong style search
//!    against a `VecDeque` specification). `popTop` invocations that
//!    return NIL by losing a `cas` ([`SimSteal::Abort`]) are exempt: the
//!    relaxed semantics does not require them to linearize.
//! 2. **The Abort excuse** — every `Abort` must overlap (in real time) a
//!    successful removal by another process or an interval where the deque
//!    is empty; this is the §3.2 condition "at some point during the
//!    invocation … the topmost item is removed from the deque by another
//!    process".
//! 3. **Conservation** — every pushed value is consumed at most once, and
//!    values never materialize out of thin air. (This is the check that
//!    the untagged ABA variant fails.)
//!
//! The state space of a scenario with a handful of operations is small
//! (thousands to a few million interleavings), so the exploration is a
//! plain depth-first search with no state hashing.

use crate::sim_deque::{DequeOp, SimDeque, SimSteal, StepOutcome};
use std::collections::VecDeque;

/// One instruction-level operation in a process's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgOp {
    /// Owner-only: `pushBottom(v)`.
    Push(u64),
    /// Owner-only: `popBottom()`.
    PopBottom,
    /// `popTop()`.
    PopTop,
}

/// A scenario: `programs[0]` is the owner (may push/pop bottom), the rest
/// are thieves (must only `PopTop`) — the "good invocation sets" of §3.2.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub programs: Vec<Vec<ProgOp>>,
}

impl Scenario {
    /// Builds and sanity-checks a scenario.
    pub fn new(programs: Vec<Vec<ProgOp>>) -> Self {
        assert!(!programs.is_empty());
        for prog in &programs[1..] {
            assert!(
                prog.iter().all(|op| matches!(op, ProgOp::PopTop)),
                "thief programs may only contain PopTop (good invocation sets)"
            );
        }
        Scenario { programs }
    }
}

/// A completed invocation within one history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Invocation {
    pub proc: usize,
    /// Global instruction index at which the op issued its first step.
    pub start: u64,
    /// Global instruction index of its last step.
    pub end: u64,
    pub kind: ProgOp,
    pub result: OpResult,
}

/// The result attached to a completed invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpResult {
    Pushed,
    Popped(Option<u64>),
    Stolen(SimSteal),
}

/// A relaxed-semantics violation with the offending history.
#[derive(Debug, Clone)]
pub struct Violation {
    pub reason: String,
    pub history: Vec<Invocation>,
}

/// Outcome of exploring every interleaving of a scenario.
#[derive(Debug)]
pub struct Report {
    /// Number of complete histories enumerated.
    pub histories: u64,
    /// Number of histories that violated the relaxed semantics.
    pub violating: u64,
    /// One concrete counterexample, if any.
    pub example: Option<Violation>,
}

impl Report {
    /// True if no history violated the semantics.
    pub fn ok(&self) -> bool {
        self.violating == 0
    }
}

#[derive(Clone)]
struct ProcState {
    program: Vec<ProgOp>,
    next_op: usize,
    current: Option<(DequeOp, ProgOp, u64)>, // op, kind, start step
}

impl ProcState {
    fn done(&self) -> bool {
        self.current.is_none() && self.next_op >= self.program.len()
    }
}

/// Explores every interleaving of `scenario` on a deque with the tag
/// mechanism enabled (`tagged = true`) or disabled.
///
/// ```
/// use abp_deque::model::{explore, ProgOp, Scenario};
///
/// let sc = Scenario::new(vec![
///     vec![ProgOp::Push(1), ProgOp::PopBottom], // owner
///     vec![ProgOp::PopTop],                     // one thief
/// ]);
/// assert!(explore(&sc, true).ok());   // the real algorithm is clean
/// assert!(!explore(&Scenario::new(vec![
///     vec![ProgOp::Push(1), ProgOp::PopBottom, ProgOp::Push(2)],
///     vec![ProgOp::PopTop],
/// ]), false).ok());                   // the untagged variant is not
/// ```
pub fn explore(scenario: &Scenario, tagged: bool) -> Report {
    let procs: Vec<ProcState> = scenario
        .programs
        .iter()
        .map(|p| ProcState {
            program: p.clone(),
            next_op: 0,
            current: None,
        })
        .collect();
    let mut report = Report {
        histories: 0,
        violating: 0,
        example: None,
    };
    let mut history = Vec::new();
    dfs(
        &mut SimDeque::with_tagging(tagged),
        procs,
        0,
        &mut history,
        &mut report,
    );
    report
}

fn dfs(
    deque: &mut SimDeque,
    procs: Vec<ProcState>,
    step: u64,
    history: &mut Vec<Invocation>,
    report: &mut Report,
) {
    if procs.iter().all(|p| p.done()) {
        report.histories += 1;
        if let Err(reason) = check_history(history) {
            report.violating += 1;
            if report.example.is_none() {
                report.example = Some(Violation {
                    reason,
                    history: history.clone(),
                });
            }
        }
        return;
    }
    for i in 0..procs.len() {
        if procs[i].done() {
            continue;
        }
        // Step process i by one instruction on a cloned world.
        let mut d2 = deque.clone();
        let mut p2 = procs.clone();
        let pushed_hist = step_proc(&mut d2, &mut p2[i], i, step, history);
        dfs(&mut d2, p2, step + 1, history, report);
        if pushed_hist {
            history.pop();
        }
    }
}

/// Advances one instruction of process `i`; returns true if an invocation
/// completed (and was appended to `history`).
fn step_proc(
    deque: &mut SimDeque,
    p: &mut ProcState,
    proc_idx: usize,
    step: u64,
    history: &mut Vec<Invocation>,
) -> bool {
    if p.current.is_none() {
        let kind = p.program[p.next_op];
        p.next_op += 1;
        let op = match kind {
            ProgOp::Push(v) => DequeOp::push_bottom(v),
            ProgOp::PopBottom => DequeOp::pop_bottom(),
            ProgOp::PopTop => DequeOp::pop_top(),
        };
        p.current = Some((op, kind, step));
    }
    let (op, kind, start) = p.current.as_mut().unwrap();
    let outcome = op.step(deque);
    let (kind, start) = (*kind, *start);
    match outcome {
        StepOutcome::Continue => false,
        done => {
            let result = match done {
                StepOutcome::PushDone => OpResult::Pushed,
                StepOutcome::PopBottomDone(r) => OpResult::Popped(r),
                StepOutcome::PopTopDone(r) => OpResult::Stolen(r),
                StepOutcome::Continue => unreachable!(),
            };
            history.push(Invocation {
                proc: proc_idx,
                start,
                end: step,
                kind,
                result,
            });
            p.current = None;
            true
        }
    }
}

/// Checks one complete history against the relaxed semantics.
fn check_history(history: &[Invocation]) -> Result<(), String> {
    conservation(history)?;
    aborts_excused(history)?;
    linearizable(history)?;
    Ok(())
}

/// Every pushed value consumed at most once; every consumed value was
/// pushed. (Values in scenarios are unique by convention.)
fn conservation(history: &[Invocation]) -> Result<(), String> {
    let mut pushed = Vec::new();
    let mut consumed = Vec::new();
    for inv in history {
        match inv.result {
            OpResult::Pushed => {
                if let ProgOp::Push(v) = inv.kind {
                    pushed.push(v);
                }
            }
            OpResult::Popped(Some(v)) => consumed.push(v),
            OpResult::Stolen(SimSteal::Taken(v)) => consumed.push(v),
            _ => {}
        }
    }
    for &v in &consumed {
        if !pushed.contains(&v) {
            return Err(format!("value {v} consumed but never pushed"));
        }
    }
    let mut sorted = consumed.clone();
    sorted.sort_unstable();
    for w in sorted.windows(2) {
        if w[0] == w[1] {
            return Err(format!("value {} consumed twice", w[0]));
        }
    }
    Ok(())
}

/// Every Abort must overlap a removal by another process (or trivially, an
/// overlapping owner reset — any overlapping successful pop counts).
fn aborts_excused(history: &[Invocation]) -> Result<(), String> {
    for inv in history {
        if inv.result != OpResult::Stolen(SimSteal::Abort) {
            continue;
        }
        let excused = history.iter().any(|other| {
            other.proc != inv.proc
                && other.start <= inv.end
                && other.end >= inv.start
                && matches!(
                    other.result,
                    OpResult::Popped(Some(_))
                        | OpResult::Stolen(SimSteal::Taken(_))
                        | OpResult::Popped(None)
                )
        });
        if !excused {
            return Err("popTop aborted with no overlapping removal".to_string());
        }
    }
    Ok(())
}

/// Wing–Gong linearizability of the non-Abort invocations against a serial
/// deque specification.
fn linearizable(history: &[Invocation]) -> Result<(), String> {
    let ops: Vec<&Invocation> = history
        .iter()
        .filter(|inv| inv.result != OpResult::Stolen(SimSteal::Abort))
        .collect();
    let mut linearized = vec![false; ops.len()];
    let mut spec = VecDeque::new();
    if lin_search(&ops, &mut linearized, &mut spec) {
        Ok(())
    } else {
        Err("no linearization consistent with a serial deque".to_string())
    }
}

fn lin_search(ops: &[&Invocation], linearized: &mut [bool], spec: &mut VecDeque<u64>) -> bool {
    if linearized.iter().all(|&b| b) {
        return true;
    }
    for i in 0..ops.len() {
        if linearized[i] {
            continue;
        }
        // `i` is a candidate only if no unlinearized op finished strictly
        // before it started.
        let minimal = (0..ops.len()).all(|j| linearized[j] || j == i || ops[j].end >= ops[i].start);
        if !minimal {
            continue;
        }
        // Try linearizing op i here: replay on the spec.
        let ok = match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(v), OpResult::Pushed) => {
                spec.push_back(v);
                true
            }
            (ProgOp::PopBottom, OpResult::Popped(r)) => {
                if spec.back().copied() == r {
                    if r.is_some() {
                        spec.pop_back();
                    }
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) => {
                if spec.front() == Some(&v) {
                    spec.pop_front();
                    true
                } else {
                    false
                }
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Empty)) => spec.is_empty(),
            other => panic!("malformed invocation {other:?}"),
        };
        if ok {
            linearized[i] = true;
            if lin_search(ops, linearized, spec) {
                return true;
            }
            linearized[i] = false;
        }
        // Undo the spec mutation.
        match (ops[i].kind, ops[i].result) {
            (ProgOp::Push(_), OpResult::Pushed) if ok => {
                spec.pop_back();
            }
            (ProgOp::PopBottom, OpResult::Popped(Some(v))) if ok => {
                spec.push_back(v);
            }
            (ProgOp::PopTop, OpResult::Stolen(SimSteal::Taken(v))) if ok => {
                spec.push_front(v);
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(ops: &[ProgOp]) -> Vec<ProgOp> {
        ops.to_vec()
    }

    #[test]
    fn single_thief_scenarios_pass_when_tagged() {
        use ProgOp::*;
        let scenarios = [
            Scenario::new(vec![owner(&[Push(1), PopBottom]), vec![PopTop]]),
            Scenario::new(vec![owner(&[Push(1), Push(2), PopBottom]), vec![PopTop]]),
            Scenario::new(vec![owner(&[Push(1), PopBottom, Push(2)]), vec![PopTop]]),
            Scenario::new(vec![
                owner(&[Push(1), Push(2), PopBottom, PopBottom]),
                vec![PopTop, PopTop],
            ]),
        ];
        for (i, sc) in scenarios.iter().enumerate() {
            let rep = explore(sc, true);
            assert!(rep.histories > 0);
            assert!(
                rep.ok(),
                "scenario {i} violated: {:?}",
                rep.example.as_ref().map(|v| &v.reason)
            );
        }
    }

    #[test]
    fn two_thieves_pass_when_tagged() {
        use ProgOp::*;
        let sc = Scenario::new(vec![
            owner(&[Push(1), Push(2), PopBottom]),
            vec![PopTop],
            vec![PopTop],
        ]);
        let rep = explore(&sc, true);
        assert!(rep.histories > 1000, "histories: {}", rep.histories);
        assert!(
            rep.ok(),
            "violated: {:?}",
            rep.example.as_ref().map(|v| &v.reason)
        );
    }

    #[test]
    fn untagged_aba_is_found() {
        use ProgOp::*;
        // The §3.3 scenario: the checker must find a violating
        // interleaving for the untagged deque...
        let sc = Scenario::new(vec![owner(&[Push(1), PopBottom, Push(2)]), vec![PopTop]]);
        let rep = explore(&sc, false);
        assert!(
            !rep.ok(),
            "untagged deque should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
        // ...and the same scenario must be clean with tags.
        let rep_tagged = explore(&sc, true);
        assert!(
            rep_tagged.ok(),
            "tagged: {:?}",
            rep_tagged.example.as_ref().map(|v| &v.reason)
        );
    }

    #[test]
    #[should_panic(expected = "good invocation sets")]
    fn thief_cannot_push() {
        Scenario::new(vec![vec![ProgOp::Push(1)], vec![ProgOp::Push(2)]]);
    }

    #[test]
    fn conservation_detects_duplicate() {
        let h = [
            Invocation {
                proc: 0,
                start: 0,
                end: 1,
                kind: ProgOp::Push(7),
                result: OpResult::Pushed,
            },
            Invocation {
                proc: 0,
                start: 2,
                end: 3,
                kind: ProgOp::PopBottom,
                result: OpResult::Popped(Some(7)),
            },
            Invocation {
                proc: 1,
                start: 2,
                end: 4,
                kind: ProgOp::PopTop,
                result: OpResult::Stolen(SimSteal::Taken(7)),
            },
        ];
        assert!(conservation(&h).is_err());
    }

    #[test]
    fn linearizability_rejects_wrong_order() {
        // Two sequential (non-overlapping) pushes then a popTop of the
        // *second* value: impossible serially.
        let h = [
            Invocation {
                proc: 0,
                start: 0,
                end: 1,
                kind: ProgOp::Push(1),
                result: OpResult::Pushed,
            },
            Invocation {
                proc: 0,
                start: 2,
                end: 3,
                kind: ProgOp::Push(2),
                result: OpResult::Pushed,
            },
            Invocation {
                proc: 1,
                start: 4,
                end: 5,
                kind: ProgOp::PopTop,
                result: OpResult::Stolen(SimSteal::Taken(2)),
            },
        ];
        assert!(linearizable(&h).is_err());
    }

    #[test]
    fn empty_steal_requires_observably_empty_spec() {
        // popTop -> Empty while a pushed value sits in the deque the whole
        // time and nothing overlaps: not linearizable.
        let h = [
            Invocation {
                proc: 0,
                start: 0,
                end: 1,
                kind: ProgOp::Push(1),
                result: OpResult::Pushed,
            },
            Invocation {
                proc: 1,
                start: 2,
                end: 3,
                kind: ProgOp::PopTop,
                result: OpResult::Stolen(SimSteal::Empty),
            },
        ];
        assert!(linearizable(&h).is_err());
    }
}
