//! Bounded exhaustive checking of the deque's relaxed semantics (§3.2).
//!
//! The paper's correctness argument for the Figure-5 deque lives in a
//! separate technical report \[11\]; in its place this module *exhaustively
//! enumerates every interleaving* of small owner/thief programs over the
//! instruction-stepped deque of [`crate::sim_deque`] and checks each
//! complete history with the shared relaxed-semantics checker in
//! [`crate::history`] (conservation, the §3.2 Abort excuse, and Wing–Gong
//! linearizability of the good ops). The same checker also runs over
//! timestamped histories recorded from the *real* [`crate::atomic`] deque
//! — see [`crate::history::Recorder`].
//!
//! The state space of a scenario with a handful of operations is small
//! (thousands to a few million interleavings), so the exploration is a
//! plain depth-first search with no state hashing.

use crate::sim_deque::{DequeOp, SimDeque, StepOutcome};

pub use crate::history::{
    check, check_with_batches, BatchInvocation, Invocation, OpResult, ProgOp, Violation,
};

/// A scenario: `programs[0]` is the owner (may push/pop bottom), the rest
/// are thieves (must only `PopTop`) — the "good invocation sets" of §3.2.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub programs: Vec<Vec<ProgOp>>,
}

impl Scenario {
    /// Builds and sanity-checks a scenario.
    pub fn new(programs: Vec<Vec<ProgOp>>) -> Self {
        assert!(!programs.is_empty());
        for prog in &programs[1..] {
            assert!(
                prog.iter().all(|op| matches!(op, ProgOp::PopTop)),
                "thief programs may only contain PopTop (good invocation sets)"
            );
        }
        Scenario { programs }
    }
}

/// Outcome of exploring every interleaving of a scenario.
#[derive(Debug)]
pub struct Report {
    /// Number of complete histories enumerated.
    pub histories: u64,
    /// Number of histories that violated the relaxed semantics.
    pub violating: u64,
    /// One concrete counterexample, if any.
    pub example: Option<Violation>,
}

impl Report {
    /// True if no history violated the semantics.
    pub fn ok(&self) -> bool {
        self.violating == 0
    }
}

#[derive(Clone)]
struct ProcState {
    program: Vec<ProgOp>,
    next_op: usize,
    current: Option<(DequeOp, ProgOp, u64)>, // op, kind, start step
}

impl ProcState {
    fn done(&self) -> bool {
        self.current.is_none() && self.next_op >= self.program.len()
    }
}

/// Explores every interleaving of `scenario` on a deque with the tag
/// mechanism enabled (`tagged = true`) or disabled.
///
/// ```
/// use abp_deque::model::{explore, ProgOp, Scenario};
///
/// let sc = Scenario::new(vec![
///     vec![ProgOp::Push(1), ProgOp::PopBottom], // owner
///     vec![ProgOp::PopTop],                     // one thief
/// ]);
/// assert!(explore(&sc, true).ok());   // the real algorithm is clean
/// assert!(!explore(&Scenario::new(vec![
///     vec![ProgOp::Push(1), ProgOp::PopBottom, ProgOp::Push(2)],
///     vec![ProgOp::PopTop],
/// ]), false).ok());                   // the untagged variant is not
/// ```
pub fn explore(scenario: &Scenario, tagged: bool) -> Report {
    explore_on(scenario, SimDeque::with_tagging(tagged))
}

/// Explores every interleaving of `scenario` starting from an arbitrary
/// initial deque — e.g. [`SimDeque::with_growth`] to model the growable
/// deque's buffer replacement racing concurrent `popTop`s.
pub fn explore_on(scenario: &Scenario, initial: SimDeque) -> Report {
    let procs: Vec<ProcState> = scenario
        .programs
        .iter()
        .map(|p| ProcState {
            program: p.clone(),
            next_op: 0,
            current: None,
        })
        .collect();
    let mut report = Report {
        histories: 0,
        violating: 0,
        example: None,
    };
    let mut history = Vec::new();
    let mut deque = initial;
    dfs(&mut deque, procs, 0, &mut history, &mut report);
    report
}

fn dfs(
    deque: &mut SimDeque,
    procs: Vec<ProcState>,
    step: u64,
    history: &mut Vec<Invocation>,
    report: &mut Report,
) {
    if procs.iter().all(|p| p.done()) {
        report.histories += 1;
        if let Err(reason) = check(history) {
            report.violating += 1;
            if report.example.is_none() {
                report.example = Some(Violation {
                    reason,
                    history: history.clone(),
                });
            }
        }
        return;
    }
    for i in 0..procs.len() {
        if procs[i].done() {
            continue;
        }
        // Step process i by one instruction on a cloned world.
        let mut d2 = deque.clone();
        let mut p2 = procs.clone();
        let pushed_hist = step_proc(&mut d2, &mut p2[i], i, step, history);
        dfs(&mut d2, p2, step + 1, history, report);
        if pushed_hist {
            history.pop();
        }
    }
}

/// One step of a thief program in a [`BatchScenario`]: a plain `popTop`
/// or a batched grab of up to `max` tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThiefOp {
    PopTop,
    Batch(usize),
}

/// A scenario whose thieves may issue *batched* grabs, judged by
/// [`check_with_batches`] (INV-SB-1/INV-SB-2 plus the single-op
/// semantics over the batch-expanded history). This is the exhaustive
/// counterpart of the concurrent batch histories recorded from the real
/// deque — small enough programs that every interleaving of the
/// instruction-stepped [`DequeOp::PopTopBatch`] against the owner can
/// be enumerated, including the keep-path overlap a wall-clock test
/// practically never schedules.
#[derive(Debug, Clone)]
pub struct BatchScenario {
    /// The owner's program (push/pop bottom).
    pub owner: Vec<ProgOp>,
    /// Thief programs; each step is a single or batched steal.
    pub thieves: Vec<Vec<ThiefOp>>,
}

#[derive(Clone)]
enum BCurrent {
    Single(DequeOp, ProgOp, u64),
    Batch(DequeOp, u64),
}

#[derive(Clone)]
struct BProc {
    owner_prog: Vec<ProgOp>,
    thief_prog: Vec<ThiefOp>,
    next_op: usize,
    current: Option<BCurrent>,
}

impl BProc {
    fn done(&self) -> bool {
        let len = self.owner_prog.len().max(self.thief_prog.len());
        self.current.is_none() && self.next_op >= len
    }
}

/// What a batch-scenario step appended, so the DFS can backtrack.
enum Logged {
    Nothing,
    History,
    Batch,
}

/// Explores every interleaving of `scenario` starting from `initial`.
/// `revalidate` selects the batched chain variant: `true` is the
/// shipped per-claim preamble re-run (INV-SB-REVAL), `false` the broken
/// stale-`bot` chain — exploring the latter must produce a violation
/// (see the tests), which is the non-vacuity check for the former.
pub fn explore_batches(scenario: &BatchScenario, initial: SimDeque, revalidate: bool) -> Report {
    let mut procs = vec![BProc {
        owner_prog: scenario.owner.clone(),
        thief_prog: Vec::new(),
        next_op: 0,
        current: None,
    }];
    for t in &scenario.thieves {
        procs.push(BProc {
            owner_prog: Vec::new(),
            thief_prog: t.clone(),
            next_op: 0,
            current: None,
        });
    }
    let mut report = Report {
        histories: 0,
        violating: 0,
        example: None,
    };
    let mut history = Vec::new();
    let mut batches = Vec::new();
    let mut deque = initial;
    dfs_batches(
        &mut deque,
        procs,
        revalidate,
        0,
        &mut history,
        &mut batches,
        &mut report,
    );
    report
}

fn dfs_batches(
    deque: &mut SimDeque,
    procs: Vec<BProc>,
    revalidate: bool,
    step: u64,
    history: &mut Vec<Invocation>,
    batches: &mut Vec<BatchInvocation>,
    report: &mut Report,
) {
    if procs.iter().all(|p| p.done()) {
        report.histories += 1;
        if let Err(reason) = check_with_batches(history, batches, false) {
            report.violating += 1;
            if report.example.is_none() {
                report.example = Some(Violation {
                    reason,
                    history: history.clone(),
                });
            }
        }
        return;
    }
    for i in 0..procs.len() {
        if procs[i].done() {
            continue;
        }
        let mut d2 = deque.clone();
        let mut p2 = procs.clone();
        let logged = step_bproc(&mut d2, &mut p2[i], i, revalidate, step, history, batches);
        dfs_batches(&mut d2, p2, revalidate, step + 1, history, batches, report);
        match logged {
            Logged::Nothing => {}
            Logged::History => {
                history.pop();
            }
            Logged::Batch => {
                batches.pop();
            }
        }
    }
}

/// Advances one instruction of batch-scenario process `i`.
fn step_bproc(
    deque: &mut SimDeque,
    p: &mut BProc,
    proc_idx: usize,
    revalidate: bool,
    step: u64,
    history: &mut Vec<Invocation>,
    batches: &mut Vec<BatchInvocation>,
) -> Logged {
    if p.current.is_none() {
        let cur = if p.owner_prog.is_empty() {
            match p.thief_prog[p.next_op] {
                ThiefOp::PopTop => BCurrent::Single(DequeOp::pop_top(), ProgOp::PopTop, step),
                ThiefOp::Batch(max) => {
                    BCurrent::Batch(DequeOp::pop_top_batch(max, revalidate), step)
                }
            }
        } else {
            let kind = p.owner_prog[p.next_op];
            let op = match kind {
                ProgOp::Push(v) => DequeOp::push_bottom(v),
                ProgOp::PopBottom => DequeOp::pop_bottom(),
                ProgOp::PopTop => DequeOp::pop_top(),
            };
            BCurrent::Single(op, kind, step)
        };
        p.next_op += 1;
        p.current = Some(cur);
    }
    match p.current.as_mut().unwrap() {
        BCurrent::Single(op, kind, start) => {
            let outcome = op.step(deque);
            let (kind, start) = (*kind, *start);
            match outcome {
                StepOutcome::Continue => Logged::Nothing,
                done => {
                    let result = match done {
                        StepOutcome::PushDone => OpResult::Pushed,
                        StepOutcome::PopBottomDone(r) => OpResult::Popped(r),
                        StepOutcome::PopTopDone(r) => OpResult::Stolen(r),
                        StepOutcome::Continue | StepOutcome::PopTopBatchDone(_) => unreachable!(),
                    };
                    history.push(Invocation {
                        proc: proc_idx,
                        start,
                        end: step,
                        kind,
                        result,
                    });
                    p.current = None;
                    Logged::History
                }
            }
        }
        BCurrent::Batch(op, start) => {
            let start = *start;
            match op.step(deque) {
                StepOutcome::Continue => Logged::Nothing,
                StepOutcome::PopTopBatchDone(b) => {
                    // Every successful cas claimed exactly one slot and
                    // took exactly one task, so claimed == tasks (the
                    // exact-backend shape of INV-SB-1).
                    batches.push(BatchInvocation {
                        proc: proc_idx,
                        start,
                        end: step,
                        claimed: b.tasks.len(),
                        tasks: b.tasks,
                        duplicates: 0,
                    });
                    p.current = None;
                    Logged::Batch
                }
                other => unreachable!("batch op produced {other:?}"),
            }
        }
    }
}

/// Advances one instruction of process `i`; returns true if an invocation
/// completed (and was appended to `history`).
fn step_proc(
    deque: &mut SimDeque,
    p: &mut ProcState,
    proc_idx: usize,
    step: u64,
    history: &mut Vec<Invocation>,
) -> bool {
    if p.current.is_none() {
        let kind = p.program[p.next_op];
        p.next_op += 1;
        let op = match kind {
            ProgOp::Push(v) => DequeOp::push_bottom(v),
            ProgOp::PopBottom => DequeOp::pop_bottom(),
            ProgOp::PopTop => DequeOp::pop_top(),
        };
        p.current = Some((op, kind, step));
    }
    let (op, kind, start) = p.current.as_mut().unwrap();
    let outcome = op.step(deque);
    let (kind, start) = (*kind, *start);
    match outcome {
        StepOutcome::Continue => false,
        done => {
            let result = match done {
                StepOutcome::PushDone => OpResult::Pushed,
                StepOutcome::PopBottomDone(r) => OpResult::Popped(r),
                StepOutcome::PopTopDone(r) => OpResult::Stolen(r),
                StepOutcome::Continue | StepOutcome::PopTopBatchDone(_) => unreachable!(),
            };
            history.push(Invocation {
                proc: proc_idx,
                start,
                end: step,
                kind,
                result,
            });
            p.current = None;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn owner(ops: &[ProgOp]) -> Vec<ProgOp> {
        ops.to_vec()
    }

    #[test]
    fn single_thief_scenarios_pass_when_tagged() {
        use ProgOp::*;
        let scenarios = [
            Scenario::new(vec![owner(&[Push(1), PopBottom]), vec![PopTop]]),
            Scenario::new(vec![owner(&[Push(1), Push(2), PopBottom]), vec![PopTop]]),
            Scenario::new(vec![owner(&[Push(1), PopBottom, Push(2)]), vec![PopTop]]),
            Scenario::new(vec![
                owner(&[Push(1), Push(2), PopBottom, PopBottom]),
                vec![PopTop, PopTop],
            ]),
        ];
        for (i, sc) in scenarios.iter().enumerate() {
            let rep = explore(sc, true);
            assert!(rep.histories > 0);
            assert!(
                rep.ok(),
                "scenario {i} violated: {:?}",
                rep.example.as_ref().map(|v| &v.reason)
            );
        }
    }

    #[test]
    fn two_thieves_pass_when_tagged() {
        use ProgOp::*;
        let sc = Scenario::new(vec![
            owner(&[Push(1), Push(2), PopBottom]),
            vec![PopTop],
            vec![PopTop],
        ]);
        let rep = explore(&sc, true);
        assert!(rep.histories > 1000, "histories: {}", rep.histories);
        assert!(
            rep.ok(),
            "violated: {:?}",
            rep.example.as_ref().map(|v| &v.reason)
        );
    }

    #[test]
    fn untagged_aba_is_found() {
        use ProgOp::*;
        // The §3.3 scenario: the checker must find a violating
        // interleaving for the untagged deque...
        let sc = Scenario::new(vec![owner(&[Push(1), PopBottom, Push(2)]), vec![PopTop]]);
        let rep = explore(&sc, false);
        assert!(
            !rep.ok(),
            "untagged deque should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
        // ...and the same scenario must be clean with tags.
        let rep_tagged = explore(&sc, true);
        assert!(
            rep_tagged.ok(),
            "tagged: {:?}",
            rep_tagged.example.as_ref().map(|v| &v.reason)
        );
    }

    #[test]
    #[should_panic(expected = "good invocation sets")]
    fn thief_cannot_push() {
        Scenario::new(vec![vec![ProgOp::Push(1)], vec![ProgOp::Push(2)]]);
    }

    /// INV-FENCE, owner side: with `popBottom`'s claim store buffered
    /// past its age load (the store→load reordering the owner's SeqCst
    /// fence forbids), a thief can observe the stale `bot` and re-steal
    /// the entry the owner fast-path-popped. The checker must find it —
    /// and the same scenario must be clean under the in-order model.
    #[test]
    fn owner_store_load_reordering_is_caught() {
        use crate::sim_deque::{MemModel, SimDeque};
        use ProgOp::*;
        let sc = Scenario::new(vec![
            owner(&[Push(1), Push(2), PopBottom]),
            vec![PopTop, PopTop],
        ]);
        let rep = explore_on(
            &sc,
            SimDeque::new().with_mem_model(MemModel::OwnerStoreLoadReordered),
        );
        assert!(
            !rep.ok(),
            "unfenced owner should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
        let fenced = explore(&sc, true);
        assert!(
            fenced.ok(),
            "fenced: {:?}",
            fenced.example.as_ref().map(|v| &v.reason)
        );
    }

    /// INV-FENCE, thief side: with `popTop` loading `bot` before `age`
    /// (the load→load reordering the thief-side ordering forbids), a
    /// stale large `bot` can pair with a *reset* age word — whose fresh
    /// tag validates the cas — and the thief consumes an entry the owner
    /// already took through the reset path.
    #[test]
    fn thief_load_load_reordering_is_caught() {
        use crate::sim_deque::{MemModel, SimDeque};
        use ProgOp::*;
        let sc = Scenario::new(vec![owner(&[Push(1), PopBottom]), vec![PopTop]]);
        let rep = explore_on(
            &sc,
            SimDeque::new().with_mem_model(MemModel::ThiefLoadLoadReordered),
        );
        assert!(
            !rep.ok(),
            "reordered thief should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
        let ordered = explore(&sc, true);
        assert!(
            ordered.ok(),
            "in-order: {:?}",
            ordered.example.as_ref().map(|v| &v.reason)
        );
    }

    /// A growth event racing concurrent popTops: with the faithful
    /// copy-on-grow protocol (the one `crate::growable` implements),
    /// every interleaving satisfies the relaxed semantics.
    #[test]
    fn growth_racing_poptop_is_clean_when_copied() {
        use crate::sim_deque::SimDeque;
        use ProgOp::*;
        // cap = 1, so the second push grows the array while the thieves'
        // popTops may be mid-flight (between their slot read and cas).
        let scenarios = [
            Scenario::new(vec![owner(&[Push(1), Push(2)]), vec![PopTop]]),
            Scenario::new(vec![
                owner(&[Push(1), Push(2), PopBottom]),
                vec![PopTop],
                vec![PopTop],
            ]),
        ];
        for (i, sc) in scenarios.iter().enumerate() {
            let rep = explore_on(sc, SimDeque::with_growth(true, 1, true));
            assert!(rep.histories > 0);
            assert!(
                rep.ok(),
                "scenario {i} violated: {:?}",
                rep.example.as_ref().map(|v| &v.reason)
            );
        }
    }

    /// INV-SB-REVAL necessity, exhaustively: the stale-`bot` chain
    /// (`revalidate = false`) double-takes against the owner's keep-path
    /// pops somewhere in the interleaving space — the checker must find
    /// it. Three pushes and two aggressive pops around a 2-task grab is
    /// the minimal shape: the thief's bound (bot = 3) goes stale while
    /// the owner keep-pops indices 2 and 1, and the chain's second cas
    /// re-takes index 1.
    #[test]
    fn batch_stale_bot_chain_is_caught() {
        use ProgOp::*;
        let sc = BatchScenario {
            owner: owner(&[Push(1), Push(2), Push(3), PopBottom, PopBottom]),
            thieves: vec![vec![ThiefOp::Batch(2)]],
        };
        let rep = explore_batches(&sc, SimDeque::new(), false);
        assert!(
            !rep.ok(),
            "stale-bot chain should violate the semantics somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("consumed twice") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
    }

    /// The shipped re-validated chain is clean over the same scenario —
    /// and over a mixed one where a second thief single-steals — on both
    /// the plain deque and the growable one (growth racing a mid-chain
    /// grab).
    #[test]
    fn batch_revalidated_chain_is_clean() {
        use ProgOp::*;
        let scenarios = [
            BatchScenario {
                owner: owner(&[Push(1), Push(2), Push(3), PopBottom, PopBottom]),
                thieves: vec![vec![ThiefOp::Batch(2)]],
            },
            BatchScenario {
                owner: owner(&[Push(1), Push(2), PopBottom]),
                thieves: vec![vec![ThiefOp::Batch(2)], vec![ThiefOp::PopTop]],
            },
        ];
        for (i, sc) in scenarios.iter().enumerate() {
            let rep = explore_batches(sc, SimDeque::new(), true);
            assert!(rep.histories > 0);
            assert!(
                rep.ok(),
                "scenario {i} violated: {:?}",
                rep.example.as_ref().map(|v| &v.reason)
            );
        }
        // Growth racing a mid-chain grab (cap = 1: the second push
        // replaces the buffer while the batch may hold a stale bound).
        let rep = explore_batches(&scenarios[0], SimDeque::with_growth(true, 1, true), true);
        assert!(
            rep.ok(),
            "growable violated: {:?}",
            rep.example.as_ref().map(|v| &v.reason)
        );
    }

    /// The broken growth variant — publish a fresh buffer without copying
    /// the live region — is caught by the checker: a thief whose slot
    /// read lands after the growth consumes a value that was never
    /// pushed (the zeroed slot).
    #[test]
    fn growth_without_copy_is_caught() {
        use crate::sim_deque::SimDeque;
        use ProgOp::*;
        let sc = Scenario::new(vec![owner(&[Push(1), Push(2)]), vec![PopTop]]);
        let rep = explore_on(&sc, SimDeque::with_growth(true, 1, false));
        assert!(
            !rep.ok(),
            "no-copy growth should violate conservation somewhere in {} histories",
            rep.histories
        );
        let ex = rep.example.unwrap();
        assert!(
            ex.reason.contains("never pushed") || ex.reason.contains("no linearization"),
            "unexpected reason: {}",
            ex.reason
        );
    }
}
