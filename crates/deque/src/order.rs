//! Memory-ordering profiles for the hot-path deque protocol.
//!
//! The Figure-5 pseudocode is written against sequential consistency; the
//! §3.3 race analysis is what licenses anything weaker. This module names
//! every ordering the protocol uses, so [`crate::atomic`] and
//! [`crate::growable`] can be instantiated either with the minimal correct
//! protocol ([`RelaxedProtocol`]) or with blanket `SeqCst` on every access
//! ([`SeqCstProtocol`]) — the latter is the measured *baseline* for the
//! `hotpath` benchmarks and the crate-wide default when the
//! `seqcst-fallback` cargo feature is enabled, so behavioural equivalence
//! of the two can be pinned by running the same test suite under both.
//!
//! # The protocol invariants
//!
//! Each relaxed access in the deque cites one of these by name (the
//! DESIGN.md §7 table maps them back to the Figure 4/5 lines):
//!
//! * **INV-OWNER (owner-private reads)** — `bot` (and the growable
//!   deque's buffer pointer) has a *single writer*: the owner. Per-location
//!   coherence alone guarantees the owner reads its own latest write, so
//!   owner loads of owner-written locations need no ordering.
//! * **INV-PUSH (push publication)** — `pushBottom` stores the node into
//!   `deq[bot]` and *then* stores `bot+1` with `Release`; a thief that
//!   `Acquire`-loads the advanced `bot` therefore sees the slot contents.
//!   Slot stores themselves can be `Relaxed`.
//! * **INV-FENCE (the §3.3 store→load window)** — in `popBottom` the
//!   owner's claim (`store bot`) must become globally visible before its
//!   `age` load, and symmetrically a thief's `age` load must be ordered
//!   before its `bot` load; otherwise owner and thief can each observe a
//!   pre-race snapshot and both take the same entry (a store-buffering
//!   outcome). One `SeqCst` fence on each side — the only full fences in
//!   the protocol — closes the window. This is the reordering the model
//!   checker's [`crate::sim_deque::MemModel`] variants reintroduce (and
//!   catch).
//! * **INV-RESET (reset publication)** — the owner writes `bot = 0`
//!   *before* publishing the reset `age` (tag bump, `top = 0`) with
//!   `Release` (the reset CAS or the lost-race store). A thief whose
//!   `Acquire` load of `age` observes the reset therefore also observes
//!   `bot = 0` and reports Empty instead of acting on a stale large `bot`.
//! * **INV-STEAL-HB (steal synchronizes slot reuse)** — a successful
//!   `popTop` CAS is a release-acquire RMW; the owner observes the stolen
//!   `top` either through its `Acquire` `age` load or through the
//!   `Acquire` failure load of its reset CAS before it ever resets `bot`
//!   and rewrites low slots. The thief's pre-CAS slot read is sequenced
//!   before its CAS, so it happens-before any such rewrite — a validated
//!   steal can never return a value from the *next* epoch.
//! * **INV-TAG (tag validation)** — a thief's slot read may be arbitrarily
//!   stale; the CAS on the whole `age` word (tag included) fails for any
//!   read taken before a reset, so a stale read is never *validated*
//!   (§3.3). This is what lets slot loads stay `Relaxed`.
//!
//! # Why the steal CAS is `SeqCst`, not `AcqRel`
//!
//! The two fences of INV-FENCE order each *pair* of racing fences, but
//! with three agents that is not enough: let thief 1 steal entry `top`
//! (CAS), the owner fast-path-pop entry `bot-1 = top+1`, and thief 2 read
//! `age` *after* thief 1's CAS but `bot` from *before* the owner's claim.
//! If thief 1's CAS is only `AcqRel` it takes part in no total order, so
//! the execution where thief 2's fence precedes the owner's fence — yet
//! the owner's `age` load still misses the CAS and thief 2's `bot` load
//! still misses the claim — is allowed, and thief 2 re-steals the entry
//! the owner took. Making the successful steal CAS `SeqCst` puts it in
//! the single total order `S`: thief 2's pre-fence `age` read of the CAS
//! forces `CAS <_S fence(thief 2) <_S fence(owner)`, so the owner's
//! post-fence `age` load must see the advanced `top` and leaves the entry
//! to the thieves. (This mirrors the published weak-memory Chase–Lev
//! protocol, where the steal CAS is likewise `SeqCst`.) The *owner's*
//! reset CAS needs only `AcqRel`: the last-entry race it arbitrates is
//! per-location coherence on `age`, plus INV-RESET/INV-STEAL-HB above.

use std::sync::atomic::{fence, Ordering};

/// A memory-ordering assignment for the ABP protocol. Implemented by
/// exactly two types: [`RelaxedProtocol`] (the minimal correct protocol)
/// and [`SeqCstProtocol`] (blanket `SeqCst`, the benchmark baseline and
/// the `seqcst-fallback` default).
pub trait OrderProfile: Copy + Default + Send + Sync + 'static {
    /// Accesses with no inter-thread obligation of their own: owner loads
    /// of owner-written locations (INV-OWNER), slot accesses validated by
    /// the tag CAS (INV-TAG), and stores published by a later release
    /// operation (INV-PUSH, INV-RESET).
    const RELAXED: Ordering;
    /// Loads that must observe a matching `RELEASE` publication
    /// (INV-PUSH, INV-RESET, INV-STEAL-HB).
    const ACQUIRE: Ordering;
    /// Stores that publish prior writes (INV-PUSH, INV-RESET).
    const RELEASE: Ordering;
    /// Success ordering of the owner's reset CAS: `Release` publishes the
    /// `bot = 0` reset (INV-RESET); `Acquire` is free on an RMW and pairs
    /// with a winning thief's CAS (INV-STEAL-HB).
    const RESET_CAS: Ordering;
    /// Failure ordering of the owner's reset CAS: the failure load reads
    /// the winning thief's release CAS, and the owner goes on to reset
    /// `bot` and reuse low slots — it must `Acquire` (INV-STEAL-HB).
    const RESET_CAS_FAIL: Ordering;
    /// Success ordering of the thief's steal CAS: must participate in the
    /// SeqCst total order — see the module docs ("Why the steal CAS is
    /// `SeqCst`").
    const STEAL_CAS: Ordering;
    /// Failure ordering of the thief's steal CAS: the thief abandons the
    /// attempt, publishing and acquiring nothing.
    const STEAL_CAS_FAIL: Ordering;

    /// The owner half of INV-FENCE: ordered between `popBottom`'s claim
    /// store and its `age` load.
    fn owner_fence();
    /// The thief half of INV-FENCE: ordered between `popTop`'s `age` load
    /// and its `bot` load.
    fn thief_fence();
}

/// The minimal correct protocol: relaxed owner-local traffic, a `Release`
/// publish on `pushBottom`, `Acquire` loads where entries are read, an
/// `AcqRel` reset CAS, a `SeqCst` steal CAS, and one `SeqCst` fence on
/// each side of the §3.3 window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RelaxedProtocol;

impl OrderProfile for RelaxedProtocol {
    const RELAXED: Ordering = Ordering::Relaxed;
    const ACQUIRE: Ordering = Ordering::Acquire;
    const RELEASE: Ordering = Ordering::Release;
    const RESET_CAS: Ordering = Ordering::AcqRel;
    const RESET_CAS_FAIL: Ordering = Ordering::Acquire;
    const STEAL_CAS: Ordering = Ordering::SeqCst;
    const STEAL_CAS_FAIL: Ordering = Ordering::Relaxed;

    #[inline]
    fn owner_fence() {
        // INV-FENCE, owner side. The one full fence `popBottom` pays.
        fence(Ordering::SeqCst);
    }

    #[inline]
    fn thief_fence() {
        // INV-FENCE, thief side. Paid only on steal attempts.
        fence(Ordering::SeqCst);
    }
}

/// Blanket `SeqCst` on every access — the pre-relaxation baseline. Every
/// access is totally ordered, so the INV-FENCE fences are redundant and
/// compile to nothing (matching the historical all-SeqCst code exactly).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SeqCstProtocol;

impl OrderProfile for SeqCstProtocol {
    const RELAXED: Ordering = Ordering::SeqCst;
    const ACQUIRE: Ordering = Ordering::SeqCst;
    const RELEASE: Ordering = Ordering::SeqCst;
    const RESET_CAS: Ordering = Ordering::SeqCst;
    const RESET_CAS_FAIL: Ordering = Ordering::SeqCst;
    const STEAL_CAS: Ordering = Ordering::SeqCst;
    const STEAL_CAS_FAIL: Ordering = Ordering::SeqCst;

    #[inline]
    fn owner_fence() {}

    #[inline]
    fn thief_fence() {}
}

/// The profile used by [`crate::new`] / [`crate::new_growable`] and hence
/// by every runtime built on this crate: [`RelaxedProtocol`] normally,
/// [`SeqCstProtocol`] under the `seqcst-fallback` feature (behavioural
/// equivalence of the two is pinned in CI by running the linearizability
/// and injector suites under both settings).
#[cfg(not(feature = "seqcst-fallback"))]
pub type DefaultProtocol = RelaxedProtocol;
/// The profile used by [`crate::new`] / [`crate::new_growable`]: the
/// `seqcst-fallback` feature is enabled, so it is [`SeqCstProtocol`].
#[cfg(feature = "seqcst-fallback")]
pub type DefaultProtocol = SeqCstProtocol;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seqcst_profile_is_blanket() {
        for o in [
            SeqCstProtocol::RELAXED,
            SeqCstProtocol::ACQUIRE,
            SeqCstProtocol::RELEASE,
            SeqCstProtocol::RESET_CAS,
            SeqCstProtocol::RESET_CAS_FAIL,
            SeqCstProtocol::STEAL_CAS,
            SeqCstProtocol::STEAL_CAS_FAIL,
        ] {
            assert_eq!(o, Ordering::SeqCst);
        }
    }

    #[test]
    fn relaxed_profile_keeps_the_steal_cas_seqcst() {
        // The one place the relaxed protocol deliberately stays SeqCst
        // (three-agent store-buffering; see module docs).
        assert_eq!(RelaxedProtocol::STEAL_CAS, Ordering::SeqCst);
        assert_ne!(RelaxedProtocol::RELAXED, Ordering::SeqCst);
    }
}
