//! Fence-free work-stealing with multiplicity (Castañeda & Piña,
//! arXiv:2008.04424), adapted to the runtime's exactly-once contract.
//!
//! The ABP protocol of [`crate::atomic`] pays a `cas` on the single shared
//! `age` word for every steal and keeps one full fence on each side of the
//! §3.3 owner/thief window. This module implements the other end of the
//! design space: `top` and `bot` are *plain read/write hints* — thieves
//! advance `top` with an unconditional store, the owner retracts `bot`
//! with an unconditional store, and **nobody ever retries a `cas` on a
//! contended word**. The price named by the source paper is
//! *multiplicity*: two thieves that read the same `top` both extract the
//! same task, and a relaxed work-stealing spec has to allow each task to
//! be taken up to once per process.
//!
//! # The once-guard: where multiplicity is paid for
//!
//! A scheduler cannot hand the same job to two workers unless execution is
//! idempotent, and the runtime's jobs are not (a `StackJob` frame is dead
//! the moment its latch is set — a duplicate winner would read freed
//! stack). The runtime's contract is therefore *claim before execute*,
//! and the claim state must live somewhere that outlives the job. It
//! lives here, in the deque: a `claims` word per slot, versioned by an
//! era counter so it is immune to slot reuse, consulted by exactly one
//! `compare_exchange` per extraction:
//!
//! * `claims[i]` **even** — era `claims[i]` of slot `i` holds a live,
//!   unextracted task;
//! * `claims[i]` **odd** — the slot's current occupant (if any) has been
//!   extracted; the slot is reusable by the owner.
//!
//! A push bumps the slot's claim word from odd to even (`c + 1`); an
//! extraction — owner pop or guarded steal — bumps it from even to odd
//! with a single `compare_exchange(c, c + 1)`. The counter is monotonic
//! per slot, every value occurs exactly once, so a stale thief holding
//! yesterday's era can never claim today's occupant by accident (the ABA
//! defense that `tag` provides in ABP). Losing the guard is reported as
//! [`Steal::Duplicate`] — the extraction attempt raced an extraction of
//! the same item and lost — which the pool counts (`duplicates`) but
//! treats like a miss.
//!
//! Note what the guard is *not*: it is not a retry loop, and it is not on
//! a contended word. Each extraction performs exactly one
//! `compare_exchange` on a slot-private word; two processes collide on the
//! same word only when they race for the *same item*, which is precisely
//! the duplicate case being resolved. The steal fast path has no `cas`
//! the way ABP's does — there is no word every thief must win in turn.
//!
//! # Soundness: claims are ground truth, `top`/`bot` are hints
//!
//! All correctness flows from the claim protocol; the index words only
//! filter which slot a process looks at. Every hint failure degrades to
//! a counted non-event:
//!
//! * a stale `top` aims a thief at a claimed slot → the guard fails →
//!   [`Steal::Duplicate`];
//! * plain `top` stores can go backwards (a slow thief overwrites a
//!   faster one's advance) → slots are re-examined → more `Duplicate`s;
//! * a stale `top` above the live region → spurious [`Steal::Empty`] —
//!   legal under the relaxed spec, the thief simply rescans;
//! * the owner never consults `top` to drain: `pop_bottom` walks `bot`
//!   downward claiming as it goes, so every task the owner pushed is
//!   extracted by *someone* before the owner observes its deque empty.
//!
//! The value a successful claimant returns is proved fresh by a
//! two-sided argument (INV-FF-VAL below): the `Acquire` read of the even
//! claim word pins the task read to *at least* that era's store, and the
//! success of the `compare_exchange` pins it to *at most* that era —
//! the next era's task store is sequenced after the owner observes this
//! very claim.
//!
//! The exhaustive interleaving checker for this protocol (raw multiplicity
//! bound and guarded exactly-once, including slot-reuse scenarios) lives in
//! [`crate::multiplicity`]; real-thread histories are judged by
//! `deque::history::check_multiplicity` in `tests/atomic_linearizability.rs`.
//!
//! # Raw mode for the checkers
//!
//! [`FenceFreeStealer::steal_relaxed`] is the paper's unguarded protocol —
//! reads and a plain `top` store, no guard — so tests can observe genuine
//! duplicate *extractions* (not just lost races). Its multiplicity is
//! bounded structurally: the method keeps a per-handle cursor so one
//! stealer handle never re-extracts the same slot, giving at most
//! `1 (owner) + #handles` extractions per task — the per-process
//! multiplicity bound of the source paper. The runtime never calls it.

use crate::atomic::{batch_want, PushError, Steal, StolenBatch};
use crate::word::Word;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Pads a word onto its own cache line (same rationale as
/// [`crate::atomic`]: `top` is stored by every scanning thief while `bot`
/// is stored by the owner on every push/pop).
#[repr(align(128))]
struct Line<T>(T);

struct Inner<T: Word> {
    /// Thief-side hint: index of the next slot to steal. Written by
    /// thieves with plain (Relaxed) stores — may regress, may run ahead.
    /// Also healed by the owner when it observes `top > bot` after a
    /// drain (INV-FF-HEAL).
    top: Line<AtomicU64>,
    /// Owner-side index one past the newest task. Advanced on push
    /// (Release — this is what publishes a new era to thieves,
    /// INV-FF-PUB), retracted during pop's walk-down (Relaxed — a
    /// retraction carries no data, INV-FF-HINT).
    bot: Line<AtomicU64>,
    /// Per-slot era/claim words: even = live, odd = extracted/free.
    /// Initialized to 1 ("era 0 already extracted"). Strictly monotonic;
    /// see module docs.
    claims: Box<[AtomicU64]>,
    /// Task payloads, valid for the slot's current even era.
    tasks: Box<[AtomicU64]>,
    _marker: PhantomData<T>,
}

/// The owner handle: `put` (push) and `take` (pop). `Send` but `!Sync`,
/// like [`crate::atomic::Worker`] — the protocol requires a unique owner.
pub struct FenceFreeWorker<T: Word> {
    inner: Arc<Inner<T>>,
    _not_sync: PhantomData<std::cell::Cell<()>>,
}

// The owner may migrate between OS threads, never be shared by two.
unsafe impl<T: Word> Send for FenceFreeWorker<T> {}

/// A thief handle: guarded `steal` (exactly-once via the claim word) plus
/// the unguarded [`steal_relaxed`](FenceFreeStealer::steal_relaxed) used
/// by the multiplicity checkers.
pub struct FenceFreeStealer<T: Word> {
    inner: Arc<Inner<T>>,
    /// Raw-mode cursor: highest slot index this handle has already
    /// examined via `steal_relaxed`, so one handle never re-extracts the
    /// same slot (the per-process multiplicity bound). Unused by the
    /// guarded path.
    cursor: u64,
}

impl<T: Word> Clone for FenceFreeStealer<T> {
    fn clone(&self) -> Self {
        FenceFreeStealer {
            inner: Arc::clone(&self.inner),
            cursor: self.cursor,
        }
    }
}

/// Creates a fence-free deque with space for `capacity` entries, returning
/// the unique owner handle and a cloneable stealer handle.
///
/// ```
/// use abp_deque::fence_free::new_fence_free;
/// use abp_deque::Steal;
///
/// let (worker, stealer) = new_fence_free::<u64>(64);
/// worker.push_bottom(1).unwrap();
/// worker.push_bottom(2).unwrap();
/// // Owner pops LIFO at the bottom; thieves extract FIFO-ish at the top.
/// assert_eq!(worker.pop_bottom(), Some(2));
/// assert_eq!(stealer.steal(), Steal::Taken(1));
/// assert_eq!(stealer.steal(), Steal::Empty);
/// ```
///
/// As with the fixed-size ABP deque, `capacity` bounds the *bottom index*,
/// not the instantaneous size: `bot` only returns toward zero as the owner
/// pops, so a workload where thieves keep the deque non-empty forever can
/// push the index to `capacity`, at which point
/// [`FenceFreeWorker::push_bottom`] reports [`PushError`] instead of
/// overwriting a live entry. Size generously.
pub fn new_fence_free<T: Word>(capacity: usize) -> (FenceFreeWorker<T>, FenceFreeStealer<T>) {
    assert!(capacity >= 1 && capacity <= u32::MAX as usize);
    let claims = (0..capacity).map(|_| AtomicU64::new(1)).collect();
    let tasks = (0..capacity).map(|_| AtomicU64::new(0)).collect();
    let inner = Arc::new(Inner {
        top: Line(AtomicU64::new(0)),
        bot: Line(AtomicU64::new(0)),
        claims,
        tasks,
        _marker: PhantomData,
    });
    (
        FenceFreeWorker {
            inner: Arc::clone(&inner),
            _not_sync: PhantomData,
        },
        FenceFreeStealer { inner, cursor: 0 },
    )
}

impl<T: Word> FenceFreeWorker<T> {
    /// `put`: write the task, open the slot's next even era, advance `bot`.
    /// Owner-only; plain stores end to end (the single Release on `bot` is
    /// a store, not a fence or `cas`).
    pub fn push_bottom(&self, node: T) -> Result<(), PushError<T>> {
        let inner = &*self.inner;
        // Owner is bot's sole writer; coherence alone yields its own
        // latest value.
        let b = inner.bot.0.load(Ordering::Relaxed);
        if b as usize >= inner.claims.len() {
            return Err(PushError(node));
        }
        let slot = b as usize;
        // INV-FF-REUSE: Acquire pairs with the Release of the claimant's
        // `compare_exchange`, so our overwrite of `tasks[slot]` below
        // happens-after the claimant's read of the old occupant — we never
        // clobber a value a winner is still about to return. The walk-down
        // invariant (every index >= bot is claimed) guarantees the word is
        // odd here.
        let c = inner.claims[slot].load(Ordering::Acquire);
        debug_assert!(c & 1 == 1, "pushing onto a live slot");
        // Payload first; published by the era store below.
        inner.tasks[slot].store(node.to_word(), Ordering::Relaxed);
        // INV-FF-VAL (lower bound): a thief that Acquire-reads this even
        // era also observes the task store above.
        inner.claims[slot].store(c + 1, Ordering::Release);
        // INV-FF-HEAL: after a full drain `bot` returns to the walk-down
        // floor while `top` stays wherever the thieves left it; if we
        // didn't pull `top` back the new era would be unstealable (only
        // poppable) until `bot` grew past the stale `top`. A concurrent
        // slow thief can overwrite the heal with a stale advance — the
        // next push heals again, and in the window the deque is merely
        // steal-invisible, never incorrect (claims are ground truth).
        if inner.top.0.load(Ordering::Relaxed) > b {
            inner.top.0.store(b, Ordering::Relaxed);
        }
        // INV-FF-PUB: Release orders the era store (and every earlier
        // era's stores) before the index advance, so a thief that
        // Acquire-reads `bot > h` sees slot `h`'s current era word.
        inner.bot.0.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// `take`: walk `bot` downward, claiming the newest unextracted task.
    /// Returns `None` only when every task this owner ever pushed has been
    /// extracted (by the owner or by thieves) — the hints can be
    /// arbitrarily stale and this still holds, because the walk consults
    /// only the claim words.
    pub fn pop_bottom(&self) -> Option<T> {
        let inner = &*self.inner;
        let mut b = inner.bot.0.load(Ordering::Relaxed);
        while b > 0 {
            let idx = b - 1;
            let slot = idx as usize;
            // INV-FF-HINT: retract before claiming so thieves stop
            // targeting the entry we are about to fight for. Relaxed: a
            // retraction publishes nothing; thieves that read the stale
            // larger value just lose the claim race below.
            inner.bot.0.store(idx, Ordering::Relaxed);
            // Slot `idx` is the highest index the owner ever pushed to
            // this slot, so the word is either this era (even — live) or
            // this era + 1 (odd — a thief won it).
            let c = inner.claims[slot].load(Ordering::Relaxed);
            if c & 1 == 0
                && inner.claims[slot]
                    .compare_exchange(c, c + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
            {
                // Our own push wrote this payload; per-location coherence
                // suffices to read it back.
                return Some(T::from_word(inner.tasks[slot].load(Ordering::Relaxed)));
            }
            // A thief extracted it; keep walking down. Amortized O(1):
            // each index is walked past at most once per era.
            b = idx;
        }
        None
    }

    /// Best-effort size hint (may be stale under concurrent steals, and
    /// `top` may transiently exceed `bot`).
    pub fn len_hint(&self) -> usize {
        len_hint(&self.inner)
    }

    /// A new thief handle for this deque.
    pub fn stealer(&self) -> FenceFreeStealer<T> {
        FenceFreeStealer {
            inner: Arc::clone(&self.inner),
            cursor: 0,
        }
    }
}

impl<T: Word> FenceFreeStealer<T> {
    /// Guarded `steal`: the paper's read/write protocol for locating the
    /// oldest task, plus the one-shot claim `compare_exchange` that makes
    /// extraction exactly-once. Never aborts: there is no `cas` to lose
    /// and no lock to miss — the three outcomes are [`Steal::Taken`],
    /// [`Steal::Empty`], and [`Steal::Duplicate`] (lost the claim race for
    /// an item someone else extracted).
    pub fn steal(&self) -> Steal<T> {
        let inner = &*self.inner;
        // Hints. `top` is Relaxed (multi-writer plain stores, may regress
        // — every consequence is a counted non-event, see module docs);
        // `bot` is Acquire, pairing with INV-FF-PUB so that `h < b`
        // implies slot `h`'s era word for index `h` is visible.
        let h = inner.top.0.load(Ordering::Relaxed);
        let b = inner.bot.0.load(Ordering::Acquire);
        if h >= b {
            return Steal::Empty;
        }
        let slot = h as usize;
        // INV-FF-VAL (lower bound): Acquire pairs with the owner's
        // Release store of this even era, so the task read below returns
        // at least this era's payload.
        let c = inner.claims[slot].load(Ordering::Acquire);
        if c & 1 == 1 {
            // Already extracted (or a stale hint aimed us at a completed
            // era). Advance the hint past it and report the lost race.
            advance_top(inner, h);
            return Steal::Duplicate;
        }
        let v = inner.tasks[slot].load(Ordering::Relaxed);
        // The paper's plain-store advance — before the claim resolves, so
        // competing thieves move on to the next slot instead of piling
        // onto this one.
        advance_top(inner, h);
        // INV-FF-VAL (upper bound): if this succeeds, the slot's era was
        // still `c` — the owner opens era `c + 2` only after an Acquire
        // read of `c + 1` (INV-FF-REUSE), i.e. after this very exchange,
        // so the payload read above cannot have been a later era's value.
        // Release on success hands the claimant's reads to that Acquire.
        match inner.claims[slot].compare_exchange(c, c + 1, Ordering::AcqRel, Ordering::Relaxed) {
            Ok(_) => Steal::Taken(T::from_word(v)),
            Err(_) => Steal::Duplicate,
        }
    }

    /// Batched guarded steal: run the once-guard claim over a top range
    /// `[top, top + want)` under **one** `bot` Acquire and **one** final
    /// `top` hint store.
    ///
    /// Range claims are safe here by construction (INV-SB-GUARD): the
    /// per-slot claim word is the ground truth for extraction, so
    /// claiming a range is just `want` independent slot claims — there
    /// is no shared word whose stale read could hand two processes the
    /// same task. A slot inside the range that is already odd (or whose
    /// exchange loses) counts as a duplicate exactly as in
    /// [`steal`](FenceFreeStealer::steal); the batch never aborts. The
    /// single trailing hint store replaces `want` per-steal stores —
    /// legal because `top` is only a hint [INV-FF-HINT].
    pub fn steal_batch(&self, max: usize) -> StolenBatch<T> {
        let mut out = StolenBatch::empty();
        self.steal_batch_into(max, &mut out);
        out
    }

    /// [`steal_batch`](FenceFreeStealer::steal_batch) into a
    /// caller-owned buffer: `out` is cleared and refilled, so a reused
    /// buffer makes the grab allocation-free in steady state. The range
    /// is borrowed as two slices up front, paying the bounds checks
    /// once per grab instead of once per slot.
    pub fn steal_batch_into(&self, max: usize, out: &mut StolenBatch<T>) {
        out.clear();
        let inner = &*self.inner;
        // Hints, exactly as in `steal`: `h < b` publishes every era word
        // below `b` [INV-FF-PUB].
        let h = inner.top.0.load(Ordering::Relaxed);
        let b = inner.bot.0.load(Ordering::Acquire);
        if h >= b {
            return;
        }
        let avail = (b - h) as usize;
        let want = batch_want(avail, max);
        if want == 0 {
            // Zero-cap grab: touch nothing, not even the `top` hint — a
            // regressed hint would make rivals re-pay duplicates.
            return;
        }
        let end = h + want as u64;
        out.tasks.reserve(want);
        let claims = &inner.claims[h as usize..end as usize];
        let tasks = &inner.tasks[h as usize..end as usize];
        for (claim, task) in claims.iter().zip(tasks) {
            // INV-FF-VAL per slot, unchanged from the single steal.
            let c = claim.load(Ordering::Acquire);
            if c & 1 == 1 {
                out.duplicates += 1;
                continue;
            }
            let v = task.load(Ordering::Relaxed);
            match claim.compare_exchange(c, c + 1, Ordering::AcqRel, Ordering::Relaxed) {
                Ok(_) => out.tasks.push(T::from_word(v)),
                Err(_) => out.duplicates += 1,
            }
        }
        // One plain hint store for the whole range [INV-FF-HINT]; a
        // racing thief's stale store can regress it, which the next
        // grab re-pays as duplicates — a counted non-event.
        inner.top.0.store(end, Ordering::Relaxed);
    }

    /// The source paper's unguarded steal: reads plus a plain `top`
    /// advance, **no claim** — the same item can be extracted by several
    /// handles (multiplicity). Test-only surface for the multiplicity
    /// checkers; the runtime never calls this.
    ///
    /// The per-handle cursor realizes the paper's per-process bound: one
    /// handle never re-examines a slot, so a task is extracted at most
    /// once per handle (plus once by the owner, whose walk-down ignores
    /// raw extractions entirely). The bound is per *handle*: clone a new
    /// handle per thief.
    pub fn steal_relaxed(&mut self) -> Steal<T> {
        let inner = &*self.inner;
        let h = inner.top.0.load(Ordering::Relaxed).max(self.cursor);
        let b = inner.bot.0.load(Ordering::Acquire);
        if h >= b {
            return Steal::Empty;
        }
        let slot = h as usize;
        // INV-FF-PUB's Acquire on `bot` already published the payload for
        // index `h` (the task store is sequenced before the bot advance).
        let v = inner.tasks[slot].load(Ordering::Relaxed);
        self.cursor = h + 1;
        inner.top.0.store(h + 1, Ordering::Relaxed);
        Steal::Taken(T::from_word(v))
    }

    /// Best-effort size hint (may be stale).
    pub fn len_hint(&self) -> usize {
        len_hint(&self.inner)
    }
}

/// The paper's thief-side `top <- h + 1`: an unconditional plain store.
/// Slow thieves can regress the hint; see module docs.
fn advance_top<T: Word>(inner: &Inner<T>, h: u64) {
    inner.top.0.store(h + 1, Ordering::Relaxed);
}

fn len_hint<T: Word>(inner: &Inner<T>) -> usize {
    let b = inner.bot.0.load(Ordering::Relaxed);
    let t = inner.top.0.load(Ordering::Relaxed);
    b.saturating_sub(t) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn lifo_bottom_fifo_top() {
        let (w, s) = new_fence_free::<u64>(8);
        assert_eq!(w.pop_bottom(), None);
        assert_eq!(s.steal(), Steal::Empty);
        for v in 0..4 {
            w.push_bottom(v).unwrap();
        }
        assert_eq!(s.steal(), Steal::Taken(0));
        assert_eq!(w.pop_bottom(), Some(3));
        assert_eq!(s.steal(), Steal::Taken(1));
        assert_eq!(w.pop_bottom(), Some(2));
        assert_eq!(w.pop_bottom(), None);
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn capacity_bounds_the_bottom_index_and_popping_reopens_it() {
        let (w, _s) = new_fence_free::<u64>(2);
        w.push_bottom(1).unwrap();
        w.push_bottom(2).unwrap();
        assert_eq!(w.push_bottom(3), Err(PushError(3)));
        assert_eq!(w.pop_bottom(), Some(2));
        // The walk-down freed index 1; the slot's era advances on reuse.
        w.push_bottom(4).unwrap();
        assert_eq!(w.pop_bottom(), Some(4));
        assert_eq!(w.pop_bottom(), Some(1));
        assert_eq!(w.pop_bottom(), None);
    }

    #[test]
    fn drained_slots_are_stealable_again_after_reuse() {
        let (w, s) = new_fence_free::<u64>(4);
        // Round 1: thieves drain everything; top ends at 2.
        w.push_bottom(10).unwrap();
        w.push_bottom(11).unwrap();
        assert_eq!(s.steal(), Steal::Taken(10));
        assert_eq!(s.steal(), Steal::Taken(11));
        assert_eq!(w.pop_bottom(), None); // owner walk-down resets bot to 0
                                          // Round 2: without INV-FF-HEAL the new era would be invisible to
                                          // thieves (top=2 > bot).
        w.push_bottom(20).unwrap();
        assert_eq!(s.steal(), Steal::Taken(20));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn raw_steal_duplicates_but_owner_drain_still_covers_everything() {
        let (w, s) = new_fence_free::<u64>(8);
        for v in 0..3 {
            w.push_bottom(v).unwrap();
        }
        // Two raw handles, both starting at cursor 0: genuine multiplicity.
        let mut t1 = s.clone();
        let mut t2 = s.clone();
        assert_eq!(t1.steal_relaxed(), Steal::Taken(0));
        // t2's view of top may already be advanced; rewind it to simulate
        // the race where both read top == 0.
        w.inner.top.0.store(0, Ordering::Relaxed);
        assert_eq!(t2.steal_relaxed(), Steal::Taken(0));
        // The cursor stops a single handle from re-extracting slot 0.
        w.inner.top.0.store(0, Ordering::Relaxed);
        assert_eq!(t1.steal_relaxed(), Steal::Taken(1));
        // Raw steals never claim, so the owner's guarded drain still
        // extracts every task exactly once.
        let mut drained = vec![];
        while let Some(v) = w.pop_bottom() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![0, 1, 2]);
    }

    #[test]
    fn guarded_extraction_is_exactly_once_under_a_thief_storm() {
        // 4 thieves race the owner for 20_000 tasks pushed in bursts;
        // every task must surface exactly once as Taken/popped, and raced
        // extractions must surface as Duplicate, never as a second Taken.
        const TASKS: u64 = 20_000;
        const THIEVES: usize = 4;
        let (w, s) = new_fence_free::<u64>(1 << 15);
        let done = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..THIEVES)
            .map(|_| {
                let s = s.clone();
                let done = Arc::clone(&done);
                std::thread::spawn(move || {
                    let mut got = vec![];
                    let mut dups = 0u64;
                    loop {
                        match s.steal() {
                            Steal::Taken(v) => got.push(v),
                            Steal::Duplicate => dups += 1,
                            Steal::Abort => unreachable!("fence-free never aborts"),
                            Steal::Empty => {
                                if done.load(Ordering::Acquire) {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    (got, dups)
                })
            })
            .collect();
        let mut popped = vec![];
        let mut v = 0;
        while v < TASKS {
            for _ in 0..64 {
                if v == TASKS {
                    break;
                }
                if w.push_bottom(v).is_ok() {
                    v += 1;
                } else {
                    // Ring full: drain a little.
                    if let Some(x) = w.pop_bottom() {
                        popped.push(x);
                    }
                }
            }
            if let Some(x) = w.pop_bottom() {
                popped.push(x);
            }
        }
        while let Some(x) = w.pop_bottom() {
            popped.push(x);
        }
        done.store(true, Ordering::Release);
        let mut counts: HashMap<u64, u32> = HashMap::new();
        for x in popped {
            *counts.entry(x).or_default() += 1;
        }
        for h in handles {
            let (got, _dups) = h.join().unwrap();
            for x in got {
                *counts.entry(x).or_default() += 1;
            }
        }
        assert_eq!(counts.len() as u64, TASKS, "every task extracted");
        for (task, n) in counts {
            assert_eq!(n, 1, "task {task} extracted {n} times");
        }
    }

    #[test]
    fn batch_claims_half_and_reports_claimed_slots_as_duplicates() {
        let (w, s) = new_fence_free::<u64>(16);
        for v in 0..8 {
            w.push_bottom(v).unwrap();
        }
        // An uncontended batch takes half the backlog in top order.
        let b = s.steal_batch(16);
        assert_eq!(b.tasks, vec![0, 1, 2, 3]);
        assert_eq!(b.duplicates, 0);
        assert!(!b.aborted, "fence-free never aborts");
        // Rewind the hint so the next batch rescans claimed slots: the
        // range walk surfaces them as duplicates, never a second Taken.
        w.inner.top.0.store(0, Ordering::Relaxed);
        let b = s.steal_batch(16);
        assert_eq!(b.tasks, Vec::<u64>::new());
        assert_eq!(b.duplicates, 4);
        // The trailing hint store healed top past the claimed prefix.
        let b = s.steal_batch(16);
        assert_eq!(b.tasks, vec![4, 5]);
        // Owner drains the rest exactly once.
        let mut rest = vec![];
        while let Some(v) = w.pop_bottom() {
            rest.push(v);
        }
        rest.sort_unstable();
        assert_eq!(rest, vec![6, 7]);
    }

    #[test]
    fn len_hint_tracks_roughly() {
        let (w, s) = new_fence_free::<u64>(8);
        assert_eq!(w.len_hint(), 0);
        w.push_bottom(1).unwrap();
        w.push_bottom(2).unwrap();
        assert_eq!(w.len_hint(), 2);
        assert_eq!(s.len_hint(), 2);
        let _ = s.steal();
        assert_eq!(w.len_hint(), 1);
    }
}
