//! Exhaustive interleaving checker for the fence-free multiplicity
//! protocol of [`crate::fence_free`].
//!
//! [`crate::model`] plays scripted owner/thief programs against the
//! stepped ABP deque and judges every interleaving against the paper's
//! relaxed *linearizable* semantics. The fence-free deque deliberately
//! is not linearizable to a deque — its spec is *work stealing with
//! multiplicity* (Castañeda & Piña): an extraction may be duplicated
//! across processes, bounded per process, and nothing may be lost. This
//! module is the same style of checker for that spec: the protocol is
//! re-expressed one shared-memory access per step, a DFS explores every
//! interleaving of the steps (sequentially consistent step semantics,
//! with full-state memoization so diamond interleavings are explored
//! once), and every reachable transition/terminal is judged against:
//!
//! * **conservation** — every extracted value was pushed, and each value
//!   is extracted at most `k` times, where `k = 1 (owner) + #raw
//!   handles` in raw mode and `k = 1` when all parties use the guard;
//! * **no loss** — at quiescence every pushed value has either been
//!   extracted at least once or is still live in the array (its slot's
//!   claim word is even and holds it).
//!
//! Both checks run over scenarios that include slot *reuse* (pop then
//! push at capacity 1), the regime where a stale-era thief is most
//! dangerous.
//!
//! Non-vacuity is demonstrated twice over: raw-mode scenarios reach
//! interleavings with a genuine multi-extraction (`saw_multi_extraction`),
//! and [`GuardMode::BrokenBlindStore`] — claim by plain store instead of
//! `compare_exchange`, the bug this checker exists to catch — is caught
//! extracting a value twice in guarded mode.
//!
//! [`ThiefMode::BatchGuarded`] steps the *batched* steal
//! (`steal_batch`): one invocation resolves a whole range of slots by
//! per-slot guard CAS with a single trailing `top = end` store. The same
//! judges apply — exactly-once under the CAS guard, no value lost in a
//! claimed range at quiescence — machine-checking INV-SB-GUARD against
//! every interleaving with owner pops, slot reuse, and rival thieves.

use std::collections::HashSet;

/// One owner-script instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OwnerOp {
    /// `put(v)`. Values must be unique and in `1..=64`.
    Push(u64),
    /// `take()`: the walk-down pop; the result is whatever the
    /// interleaving yields.
    Pop,
}

/// How a thief claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ThiefMode {
    /// The production steal: claim via `compare_exchange`, exactly-once.
    Guarded,
    /// The source paper's unguarded steal: no claim at all; per-handle
    /// multiplicity bounded by the cursor.
    Raw,
    /// The production *batched* steal (`steal_batch`): one invocation
    /// claims up to `max` slots (biased to half the visible backlog) by
    /// per-slot guard CAS, with a single trailing `top = end` store —
    /// the stepped mirror of `FenceFreeStealer::steal_batch` and its
    /// INV-SB-GUARD argument that range claims are safe because the
    /// claim words, not `top`, are ground truth.
    BatchGuarded { max: usize },
}

/// Claim mechanism under test — [`GuardMode::BrokenBlindStore`] exists
/// only to prove the checker rejects a broken guard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GuardMode {
    Cas,
    /// Claim with a plain store of `c + 1` (no compare): two racing
    /// claimants both "win". The checker must catch the double
    /// extraction this permits.
    BrokenBlindStore,
}

/// A scripted run: one owner, any number of thieves.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub capacity: usize,
    pub owner_ops: Vec<OwnerOp>,
    /// One entry per thief handle: (mode, number of steal invocations).
    pub thieves: Vec<(ThiefMode, usize)>,
    pub guard: GuardMode,
}

/// What the exploration saw, if no invariant was violated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Distinct full states visited (memoization hits excluded).
    pub states: usize,
    /// Quiescent states reached.
    pub terminals: usize,
    /// Some interleaving produced a `Duplicate` steal result.
    pub saw_duplicate_result: bool,
    /// Some interleaving extracted one value more than once (raw mode
    /// multiplicity actually exercised).
    pub saw_multi_extraction: bool,
    /// Largest per-value extraction count seen anywhere.
    pub max_multiplicity: u32,
}

// --- stepped machine ---------------------------------------------------

const MAX_VALUE: usize = 64;

#[derive(Clone, PartialEq, Eq, Hash)]
struct Shared {
    top: u64,
    bot: u64,
    claims: Vec<u64>,
    tasks: Vec<u64>,
}

/// Owner program counter. Locals ride in the variants; reads of `bot`
/// are free (the owner is its sole writer, coherence yields its own
/// value), so only accesses to `claims`/`tasks`/`top` and thief-visible
/// `bot` stores take a step.
#[derive(Clone, PartialEq, Eq, Hash)]
enum OwnerPc {
    Idle,
    /// push: about to read `claims[slot]`.
    PushReadClaim {
        v: u64,
    },
    /// push: about to write `tasks[slot] = v`.
    PushWriteTask {
        v: u64,
        c: u64,
    },
    /// push: about to write `claims[slot] = c + 1`.
    PushOpenEra {
        c: u64,
    },
    /// push: about to read `top` for the heal.
    PushReadTop,
    /// push: heal needed — about to write `top = bot`.
    PushHealTop,
    /// push: about to advance `bot`.
    PushAdvance,
    /// pop walk: about to retract `bot` to `b - 1`.
    PopRetract {
        b: u64,
    },
    /// pop walk: about to read `claims[slot]`.
    PopReadClaim {
        b: u64,
    },
    /// pop walk: about to claim (CAS) `claims[slot]: c -> c + 1`.
    PopClaim {
        b: u64,
        c: u64,
    },
}

/// Thief program counter for one steal invocation.
#[derive(Clone, PartialEq, Eq, Hash)]
enum ThiefPc {
    Idle,
    /// about to read `top`.
    ReadTop,
    /// about to read `bot`.
    ReadBot {
        h: u64,
    },
    /// guarded: about to read `claims[h]`.
    ReadClaim {
        h: u64,
    },
    /// about to read `tasks[h]`.
    ReadTask {
        h: u64,
        c: u64,
    },
    /// about to write `top = h + 1` (then claim, for the guarded path).
    AdvanceTop {
        h: u64,
        c: u64,
        v: u64,
    },
    /// guarded: about to CAS `claims[h]: c -> c + 1`.
    Claim {
        h: u64,
        c: u64,
        v: u64,
    },
    /// guarded, found slot already odd: about to write `top = h + 1`,
    /// then report `Duplicate`.
    AdvanceTopDup {
        h: u64,
    },
    /// batch: about to read `claims[i]`, claiming slots `[i, end)`.
    BatchReadClaim {
        i: u64,
        end: u64,
    },
    /// batch: about to read `tasks[i]`.
    BatchReadTask {
        i: u64,
        end: u64,
        c: u64,
    },
    /// batch: about to CAS `claims[i]: c -> c + 1`.
    BatchClaim {
        i: u64,
        end: u64,
        c: u64,
        v: u64,
    },
    /// batch: every slot in the range resolved; about to publish the
    /// single trailing hint `top = end`.
    BatchAdvanceTop {
        end: u64,
    },
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct Thief {
    mode: ThiefMode,
    steals_left: usize,
    cursor: u64,
    pc: ThiefPc,
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    shared: Shared,
    owner_ip: usize,
    owner_pc: OwnerPc,
    thieves: Vec<Thief>,
    /// Per-value extraction counts (index = value). Part of the state
    /// key: two paths only merge when their observable outputs agree.
    counts: Vec<u32>,
}

struct Explorer<'a> {
    scenario: &'a Scenario,
    seen: HashSet<State>,
    k: u32,
    outcome: Outcome,
}

/// Exhaustively explores every interleaving of the scenario.
///
/// Returns the exploration [`Outcome`], or a description of the first
/// invariant violation found.
pub fn explore(scenario: &Scenario) -> Result<Outcome, String> {
    let mut pushed = [false; MAX_VALUE + 1];
    for op in &scenario.owner_ops {
        if let OwnerOp::Push(v) = op {
            assert!(
                (1..=MAX_VALUE as u64).contains(v) && !pushed[*v as usize],
                "scenario values must be unique and in 1..=64"
            );
            pushed[*v as usize] = true;
        }
    }
    let raw_handles = scenario
        .thieves
        .iter()
        .filter(|(m, _)| *m == ThiefMode::Raw)
        .count() as u32;
    let k = 1 + raw_handles;
    let init = State {
        shared: Shared {
            top: 0,
            bot: 0,
            claims: vec![1; scenario.capacity],
            tasks: vec![0; scenario.capacity],
        },
        owner_ip: 0,
        owner_pc: OwnerPc::Idle,
        thieves: scenario
            .thieves
            .iter()
            .map(|&(mode, n)| Thief {
                mode,
                steals_left: n,
                cursor: 0,
                pc: ThiefPc::Idle,
            })
            .collect(),
        counts: vec![0; MAX_VALUE + 1],
    };
    let mut ex = Explorer {
        scenario,
        seen: HashSet::new(),
        k,
        outcome: Outcome {
            states: 0,
            terminals: 0,
            saw_duplicate_result: false,
            saw_multi_extraction: false,
            max_multiplicity: 0,
        },
    };
    // Iterative DFS (scenario step counts can stack past recursion
    // comfort on debug builds).
    let mut stack = vec![init];
    while let Some(state) = stack.pop() {
        if !ex.seen.insert(state.clone()) {
            continue;
        }
        ex.outcome.states += 1;
        let mut quiescent = true;
        // Owner step.
        if let Some(next) = ex.step_owner(&state)? {
            stack.push(next);
            quiescent = false;
        }
        // Each thief step.
        for t in 0..state.thieves.len() {
            if let Some(next) = ex.step_thief(&state, t)? {
                stack.push(next);
                quiescent = false;
            }
        }
        if quiescent {
            ex.outcome.terminals += 1;
            ex.check_no_loss(&state, &pushed)?;
        }
    }
    Ok(ex.outcome)
}

impl<'a> Explorer<'a> {
    fn record_extraction(&mut self, s: &mut State, v: u64, who: &str) -> Result<(), String> {
        let c = &mut s.counts[v as usize];
        *c += 1;
        if *c > 1 {
            self.outcome.saw_multi_extraction = true;
        }
        self.outcome.max_multiplicity = self.outcome.max_multiplicity.max(*c);
        if *c > self.k {
            return Err(format!(
                "value {v} extracted {} times by {who}; bound is k = {}",
                *c, self.k
            ));
        }
        Ok(())
    }

    /// At quiescence every pushed value is extracted or still live.
    fn check_no_loss(&self, s: &State, pushed: &[bool; MAX_VALUE + 1]) -> Result<(), String> {
        for (v, was_pushed) in pushed.iter().enumerate().skip(1) {
            if !was_pushed || s.counts[v] > 0 {
                continue;
            }
            let live = s
                .shared
                .claims
                .iter()
                .zip(&s.shared.tasks)
                .any(|(c, t)| c & 1 == 0 && *t == v as u64);
            if !live {
                return Err(format!(
                    "value {v} lost: never extracted and not live at quiescence"
                ));
            }
        }
        Ok(())
    }

    fn claim(&self, shared: &mut Shared, slot: usize, expected: u64) -> bool {
        match self.scenario.guard {
            GuardMode::Cas => {
                if shared.claims[slot] == expected {
                    shared.claims[slot] = expected + 1;
                    true
                } else {
                    false
                }
            }
            GuardMode::BrokenBlindStore => {
                // The bug under test: claim unconditionally.
                shared.claims[slot] = expected + 1;
                true
            }
        }
    }

    /// Executes the owner's next shared-memory access, if any.
    fn step_owner(&mut self, s: &State) -> Result<Option<State>, String> {
        let mut n = s.clone();
        let cap = n.shared.claims.len() as u64;
        let pc = match &n.owner_pc {
            OwnerPc::Idle => match self.scenario.owner_ops.get(n.owner_ip) {
                None => return Ok(None),
                Some(OwnerOp::Push(v)) => {
                    assert!(n.shared.bot < cap, "scenario overflows its capacity");
                    OwnerPc::PushReadClaim { v: *v }
                }
                Some(OwnerOp::Pop) => {
                    let b = n.shared.bot;
                    if b == 0 {
                        // take() observed empty: a local-only transition,
                        // folded into op completion.
                        n.owner_ip += 1;
                        OwnerPc::Idle
                    } else {
                        OwnerPc::PopRetract { b }
                    }
                }
            },
            OwnerPc::PushReadClaim { v } => {
                let slot = n.shared.bot as usize;
                let c = n.shared.claims[slot];
                assert!(c & 1 == 1, "walk-down invariant: slot at bot is reusable");
                OwnerPc::PushWriteTask { v: *v, c }
            }
            OwnerPc::PushWriteTask { v, c } => {
                let slot = n.shared.bot as usize;
                n.shared.tasks[slot] = *v;
                OwnerPc::PushOpenEra { c: *c }
            }
            OwnerPc::PushOpenEra { c } => {
                let slot = n.shared.bot as usize;
                n.shared.claims[slot] = c + 1;
                OwnerPc::PushReadTop
            }
            OwnerPc::PushReadTop => {
                if n.shared.top > n.shared.bot {
                    OwnerPc::PushHealTop
                } else {
                    OwnerPc::PushAdvance
                }
            }
            OwnerPc::PushHealTop => {
                n.shared.top = n.shared.bot;
                OwnerPc::PushAdvance
            }
            OwnerPc::PushAdvance => {
                n.shared.bot += 1;
                n.owner_ip += 1;
                OwnerPc::Idle
            }
            OwnerPc::PopRetract { b } => {
                n.shared.bot = b - 1;
                OwnerPc::PopReadClaim { b: *b }
            }
            OwnerPc::PopReadClaim { b } => {
                let slot = (b - 1) as usize;
                let c = n.shared.claims[slot];
                if c & 1 == 0 {
                    OwnerPc::PopClaim { b: *b, c }
                } else if b - 1 == 0 {
                    // Walked off the bottom: take() returns empty.
                    n.owner_ip += 1;
                    OwnerPc::Idle
                } else {
                    OwnerPc::PopRetract { b: b - 1 }
                }
            }
            OwnerPc::PopClaim { b, c } => {
                let slot = (b - 1) as usize;
                if self.claim(&mut n.shared, slot, *c) {
                    let v = n.shared.tasks[slot];
                    self.record_extraction(&mut n, v, "owner")?;
                    n.owner_ip += 1;
                    OwnerPc::Idle
                } else if b - 1 == 0 {
                    n.owner_ip += 1;
                    OwnerPc::Idle
                } else {
                    OwnerPc::PopRetract { b: b - 1 }
                }
            }
        };
        n.owner_pc = pc;
        Ok(Some(n))
    }

    /// Executes thief `t`'s next shared-memory access, if any.
    fn step_thief(&mut self, s: &State, t: usize) -> Result<Option<State>, String> {
        let mut n = s.clone();
        let mode = n.thieves[t].mode;
        let pc = match n.thieves[t].pc.clone() {
            ThiefPc::Idle => {
                if n.thieves[t].steals_left == 0 {
                    return Ok(None);
                }
                n.thieves[t].steals_left -= 1;
                ThiefPc::ReadTop
            }
            ThiefPc::ReadTop => {
                let h = n.shared.top.max(match mode {
                    ThiefMode::Raw => n.thieves[t].cursor,
                    ThiefMode::Guarded | ThiefMode::BatchGuarded { .. } => 0,
                });
                ThiefPc::ReadBot { h }
            }
            ThiefPc::ReadBot { h } => {
                if h >= n.shared.bot {
                    // Empty result; invocation complete.
                    ThiefPc::Idle
                } else {
                    match mode {
                        ThiefMode::Guarded => ThiefPc::ReadClaim { h },
                        ThiefMode::Raw => ThiefPc::ReadTask { h, c: 0 },
                        ThiefMode::BatchGuarded { max } => {
                            let avail = (n.shared.bot - h) as usize;
                            let end = h + crate::atomic::batch_want(avail, max) as u64;
                            if end == h {
                                // Zero-cap grab claims nothing.
                                ThiefPc::Idle
                            } else {
                                ThiefPc::BatchReadClaim { i: h, end }
                            }
                        }
                    }
                }
            }
            ThiefPc::ReadClaim { h } => {
                let c = n.shared.claims[h as usize];
                if c & 1 == 1 {
                    ThiefPc::AdvanceTopDup { h }
                } else {
                    ThiefPc::ReadTask { h, c }
                }
            }
            ThiefPc::ReadTask { h, c } => {
                let v = n.shared.tasks[h as usize];
                ThiefPc::AdvanceTop { h, c, v }
            }
            ThiefPc::AdvanceTop { h, c, v } => {
                n.shared.top = h + 1;
                match mode {
                    ThiefMode::Raw => {
                        n.thieves[t].cursor = h + 1;
                        self.record_extraction(&mut n, v, "raw thief")?;
                        ThiefPc::Idle
                    }
                    ThiefMode::Guarded => ThiefPc::Claim { h, c, v },
                    ThiefMode::BatchGuarded { .. } => {
                        unreachable!("batch thieves use the Batch* states")
                    }
                }
            }
            ThiefPc::Claim { h, c, v } => {
                if self.claim(&mut n.shared, h as usize, c) {
                    self.record_extraction(&mut n, v, "guarded thief")?;
                } else {
                    self.outcome.saw_duplicate_result = true;
                }
                ThiefPc::Idle
            }
            ThiefPc::AdvanceTopDup { h } => {
                n.shared.top = h + 1;
                self.outcome.saw_duplicate_result = true;
                ThiefPc::Idle
            }
            ThiefPc::BatchReadClaim { i, end } => {
                let c = n.shared.claims[i as usize];
                if c & 1 == 1 {
                    // Claimed-slot duplicate inside the range: skip it.
                    self.outcome.saw_duplicate_result = true;
                    if i + 1 < end {
                        ThiefPc::BatchReadClaim { i: i + 1, end }
                    } else {
                        ThiefPc::BatchAdvanceTop { end }
                    }
                } else {
                    ThiefPc::BatchReadTask { i, end, c }
                }
            }
            ThiefPc::BatchReadTask { i, end, c } => {
                let v = n.shared.tasks[i as usize];
                ThiefPc::BatchClaim { i, end, c, v }
            }
            ThiefPc::BatchClaim { i, end, c, v } => {
                if self.claim(&mut n.shared, i as usize, c) {
                    self.record_extraction(&mut n, v, "batch thief")?;
                } else {
                    self.outcome.saw_duplicate_result = true;
                }
                if i + 1 < end {
                    ThiefPc::BatchReadClaim { i: i + 1, end }
                } else {
                    ThiefPc::BatchAdvanceTop { end }
                }
            }
            ThiefPc::BatchAdvanceTop { end } => {
                n.shared.top = end;
                ThiefPc::Idle
            }
        };
        n.thieves[t].pc = pc;
        Ok(Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guarded(
        capacity: usize,
        owner_ops: Vec<OwnerOp>,
        thieves: usize,
        steals: usize,
    ) -> Scenario {
        Scenario {
            capacity,
            owner_ops,
            thieves: vec![(ThiefMode::Guarded, steals); thieves],
            guard: GuardMode::Cas,
        }
    }

    use OwnerOp::{Pop, Push};

    #[test]
    fn guarded_two_thieves_exactly_once() {
        let s = guarded(4, vec![Push(1), Push(2), Pop, Pop], 2, 2);
        let out = explore(&s).expect("guarded protocol must be exactly-once");
        assert_eq!(out.max_multiplicity, 1, "guard allows no double extraction");
        assert!(
            out.saw_duplicate_result,
            "some interleaving must race two claimants for one item"
        );
        assert!(out.terminals > 0);
    }

    #[test]
    fn guarded_slot_reuse_at_capacity_one() {
        // Pop-then-push reuses slot 0 across eras while a thief holds a
        // stale view — the ABA regime the era counter exists for.
        let s = guarded(1, vec![Push(1), Pop, Push(2), Pop], 1, 2);
        let out = explore(&s).expect("era-versioned claims survive slot reuse");
        assert_eq!(out.max_multiplicity, 1);
    }

    #[test]
    fn guarded_heal_window_with_reuse_and_two_thieves() {
        // Drain via thieves (top runs ahead), owner pops to the floor,
        // then pushes again — exercising INV-FF-HEAL's top pull-back
        // interleaved with stale thieves.
        let s = guarded(2, vec![Push(1), Push(2), Pop, Push(3), Pop, Pop], 2, 2);
        let out = explore(&s).expect("heal window must stay exactly-once");
        assert_eq!(out.max_multiplicity, 1);
    }

    #[test]
    fn raw_mode_exhibits_multiplicity_within_the_per_process_bound() {
        let s = Scenario {
            capacity: 4,
            owner_ops: vec![Push(1), Push(2), Pop, Pop],
            thieves: vec![(ThiefMode::Raw, 1), (ThiefMode::Raw, 1)],
            guard: GuardMode::Cas,
        };
        let out = explore(&s).expect("raw multiplicity must stay within k");
        assert!(
            out.saw_multi_extraction,
            "two raw thieves reading top=0 must both extract value 1 in some interleaving"
        );
        // k = owner + 2 raw handles.
        assert!(out.max_multiplicity >= 2 && out.max_multiplicity <= 3);
    }

    #[test]
    fn raw_mode_with_slot_reuse_stays_bounded() {
        let s = Scenario {
            capacity: 1,
            owner_ops: vec![Push(1), Pop, Push(2), Pop],
            thieves: vec![(ThiefMode::Raw, 2)],
            guard: GuardMode::Cas,
        };
        let out = explore(&s).expect("raw mode bounded under reuse");
        assert!(out.max_multiplicity <= 2);
    }

    #[test]
    fn checker_catches_a_broken_once_guard() {
        // Claim-by-blind-store lets two racing claimants both win; the
        // checker must reject it (non-vacuity of the k-bound check with
        // k = 1: no raw handles in this scenario).
        let s = Scenario {
            capacity: 4,
            owner_ops: vec![Push(1), Push(2), Pop, Pop],
            thieves: vec![(ThiefMode::Guarded, 2), (ThiefMode::Guarded, 2)],
            guard: GuardMode::BrokenBlindStore,
        };
        let err = explore(&s).expect_err("blind-store claim must be caught");
        assert!(err.contains("bound is k"), "unexpected violation: {err}");
    }

    #[test]
    fn batch_thief_is_exactly_once_against_owner_pops() {
        // One batch invocation racing the owner's walk-down pops across
        // a 3-deep backlog: no value may be extracted twice, and no
        // value may vanish inside the claimed range.
        let s = Scenario {
            capacity: 4,
            owner_ops: vec![Push(1), Push(2), Push(3), Pop, Pop, Pop],
            thieves: vec![(ThiefMode::BatchGuarded { max: 4 }, 1)],
            guard: GuardMode::Cas,
        };
        let out = explore(&s).expect("batched range claims must stay exactly-once");
        assert_eq!(out.max_multiplicity, 1);
        assert!(
            out.saw_duplicate_result,
            "some interleaving must race the batch against an owner claim"
        );
        assert!(out.terminals > 0);
    }

    #[test]
    fn batch_thief_against_single_rival_and_slot_reuse() {
        // A batch thief and a single-steal rival over a capacity-2 array
        // with slot reuse: the era-versioned claim words must keep the
        // range claim exactly-once even when a slot is recycled under a
        // stale batch bound.
        let s = Scenario {
            capacity: 2,
            owner_ops: vec![Push(1), Push(2), Pop, Push(3), Pop, Pop],
            thieves: vec![
                (ThiefMode::BatchGuarded { max: 2 }, 1),
                (ThiefMode::Guarded, 1),
            ],
            guard: GuardMode::Cas,
        };
        let out = explore(&s).expect("batch + rival + reuse must stay exactly-once");
        assert_eq!(out.max_multiplicity, 1);
    }

    #[test]
    fn batch_checker_catches_a_broken_once_guard() {
        // Non-vacuity for the batch path: with blind-store claims, a
        // batch slot claim and the owner's pop both "win" the same slot
        // and the k = 1 bound must trip.
        let s = Scenario {
            capacity: 4,
            owner_ops: vec![Push(1), Push(2), Pop, Pop],
            thieves: vec![(ThiefMode::BatchGuarded { max: 4 }, 1)],
            guard: GuardMode::BrokenBlindStore,
        };
        let err = explore(&s).expect_err("blind-store batch claim must be caught");
        assert!(err.contains("bound is k"), "unexpected violation: {err}");
    }

    #[test]
    fn exploration_is_actually_exhaustive() {
        // A sanity floor: the two-thief scenario must visit a nontrivial
        // state space, not shortcut to a handful of schedules.
        let s = guarded(4, vec![Push(1), Push(2), Pop, Pop], 2, 2);
        let out = explore(&s).unwrap();
        assert!(out.states > 10_000, "suspiciously small: {}", out.states);
    }
}
