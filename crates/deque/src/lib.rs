//! The Arora–Blumofe–Plaxton non-blocking work-stealing deque (SPAA 1998).
//!
//! Three realizations of the same Figure-5 protocol:
//!
//! * [`atomic`] — the production lock-free deque on real atomics, with a
//!   single-word `age = {tag, top}` and `cas`, split into a unique
//!   [`Worker`] owner handle and cloneable [`Stealer`] handles;
//! * [`sim_deque`] — the identical pseudocode executed one instruction at
//!   a time, so the simulator's adversarial kernel can preempt processes
//!   mid-operation (and so the tag's purpose can be demonstrated);
//! * [`locking`] — a mutex-based baseline for the paper's "non-blocking
//!   data structures are essential" ablation.
//!
//! [`model`] exhaustively checks the relaxed semantics of §3.2 over all
//! interleavings of small owner/thief programs, standing in for the
//! paper's companion correctness proof. The checker itself lives in
//! [`history`], which also records timestamped histories from real
//! concurrent threads so the same judge runs over the production
//! [`atomic`] deque.

//!
//! [`order`] names the memory-ordering protocol both real deques follow:
//! the minimal acquire/release scheme with one `SeqCst` fence per side of
//! the §3.3 window ([`order::RelaxedProtocol`]), or blanket `SeqCst`
//! ([`order::SeqCstProtocol`] — the benchmark baseline, and the crate
//! default under the `seqcst-fallback` feature).
//!
//! [`task_deque`] is the pluggable backend seam: the [`TaskDeque`] trait
//! (owner handle + stealer handle + capability constants) behind which
//! the runtime selects among ABP ([`AbpBackend`]), the growable variant
//! ([`GrowableBackend`]), the mutex baseline ([`LockingBackend`]), and
//! [`fence_free`] — the read/write fence-free deque with multiplicity
//! ([`FenceFreeBackend`]), whose relaxed spec is judged by
//! [`history::check_multiplicity`] on real histories and by the
//! exhaustive stepped checker in [`multiplicity`].

pub mod atomic;
pub mod fence_free;
pub mod growable;
pub mod history;
pub mod locking;
pub mod model;
pub mod multiplicity;
pub mod order;
pub mod sim_deque;
pub mod task_deque;
pub mod word;

pub use atomic::{new, new_with_order, PushError, Steal, Stealer, StolenBatch, Worker};
pub use fence_free::{new_fence_free, FenceFreeStealer, FenceFreeWorker};
pub use growable::{new_growable, new_growable_with_order, GrowableStealer, GrowableWorker};
pub use locking::LockingDeque;
pub use order::{DefaultProtocol, OrderProfile, RelaxedProtocol, SeqCstProtocol};
pub use sim_deque::{DequeOp, MemModel, SimAge, SimBatch, SimDeque, SimSteal, StepOutcome, MAX_OP_STEPS};
pub use task_deque::{
    AbpBackend, DequeOwner, DequeStealer, FenceFreeBackend, GrowableBackend, LockingBackend,
    TaskDeque,
};
pub use word::Word;
