//! Online kernels — the adversaries of Section 4.4.
//!
//! The simulator asks a [`Kernel`] at every round which processes to
//! schedule. Three adversary classes from the paper, in increasing power:
//!
//! * **benign** ([`BenignKernel`]): chooses only *how many* processes run;
//!   the members are drawn uniformly at random (Theorem 10);
//! * **oblivious** ([`ObliviousKernel`]): commits to a complete schedule
//!   before execution begins (Theorem 11);
//! * **adaptive** ([`AdaptiveWorkerStarver`] and friends): observes the
//!   scheduler's state online and picks any set it likes (Theorem 12),
//!   constrained only by yield calls.
//!
//! Yield constraints are *not* applied here — the simulator wraps every
//! kernel's raw choice with [`crate::yields::YieldLedger::enforce`], which
//! preserves the chosen set's size, so a kernel never gains or loses
//! processor slots by the presence of yields (Section 4.4: "yield calls
//! never constrain the kernel in its choice of the number of processes").

use crate::procset::ProcSet;
use crate::table::{KernelTable, Tail};
use abp_dag::{DetRng, ProcId};

/// The scheduler state an *adaptive* kernel may inspect when choosing.
/// Benign and oblivious kernels must ignore it.
#[derive(Debug, Clone, Copy)]
pub struct KernelView<'a> {
    /// The current round, numbered from 1.
    pub round: u64,
    /// Per process: does it currently have an assigned node (is it doing
    /// useful work), or is it a thief?
    pub has_assigned: &'a [bool],
    /// Per process: current deque size.
    pub deque_len: &'a [usize],
    /// Per process: is it currently inside a critical section of a
    /// *blocking* data structure (holding a lock)? Always all-false for
    /// the non-blocking scheduler — which is precisely why it is immune
    /// to the adversary that exploits this field.
    pub in_critical_section: &'a [bool],
}

/// A kernel-level scheduler (the adversary of the two-level model).
pub trait Kernel {
    /// The fixed process count `P`.
    fn num_procs(&self) -> usize;

    /// Chooses the set of processes to schedule at this round, *before*
    /// yield enforcement.
    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet;
}

/// How a shaped kernel decides `p_i` at each round.
#[derive(Debug, Clone)]
pub enum CountSource {
    /// Always `k`.
    Constant(usize),
    /// Uniformly random in `[lo, hi]` each round.
    UniformBetween(usize, usize),
    /// Cycles through the given counts.
    Cyclic(Vec<usize>),
    /// `on_count` for `on_rounds`, then `off_count` for `off_rounds`,
    /// repeating — models bursty competing load.
    OnOff {
        on_rounds: u64,
        off_rounds: u64,
        on_count: usize,
        off_count: usize,
    },
}

impl CountSource {
    fn next(&self, round: u64, rng: &mut DetRng) -> usize {
        match self {
            CountSource::Constant(k) => *k,
            CountSource::UniformBetween(lo, hi) => {
                rng.range_inclusive(*lo as u64, *hi as u64) as usize
            }
            CountSource::Cyclic(v) => {
                assert!(
                    !v.is_empty(),
                    "CountSource::Cyclic requires a non-empty pattern"
                );
                v[((round - 1) as usize) % v.len()]
            }
            CountSource::OnOff {
                on_rounds,
                off_rounds,
                on_count,
                off_count,
            } => {
                let period = on_rounds + off_rounds;
                if (round - 1) % period < *on_rounds {
                    *on_count
                } else {
                    *off_count
                }
            }
        }
    }
}

/// The dedicated (non-multiprogrammed) environment: all `P` processes at
/// every round, so `P_A = P` (Section 4.3).
#[derive(Debug, Clone)]
pub struct DedicatedKernel {
    p: usize,
}

impl DedicatedKernel {
    pub fn new(p: usize) -> Self {
        assert!(p >= 1);
        DedicatedKernel { p }
    }
}

impl Kernel for DedicatedKernel {
    fn num_procs(&self) -> usize {
        self.p
    }

    fn choose(&mut self, _view: &KernelView<'_>) -> ProcSet {
        ProcSet::full(self.p)
    }
}

/// The benign adversary (Theorem 10): picks `p_i` per its [`CountSource`];
/// the *members* are chosen uniformly at random, outside its control.
#[derive(Debug)]
pub struct BenignKernel {
    p: usize,
    counts: CountSource,
    rng: DetRng,
}

impl BenignKernel {
    pub fn new(p: usize, counts: CountSource, seed: u64) -> Self {
        assert!(p >= 1);
        BenignKernel {
            p,
            counts,
            rng: DetRng::new(seed),
        }
    }
}

impl Kernel for BenignKernel {
    fn num_procs(&self) -> usize {
        self.p
    }

    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet {
        let k = self.counts.next(view.round, &mut self.rng).min(self.p);
        let idx = self.rng.sample_indices(self.p, k);
        ProcSet::from_iter(self.p, idx.into_iter().map(|i| ProcId(i as u32)))
    }
}

/// The oblivious adversary (Theorem 11): plays back a schedule committed
/// before execution begins.
#[derive(Debug, Clone)]
pub struct ObliviousKernel {
    table: KernelTable,
}

impl ObliviousKernel {
    pub fn new(table: KernelTable) -> Self {
        ObliviousKernel { table }
    }

    /// A precommitted schedule that repeatedly runs an adversarially
    /// chosen *fixed* subset of `k` processes for `quantum` rounds, then
    /// rotates to the next subset — hostile to any scheduler that parks
    /// work on an unscheduled process, yet oblivious.
    pub fn rotating(p: usize, k: usize, quantum: u64, rounds: u64) -> Self {
        assert!(k >= 1 && k <= p && quantum >= 1);
        let mut steps = Vec::with_capacity(rounds as usize);
        for r in 0..rounds {
            let block = (r / quantum) as usize;
            let start = (block * k) % p;
            let set = ProcSet::from_iter(p, (0..k).map(|i| ProcId(((start + i) % p) as u32)));
            steps.push(set);
        }
        ObliviousKernel::new(KernelTable::new(p, steps, Tail::Cycle))
    }

    /// A precommitted schedule drawn at random in advance (seeded): every
    /// round's count and members are fixed before execution starts.
    pub fn precommitted_random(p: usize, counts: CountSource, rounds: u64, seed: u64) -> Self {
        let mut rng = DetRng::new(seed);
        let mut steps = Vec::with_capacity(rounds as usize);
        for r in 1..=rounds {
            let k = counts.next(r, &mut rng).min(p);
            let idx = rng.sample_indices(p, k);
            steps.push(ProcSet::from_iter(
                p,
                idx.into_iter().map(|i| ProcId(i as u32)),
            ));
        }
        ObliviousKernel::new(KernelTable::new(p, steps, Tail::Cycle))
    }
}

impl Kernel for ObliviousKernel {
    fn num_procs(&self) -> usize {
        self.table.num_procs()
    }

    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet {
        self.table.at(view.round)
    }
}

/// The adaptive adversary of Theorem 12's motivation: schedules `k`
/// processes per round, *preferring thieves* (processes with no assigned
/// node), thereby starving the processes that hold the actual work.
/// Without `yieldToAll` this can stall the computation forever; with it,
/// every yielding thief forces the kernel to run everyone else first.
#[derive(Debug)]
pub struct AdaptiveWorkerStarver {
    p: usize,
    counts: CountSource,
    rng: DetRng,
}

impl AdaptiveWorkerStarver {
    pub fn new(p: usize, counts: CountSource, seed: u64) -> Self {
        AdaptiveWorkerStarver {
            p,
            counts,
            rng: DetRng::new(seed),
        }
    }
}

impl Kernel for AdaptiveWorkerStarver {
    fn num_procs(&self) -> usize {
        self.p
    }

    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet {
        let k = self.counts.next(view.round, &mut self.rng).min(self.p);
        // Thieves first (no assigned node), then workers with the shortest
        // deques; the processes sitting on the most work run last.
        let mut order: Vec<usize> = (0..self.p).collect();
        order.sort_by_key(|&i| {
            (
                view.has_assigned[i] as usize, // thieves (false) first
                usize::MAX - view.deque_len[i].min(usize::MAX - 1), // long deques last
            )
        });
        ProcSet::from_iter(self.p, order.into_iter().take(k).map(|i| ProcId(i as u32)))
    }
}

/// An adaptive adversary that does the opposite: starves *thieves*, so
/// steals never complete. Against `yieldToAll` the very first blocked
/// steal forces everyone to run; without yields, a thief whose deque is
/// empty can spin forever while P_A stays high — another way performance
/// degrades "dramatically" without yields.
#[derive(Debug)]
pub struct AdaptiveThiefStarver {
    p: usize,
    counts: CountSource,
    rng: DetRng,
}

impl AdaptiveThiefStarver {
    pub fn new(p: usize, counts: CountSource, seed: u64) -> Self {
        AdaptiveThiefStarver {
            p,
            counts,
            rng: DetRng::new(seed),
        }
    }
}

impl Kernel for AdaptiveThiefStarver {
    fn num_procs(&self) -> usize {
        self.p
    }

    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet {
        let k = self.counts.next(view.round, &mut self.rng).min(self.p);
        let mut order: Vec<usize> = (0..self.p).collect();
        // Workers (have assigned) first: thieves never run.
        order.sort_by_key(|&i| !view.has_assigned[i] as usize);
        ProcSet::from_iter(self.p, order.into_iter().take(k).map(|i| ProcId(i as u32)))
    }
}

/// An adaptive adversary that deschedules any process caught inside a
/// critical section — the paper's §1 motivation for non-blocking data
/// structures made executable.
///
/// Each round it schedules `k` processes, preferring those *not* holding a
/// lock (falling back to lock holders only when there is nobody else).
/// Against the non-blocking scheduler this is just an arbitrary adaptive
/// kernel; against a lock-based scheduler it parks every lock holder
/// indefinitely while the thieves spinning on that lock stay scheduled —
/// a livelock the blocking implementation cannot escape.
#[derive(Debug)]
pub struct AdaptiveCriticalStarver {
    p: usize,
    counts: CountSource,
    rng: DetRng,
}

impl AdaptiveCriticalStarver {
    pub fn new(p: usize, counts: CountSource, seed: u64) -> Self {
        AdaptiveCriticalStarver {
            p,
            counts,
            rng: DetRng::new(seed),
        }
    }
}

impl Kernel for AdaptiveCriticalStarver {
    fn num_procs(&self) -> usize {
        self.p
    }

    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet {
        let k = self.counts.next(view.round, &mut self.rng).min(self.p);
        let mut order: Vec<usize> = (0..self.p).collect();
        self.rng.shuffle(&mut order);
        // Lock holders go last: they run only if there is no alternative.
        order.sort_by_key(|&i| view.in_critical_section[i] as usize);
        ProcSet::from_iter(self.p, order.into_iter().take(k).map(|i| ProcId(i as u32)))
    }
}

/// The Theorem-1 lower-bound kernel schedule.
///
/// For a chosen nonnegative integer `k`, the schedule runs all `P`
/// processes for `T∞` steps, then zero processes for `k·T∞` steps, then
/// one process per step forever. Any execution schedule satisfies
/// `Σ p_i ≥ T∞ · P` over its length, i.e. length `≥ T∞ · P / P_A`, and the
/// processor average lands in `(P/(1+k)·(1/(1+o(1))), P]` — taking `k`
/// large drives `P_A` arbitrarily close to 0.
#[derive(Debug, Clone)]
pub struct Theorem1Kernel {
    p: usize,
    t_inf: u64,
    k: u64,
}

impl Theorem1Kernel {
    pub fn new(p: usize, t_inf: u64, k: u64) -> Self {
        assert!(p >= 1 && t_inf >= 1);
        Theorem1Kernel { p, t_inf, k }
    }

    /// Count at 1-based step `i`.
    pub fn count_at(&self, i: u64) -> usize {
        if i <= self.t_inf {
            self.p
        } else if i <= (1 + self.k) * self.t_inf {
            0
        } else {
            1
        }
    }

    /// Materializes the schedule prefix as a [`KernelTable`] for the
    /// offline schedulers (tail: one process per step).
    pub fn to_table(&self) -> KernelTable {
        let prefix: Vec<usize> = (1..=(1 + self.k) * self.t_inf)
            .map(|i| self.count_at(i))
            .collect();
        let mut counts = prefix;
        counts.push(1); // the eternal single-process tail
        KernelTable::from_counts(self.p, &counts, Tail::HoldLast)
    }
}

impl Kernel for Theorem1Kernel {
    fn num_procs(&self) -> usize {
        self.p
    }

    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet {
        let k = self.count_at(view.round);
        ProcSet::from_iter(self.p, (0..k).map(|i| ProcId(i as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_CS: [bool; 8] = [false; 8];

    fn dummy_view<'a>(round: u64, has: &'a [bool], dq: &'a [usize]) -> KernelView<'a> {
        KernelView {
            round,
            has_assigned: has,
            deque_len: dq,
            in_critical_section: &NO_CS[..has.len().min(8)],
        }
    }

    #[test]
    fn dedicated_always_full() {
        let mut k = DedicatedKernel::new(5);
        let has = [true; 5];
        let dq = [0usize; 5];
        for r in 1..20 {
            assert_eq!(k.choose(&dummy_view(r, &has, &dq)).len(), 5);
        }
    }

    #[test]
    fn benign_counts_respect_source_and_are_random_members() {
        let mut k = BenignKernel::new(8, CountSource::Constant(3), 7);
        let has = [true; 8];
        let dq = [0usize; 8];
        let mut member_hits = [0u32; 8];
        for r in 1..=400 {
            let s = k.choose(&dummy_view(r, &has, &dq));
            assert_eq!(s.len(), 3);
            for q in s.iter() {
                member_hits[q.index()] += 1;
            }
        }
        // Each process should be picked ~150 times (3/8 of 400).
        for (i, &h) in member_hits.iter().enumerate() {
            assert!((100..=200).contains(&h), "p{i} picked {h} times");
        }
    }

    #[test]
    fn count_sources() {
        let mut rng = DetRng::new(1);
        assert_eq!(CountSource::Constant(4).next(10, &mut rng), 4);
        let cyc = CountSource::Cyclic(vec![1, 2, 3]);
        assert_eq!(cyc.next(1, &mut rng), 1);
        assert_eq!(cyc.next(2, &mut rng), 2);
        assert_eq!(cyc.next(3, &mut rng), 3);
        assert_eq!(cyc.next(4, &mut rng), 1);
        let oo = CountSource::OnOff {
            on_rounds: 2,
            off_rounds: 3,
            on_count: 7,
            off_count: 1,
        };
        let seq: Vec<usize> = (1..=10).map(|r| oo.next(r, &mut rng)).collect();
        assert_eq!(seq, vec![7, 7, 1, 1, 1, 7, 7, 1, 1, 1]);
        for _ in 0..100 {
            let v = CountSource::UniformBetween(2, 5).next(1, &mut rng);
            assert!((2..=5).contains(&v));
        }
    }

    #[test]
    fn oblivious_rotating_covers_all_processes() {
        let mut k = ObliviousKernel::rotating(6, 2, 3, 18);
        let has = [true; 6];
        let dq = [0usize; 6];
        let mut seen = ProcSet::empty(6);
        for r in 1..=18 {
            let s = k.choose(&dummy_view(r, &has, &dq));
            assert_eq!(s.len(), 2);
            for q in s.iter() {
                seen.insert(q);
            }
        }
        assert_eq!(seen.len(), 6, "rotation must reach every process");
    }

    #[test]
    fn oblivious_precommitted_ignores_view() {
        let mut k1 =
            ObliviousKernel::precommitted_random(4, CountSource::UniformBetween(1, 4), 50, 99);
        let mut k2 =
            ObliviousKernel::precommitted_random(4, CountSource::UniformBetween(1, 4), 50, 99);
        let dq = [0usize; 4];
        for r in 1..=50 {
            // Different views must not change an oblivious kernel's choice.
            let a = k1.choose(&dummy_view(r, &[true; 4], &dq));
            let b = k2.choose(&dummy_view(r, &[false; 4], &dq));
            assert_eq!(a, b, "round {r}");
        }
    }

    #[test]
    fn worker_starver_prefers_thieves() {
        let mut k = AdaptiveWorkerStarver::new(4, CountSource::Constant(2), 3);
        // p0, p2 are workers; p1, p3 thieves.
        let has = [true, false, true, false];
        let dq = [5usize, 0, 1, 0];
        let s = k.choose(&dummy_view(1, &has, &dq));
        assert!(s.contains(ProcId(1)) && s.contains(ProcId(3)), "{s:?}");
    }

    #[test]
    fn thief_starver_prefers_workers() {
        let mut k = AdaptiveThiefStarver::new(4, CountSource::Constant(2), 3);
        let has = [true, false, true, false];
        let dq = [5usize, 0, 1, 0];
        let s = k.choose(&dummy_view(1, &has, &dq));
        assert!(s.contains(ProcId(0)) && s.contains(ProcId(2)), "{s:?}");
    }

    #[test]
    fn critical_starver_avoids_lock_holders() {
        let mut k = AdaptiveCriticalStarver::new(4, CountSource::Constant(2), 8);
        let has = [true; 4];
        let dq = [0usize; 4];
        // p1 and p3 hold locks: with only 2 slots they must never be
        // chosen while p0/p2 are available.
        let cs = [false, true, false, true];
        for r in 1..=50 {
            let view = KernelView {
                round: r,
                has_assigned: &has,
                deque_len: &dq,
                in_critical_section: &cs,
            };
            let s = k.choose(&view);
            assert!(
                s.contains(ProcId(0)) && s.contains(ProcId(2)),
                "round {r}: {s:?}"
            );
        }
        // If everyone is in a critical section, it still schedules k.
        let all_cs = [true; 4];
        let view = KernelView {
            round: 99,
            has_assigned: &has,
            deque_len: &dq,
            in_critical_section: &all_cs,
        };
        assert_eq!(k.choose(&view).len(), 2);
    }

    #[test]
    fn theorem1_phases() {
        let k = Theorem1Kernel::new(4, 10, 2);
        assert_eq!(k.count_at(1), 4);
        assert_eq!(k.count_at(10), 4);
        assert_eq!(k.count_at(11), 0);
        assert_eq!(k.count_at(30), 0);
        assert_eq!(k.count_at(31), 1);
        assert_eq!(k.count_at(1000), 1);
    }

    #[test]
    fn theorem1_table_matches_kernel() {
        let k = Theorem1Kernel::new(3, 5, 1);
        let t = k.to_table();
        for i in 1..=40 {
            assert_eq!(t.count_at(i), k.count_at(i), "step {i}");
        }
    }

    #[test]
    fn theorem1_processor_average_shrinks_with_k() {
        let p = 8u64;
        let t_inf = 20u64;
        // Measure P_A at the earliest point an execution could plausibly
        // finish: the end of the zero phase plus another T∞ productive
        // steps. Larger k inserts more dead rounds, dragging P_A down.
        let pa = |k: u64| {
            Theorem1Kernel::new(p as usize, t_inf, k)
                .to_table()
                .processor_average((1 + k) * t_inf + t_inf)
        };
        let (pa_k0, pa_k4) = (pa(0), pa(4));
        assert!(pa_k4 < pa_k0 / 2.0, "k=0: {pa_k0}, k=4: {pa_k4}");
        // And with k=0 the schedule is nearly dedicated early on.
        assert!(pa_k0 > p as f64 / 2.0);
    }
}
