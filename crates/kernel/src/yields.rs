//! Yield system calls as scheduling constraints (Section 4.4).
//!
//! The paper models `yield` not as an instruction with a duration but as a
//! *constraint on the kernel*: a yield never changes how many processes the
//! kernel schedules at a round, only *which* ones it may pick.
//!
//! * `yieldToRandom` (Section 4.4.2): if process `q` calls it at round `i`
//!   with random target `v`, the kernel cannot schedule `q` at a round
//!   `j > i` unless `v` was scheduled at some round `h` with `i < h < j`.
//!   If the kernel's (possibly precommitted) schedule calls for `q` while
//!   the constraint is unsatisfied, `v` is scheduled *in place of* `q`.
//! * `yieldToAll` (Section 4.4.3): the kernel cannot schedule `q` again
//!   until **every** other process has been scheduled at least once after
//!   the yield.
//!
//! [`YieldLedger`] tracks outstanding constraints and rewrites a kernel's
//! chosen set by the substitution rule, preserving the set's size exactly
//! as the paper requires.

use crate::procset::ProcSet;
use abp_dag::ProcId;

/// Which yield primitive the scheduling loop uses between steal attempts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum YieldPolicy {
    /// No yield call (line 15 removed). Sufficient against the benign
    /// adversary (Theorem 10); unsafe against adaptive ones.
    None,
    /// Directed yield to a uniformly random process (Theorem 11).
    ToRandom,
    /// Yield to all other processes (Theorem 12).
    #[default]
    ToAll,
}

impl YieldPolicy {
    /// Short identity label, stamped on reports alongside the
    /// policy-set label.
    pub fn label(self) -> &'static str {
        match self {
            YieldPolicy::None => "none",
            YieldPolicy::ToRandom => "to-random",
            YieldPolicy::ToAll => "to-all",
        }
    }
}

/// An outstanding yield constraint for one process.
#[derive(Debug, Clone)]
enum Constraint {
    /// Must see `target` scheduled before the yielder runs again.
    One { target: ProcId },
    /// Must see every process in `waiting` scheduled before the yielder
    /// runs again.
    All { waiting: ProcSet },
}

/// Tracks yield constraints and enforces them on kernel choices.
#[derive(Debug)]
pub struct YieldLedger {
    p: usize,
    constraints: Vec<Option<Constraint>>,
}

impl YieldLedger {
    /// A ledger for `p` processes with no outstanding constraints.
    pub fn new(p: usize) -> Self {
        YieldLedger {
            p,
            constraints: vec![None; p],
        }
    }

    /// Records that `q` called `yieldToRandom` targeting `v`.
    ///
    /// A process has at most one outstanding constraint: a new yield
    /// replaces the previous one (the scheduling loop only yields once per
    /// steal attempt, and `q` must have been scheduled — hence released —
    /// to reach the yield again).
    pub fn yield_to_random(&mut self, q: ProcId, v: ProcId) {
        debug_assert!(
            q != v || self.p == 1,
            "yield target should differ from yielder"
        );
        self.constraints[q.index()] = Some(Constraint::One { target: v });
    }

    /// Records that `q` called `yieldToAll`.
    pub fn yield_to_all(&mut self, q: ProcId) {
        let mut waiting = ProcSet::full(self.p);
        waiting.remove(q);
        if waiting.is_empty() {
            // With P = 1 there is nobody to wait for.
            self.constraints[q.index()] = None;
        } else {
            self.constraints[q.index()] = Some(Constraint::All { waiting });
        }
    }

    /// True if scheduling `q` now would violate its outstanding constraint.
    pub fn is_blocked(&self, q: ProcId) -> bool {
        self.constraints[q.index()].is_some()
    }

    /// A process whose scheduling would help release `q`, if `q` is
    /// blocked. Used for the substitution rule.
    fn release_candidate(&self, q: ProcId) -> Option<ProcId> {
        match &self.constraints[q.index()] {
            None => None,
            Some(Constraint::One { target }) => Some(*target),
            Some(Constraint::All { waiting }) => waiting.iter().next(),
        }
    }

    /// Applies the substitution rule to the kernel's raw choice for a
    /// round: every blocked process in the set is replaced by a process
    /// that its constraint is waiting on (or, failing that, any unchosen
    /// process), keeping `|chosen|` unchanged whenever possible.
    ///
    /// Returns the rewritten set. The caller must then call
    /// [`YieldLedger::note_scheduled`] with the *final* set.
    pub fn enforce(&self, raw: &ProcSet) -> ProcSet {
        let mut chosen = raw.clone();
        let blocked: Vec<ProcId> = raw.iter().filter(|&q| self.is_blocked(q)).collect();
        for q in blocked {
            chosen.remove(q);
            // Prefer the process the constraint waits on.
            let sub = self
                .release_candidate(q)
                // The substitute must itself be schedulable: inserting a
                // blocked process would violate *its* yield constraint.
                .filter(|&v| !chosen.contains(v) && !self.is_blocked(v))
                .or_else(|| {
                    // Otherwise any process not already chosen and not
                    // itself blocked.
                    (0..self.p)
                        .map(|i| ProcId(i as u32))
                        .find(|&v| !chosen.contains(v) && !self.is_blocked(v))
                });
            if let Some(v) = sub {
                chosen.insert(v);
            }
            // If every unblocked process is already chosen the set simply
            // shrinks by one — the kernel tried to schedule a blocked
            // process when no legal substitute remained.
        }
        chosen
    }

    /// Updates constraints after a round in which `scheduled` ran.
    /// Releases satisfied constraints so they no longer block *subsequent*
    /// rounds (the paper's `i < h < j` is strict: release takes effect from
    /// the next round on).
    pub fn note_scheduled(&mut self, scheduled: &ProcSet) {
        for c in self.constraints.iter_mut() {
            let done = match c {
                None => false,
                Some(Constraint::One { target }) => scheduled.contains(*target),
                Some(Constraint::All { waiting }) => {
                    for q in scheduled.iter() {
                        waiting.remove(q);
                    }
                    waiting.is_empty()
                }
            };
            if done {
                *c = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(p: usize, xs: &[u32]) -> ProcSet {
        ProcSet::from_iter(p, xs.iter().map(|&x| ProcId(x)))
    }

    #[test]
    fn yield_to_random_blocks_until_target_runs() {
        let mut l = YieldLedger::new(4);
        l.yield_to_random(ProcId(0), ProcId(2));
        assert!(l.is_blocked(ProcId(0)));
        // Kernel wants {0,1}: substitution puts 2 in place of 0.
        let fixed = l.enforce(&set(4, &[0, 1]));
        assert_eq!(fixed, set(4, &[1, 2]));
        l.note_scheduled(&fixed);
        assert!(!l.is_blocked(ProcId(0)));
        // Now {0,1} passes untouched.
        let again = l.enforce(&set(4, &[0, 1]));
        assert_eq!(again, set(4, &[0, 1]));
    }

    #[test]
    fn release_is_strictly_before_not_same_round() {
        let mut l = YieldLedger::new(3);
        l.yield_to_random(ProcId(0), ProcId(1));
        // Kernel chooses {0,1}: even though 1 runs this round, 0 may not run
        // in the same round — constraint satisfied only for later rounds.
        let fixed = l.enforce(&set(3, &[0, 1]));
        assert!(!fixed.contains(ProcId(0)));
        assert!(fixed.contains(ProcId(1)));
        assert_eq!(fixed.len(), 2, "size preserved via substitution");
        l.note_scheduled(&fixed);
        assert!(!l.is_blocked(ProcId(0)));
    }

    #[test]
    fn yield_to_all_requires_everyone() {
        let mut l = YieldLedger::new(4);
        l.yield_to_all(ProcId(3));
        assert!(l.is_blocked(ProcId(3)));
        l.note_scheduled(&set(4, &[0, 1]));
        assert!(l.is_blocked(ProcId(3)), "p2 has not run yet");
        l.note_scheduled(&set(4, &[2]));
        assert!(!l.is_blocked(ProcId(3)));
    }

    #[test]
    fn yield_to_all_substitutes_missing_process() {
        let mut l = YieldLedger::new(3);
        l.yield_to_all(ProcId(0));
        // Kernel insists on {0}: gets the lowest process 0 still waits on.
        let fixed = l.enforce(&set(3, &[0]));
        assert_eq!(fixed.len(), 1);
        assert!(!fixed.contains(ProcId(0)));
        l.note_scheduled(&fixed); // runs p1
        let fixed2 = l.enforce(&set(3, &[0]));
        l.note_scheduled(&fixed2); // runs p2
        assert!(!l.is_blocked(ProcId(0)));
    }

    #[test]
    fn yield_to_all_single_process_is_noop() {
        let mut l = YieldLedger::new(1);
        l.yield_to_all(ProcId(0));
        assert!(!l.is_blocked(ProcId(0)));
        let fixed = l.enforce(&set(1, &[0]));
        assert!(fixed.contains(ProcId(0)));
    }

    #[test]
    fn all_p_chosen_with_block_shrinks_set() {
        let mut l = YieldLedger::new(2);
        l.yield_to_all(ProcId(0));
        // Kernel chooses everyone; 0 is blocked and its release candidate
        // (p1) is already chosen, and there is no other process: the set
        // shrinks.
        let fixed = l.enforce(&set(2, &[0, 1]));
        assert_eq!(fixed, set(2, &[1]));
    }

    #[test]
    fn several_blocked_processes_all_substituted() {
        let mut l = YieldLedger::new(6);
        l.yield_to_random(ProcId(0), ProcId(4));
        l.yield_to_random(ProcId(1), ProcId(5));
        // Kernel wants the two blocked processes plus p2.
        let fixed = l.enforce(&set(6, &[0, 1, 2]));
        assert_eq!(fixed.len(), 3);
        assert!(!fixed.contains(ProcId(0)) && !fixed.contains(ProcId(1)));
        assert!(fixed.contains(ProcId(4)) && fixed.contains(ProcId(5)));
        assert!(fixed.contains(ProcId(2)));
        l.note_scheduled(&fixed);
        assert!(!l.is_blocked(ProcId(0)));
        assert!(!l.is_blocked(ProcId(1)));
    }

    #[test]
    fn substitution_never_schedules_a_blocked_process() {
        // Chained constraints: p0 waits on p1, p1 waits on p2. Scheduling
        // {p0} must substitute an *unblocked* process, not p1.
        let mut l = YieldLedger::new(4);
        l.yield_to_random(ProcId(0), ProcId(1));
        l.yield_to_random(ProcId(1), ProcId(2));
        let fixed = l.enforce(&set(4, &[0]));
        assert_eq!(fixed.len(), 1);
        assert!(!fixed.contains(ProcId(0)));
        assert!(!fixed.contains(ProcId(1)), "substituted a blocked process");
    }

    #[test]
    fn new_yield_replaces_old() {
        let mut l = YieldLedger::new(4);
        l.yield_to_random(ProcId(0), ProcId(1));
        l.yield_to_random(ProcId(0), ProcId(2));
        // Scheduling p1 no longer releases p0.
        l.note_scheduled(&set(4, &[1]));
        assert!(l.is_blocked(ProcId(0)));
        l.note_scheduled(&set(4, &[2]));
        assert!(!l.is_blocked(ProcId(0)));
    }
}
