//! A compact set of process identifiers.
//!
//! Kernel schedules manipulate subsets of the `P` processes at every step;
//! [`ProcSet`] is a fixed-universe bitset sized to `P`, cheap to copy
//! per-round and to intersect with yield constraints.

use abp_dag::ProcId;
use std::fmt;

/// A subset of the processes `p0..p(P-1)`, backed by 64-bit words.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct ProcSet {
    universe: usize,
    words: Vec<u64>,
}

impl ProcSet {
    /// The empty set over a universe of `p` processes.
    pub fn empty(p: usize) -> Self {
        ProcSet {
            universe: p,
            words: vec![0; p.div_ceil(64)],
        }
    }

    /// The full set `{p0, …, p(P-1)}`.
    pub fn full(p: usize) -> Self {
        let mut s = Self::empty(p);
        for i in 0..p {
            s.insert(ProcId(i as u32));
        }
        s
    }

    /// Builds a set from an iterator of process ids.
    pub fn from_iter<I: IntoIterator<Item = ProcId>>(p: usize, iter: I) -> Self {
        let mut s = Self::empty(p);
        for q in iter {
            s.insert(q);
        }
        s
    }

    /// Size of the universe (the process count `P`).
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Adds `q`. Panics (debug) if out of universe.
    #[inline]
    pub fn insert(&mut self, q: ProcId) {
        debug_assert!(q.index() < self.universe);
        self.words[q.index() / 64] |= 1 << (q.index() % 64);
    }

    /// Removes `q`.
    #[inline]
    pub fn remove(&mut self, q: ProcId) {
        debug_assert!(q.index() < self.universe);
        self.words[q.index() / 64] &= !(1 << (q.index() % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, q: ProcId) -> bool {
        debug_assert!(q.index() < self.universe);
        self.words[q.index() / 64] & (1 << (q.index() % 64)) != 0
    }

    /// Number of members (the paper's `p_i` for a step's chosen set).
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no member.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ProcId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros();
                    bits &= bits - 1;
                    Some(ProcId((wi * 64) as u32 + b))
                }
            })
        })
    }

    /// Removes all members.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Any member not in `self`, lowest first.
    pub fn first_absent(&self) -> Option<ProcId> {
        (0..self.universe)
            .map(|i| ProcId(i as u32))
            .find(|&q| !self.contains(q))
    }
}

impl fmt::Debug for ProcSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = ProcSet::empty(100);
        assert!(s.is_empty());
        s.insert(ProcId(0));
        s.insert(ProcId(63));
        s.insert(ProcId(64));
        s.insert(ProcId(99));
        assert_eq!(s.len(), 4);
        assert!(s.contains(ProcId(63)));
        assert!(s.contains(ProcId(64)));
        assert!(!s.contains(ProcId(65)));
        s.remove(ProcId(63));
        assert!(!s.contains(ProcId(63)));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn iter_ascending() {
        let s = ProcSet::from_iter(70, [ProcId(65), ProcId(2), ProcId(40)]);
        let v: Vec<u32> = s.iter().map(|p| p.0).collect();
        assert_eq!(v, vec![2, 40, 65]);
    }

    #[test]
    fn full_and_clear() {
        let mut s = ProcSet::full(65);
        assert_eq!(s.len(), 65);
        assert_eq!(s.first_absent(), None);
        s.remove(ProcId(10));
        assert_eq!(s.first_absent(), Some(ProcId(10)));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.first_absent(), Some(ProcId(0)));
    }

    #[test]
    fn insert_idempotent() {
        let mut s = ProcSet::empty(8);
        s.insert(ProcId(3));
        s.insert(ProcId(3));
        assert_eq!(s.len(), 1);
    }
}
