//! The two-level multiprogramming model of ABP SPAA 1998.
//!
//! A user-level scheduler maps threads onto a fixed collection of `P`
//! *processes*; below it, the operating-system kernel — modeled as an
//! adversary — maps processes onto processors. This crate implements that
//! kernel level:
//!
//! * [`KernelTable`] — explicit step-indexed kernel schedules, the
//!   processor average `P_A` (Equation 1), and the Figure-2(a) example;
//! * [`Kernel`] — the online adversary interface, with the paper's three
//!   adversary classes: [`BenignKernel`], [`ObliviousKernel`], and the
//!   adaptive [`AdaptiveWorkerStarver`] / [`AdaptiveThiefStarver`];
//! * [`Theorem1Kernel`] — the lower-bound schedule construction of
//!   Theorem 1;
//! * [`YieldLedger`] — `yieldToRandom` / `yieldToAll` as constraints on
//!   the kernel's choices, enforced by substitution exactly as Section 4.4
//!   defines;
//! * [`ProcSet`] — compact process subsets.

pub mod kernel;
pub mod procset;
pub mod recording;
pub mod table;
pub mod yields;

pub use kernel::{
    AdaptiveCriticalStarver, AdaptiveThiefStarver, AdaptiveWorkerStarver, BenignKernel,
    CountSource, DedicatedKernel, Kernel, KernelView, ObliviousKernel, Theorem1Kernel,
};
pub use procset::ProcSet;
pub use recording::RecordingKernel;
pub use table::{figure2_kernel, KernelTable, Tail};
pub use yields::{YieldLedger, YieldPolicy};
