//! Explicit kernel schedules and the processor average (Section 2).
//!
//! A *kernel schedule* maps each step `i ≥ 1` to the set of processes
//! scheduled at that step; `p_i` is the size of that set. The *processor
//! average* over `T` steps is `P_A = (1/T) · Σ_{i=1..T} p_i` (Equation 1).
//!
//! [`KernelTable`] stores a finite prefix of a kernel schedule explicitly,
//! with a *tail rule* describing the schedule beyond the stored prefix
//! (kernel schedules are conceptually infinite). This is what the offline
//! schedulers of Section 2 consume and what the Figure-2 example is.

use crate::procset::ProcSet;
use abp_dag::ProcId;
use std::fmt;

/// What a [`KernelTable`] does after its explicit prefix runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tail {
    /// Repeat the explicit prefix cyclically.
    Cycle,
    /// Repeat the last explicit step forever.
    HoldLast,
    /// Schedule all `P` processes forever.
    AllProcs,
}

/// An explicit (prefix of a) kernel schedule over `P` processes.
///
/// ```
/// use abp_kernel::{KernelTable, Tail};
///
/// // 3 processes: two busy steps, one idle step, then all-on forever.
/// let k = KernelTable::from_counts(3, &[2, 2, 0], Tail::AllProcs);
/// assert_eq!(k.count_at(3), 0);
/// assert_eq!(k.count_at(10), 3);
/// // Equation 1: P_A over the first 4 steps = (2+2+0+3)/4.
/// assert!((k.processor_average(4) - 1.75).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct KernelTable {
    p: usize,
    steps: Vec<ProcSet>,
    tail: Tail,
}

impl KernelTable {
    /// Creates a table over `p` processes from explicit per-step sets.
    /// A cyclic tail requires a non-empty prefix to cycle over.
    pub fn new(p: usize, steps: Vec<ProcSet>, tail: Tail) -> Self {
        assert!(steps.iter().all(|s| s.universe() == p));
        assert!(
            tail != Tail::Cycle || !steps.is_empty(),
            "Tail::Cycle requires a non-empty prefix"
        );
        KernelTable { p, steps, tail }
    }

    /// A dedicated schedule: all `p` processes at every step.
    pub fn dedicated(p: usize) -> Self {
        KernelTable::new(p, vec![ProcSet::full(p)], Tail::AllProcs)
    }

    /// Builds a table from per-step *counts*, scheduling the lowest-indexed
    /// processes at each step. Useful for shaping `p_i` patterns where the
    /// identity of the processes does not matter.
    pub fn from_counts(p: usize, counts: &[usize], tail: Tail) -> Self {
        let steps = counts
            .iter()
            .map(|&c| {
                assert!(c <= p, "step count {c} exceeds P={p}");
                ProcSet::from_iter(p, (0..c).map(|i| ProcId(i as u32)))
            })
            .collect();
        KernelTable::new(p, steps, tail)
    }

    /// The process count `P`.
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.p
    }

    /// Length of the explicit prefix.
    #[inline]
    pub fn prefix_len(&self) -> usize {
        self.steps.len()
    }

    /// The set scheduled at step `i` (1-based, like the paper).
    pub fn at(&self, i: u64) -> ProcSet {
        assert!(i >= 1, "kernel steps are numbered from 1");
        let idx = (i - 1) as usize;
        if idx < self.steps.len() {
            return self.steps[idx].clone();
        }
        match self.tail {
            Tail::Cycle => self.steps[idx % self.steps.len()].clone(),
            Tail::HoldLast => self
                .steps
                .last()
                .cloned()
                .unwrap_or_else(|| ProcSet::full(self.p)),
            Tail::AllProcs => ProcSet::full(self.p),
        }
    }

    /// `p_i`: the number of processes scheduled at step `i`.
    pub fn count_at(&self, i: u64) -> usize {
        self.at(i).len()
    }

    /// The processor average `P_A` over the first `t` steps (Equation 1).
    pub fn processor_average(&self, t: u64) -> f64 {
        assert!(t >= 1);
        let total: u64 = (1..=t).map(|i| self.count_at(i) as u64).sum();
        total as f64 / t as f64
    }

    /// Renders the first `t` steps as the paper's Figure-2(a) check-mark
    /// table.
    pub fn render(&self, t: u64) -> String {
        let mut out = String::new();
        out.push_str("step |");
        for q in 0..self.p {
            out.push_str(&format!(" p{q} |"));
        }
        out.push('\n');
        for i in 1..=t {
            let set = self.at(i);
            out.push_str(&format!("{i:4} |"));
            for q in 0..self.p {
                let mark = if set.contains(ProcId(q as u32)) {
                    "✓"
                } else {
                    " "
                };
                out.push_str(&format!("  {mark} |"));
            }
            out.push('\n');
        }
        out
    }
}

/// The example kernel schedule of Figure 2(a): 3 processes, 10 steps,
/// 20 scheduled-process slots in total, so `P_A = 2` over those steps.
///
/// The scan of the figure does not preserve which columns are checked, so
/// the column assignment here is a reconstruction; the per-step counts
/// (including the idle step 3 and the single-process step 7) and the
/// processor average match the figure's structure.
pub fn figure2_kernel() -> KernelTable {
    let p = 3;
    let rows: [&[u32]; 10] = [
        &[0, 1],
        &[0, 1, 2],
        &[],
        &[0, 2],
        &[1, 2],
        &[0, 1, 2],
        &[1],
        &[0, 1],
        &[0, 1, 2],
        &[1, 2],
    ];
    let steps = rows
        .iter()
        .map(|r| ProcSet::from_iter(p, r.iter().map(|&q| ProcId(q))))
        .collect();
    KernelTable::new(p, steps, Tail::AllProcs)
}

impl fmt::Display for KernelTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(self.prefix_len() as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedicated_schedule() {
        let k = KernelTable::dedicated(4);
        for i in 1..100 {
            assert_eq!(k.count_at(i), 4);
        }
        assert_eq!(k.processor_average(50), 4.0);
    }

    #[test]
    fn figure2_processor_average_is_two() {
        let k = figure2_kernel();
        assert_eq!(k.processor_average(10), 2.0);
        let counts: Vec<usize> = (1..=10).map(|i| k.count_at(i)).collect();
        assert_eq!(counts, vec![2, 3, 0, 2, 2, 3, 1, 2, 3, 2]);
    }

    #[test]
    fn tail_rules() {
        let cyc = KernelTable::from_counts(3, &[1, 2], Tail::Cycle);
        assert_eq!(cyc.count_at(1), 1);
        assert_eq!(cyc.count_at(2), 2);
        assert_eq!(cyc.count_at(3), 1);
        assert_eq!(cyc.count_at(4), 2);

        let hold = KernelTable::from_counts(3, &[1, 2], Tail::HoldLast);
        assert_eq!(hold.count_at(100), 2);

        let all = KernelTable::from_counts(3, &[1, 2], Tail::AllProcs);
        assert_eq!(all.count_at(100), 3);
    }

    #[test]
    fn processor_average_with_tail() {
        // 2 steps of 0 procs then all 4: P_A over 4 steps = (0+0+4+4)/4.
        let k = KernelTable::from_counts(4, &[0, 0], Tail::AllProcs);
        assert_eq!(k.processor_average(4), 2.0);
    }

    #[test]
    fn render_contains_checks() {
        let k = figure2_kernel();
        let s = k.render(10);
        assert_eq!(s.lines().count(), 11);
        assert_eq!(s.matches('✓').count(), 20);
    }

    #[test]
    #[should_panic(expected = "non-empty prefix")]
    fn empty_cycle_rejected_at_construction() {
        KernelTable::from_counts(3, &[], Tail::Cycle);
    }

    #[test]
    #[should_panic(expected = "numbered from 1")]
    fn step_zero_panics() {
        figure2_kernel().at(0);
    }
}
