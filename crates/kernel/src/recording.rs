//! Recording and replaying kernel behaviour.
//!
//! [`RecordingKernel`] wraps any online kernel and logs every choice it
//! makes; the log converts to a [`KernelTable`] that replays the run
//! exactly. This is how an *adaptive* adversary's behaviour on one run
//! becomes an *oblivious* schedule for the next — useful both for
//! debugging ("what did the kernel actually do?") and for the
//! adaptive-vs-oblivious comparisons: replaying an adaptive kernel's
//! recorded schedule against a fresh scheduler seed shows how much of its
//! damage depended on adapting to *this* run's random choices.

use crate::kernel::{Kernel, KernelView};
use crate::procset::ProcSet;
use crate::table::{KernelTable, Tail};

/// Wraps a kernel, recording each round's chosen set.
pub struct RecordingKernel<K> {
    inner: K,
    log: Vec<ProcSet>,
}

impl<K: Kernel> RecordingKernel<K> {
    pub fn new(inner: K) -> Self {
        RecordingKernel {
            inner,
            log: Vec::new(),
        }
    }

    /// Rounds recorded so far.
    pub fn rounds_recorded(&self) -> usize {
        self.log.len()
    }

    /// The recorded schedule as a replayable table (the given `tail`
    /// covers rounds beyond the recording).
    pub fn to_table(&self, tail: Tail) -> KernelTable {
        KernelTable::new(self.inner.num_procs(), self.log.clone(), tail)
    }

    /// Consumes the recorder, returning the wrapped kernel and the log.
    pub fn into_parts(self) -> (K, Vec<ProcSet>) {
        (self.inner, self.log)
    }
}

impl<K: Kernel> Kernel for RecordingKernel<K> {
    fn num_procs(&self) -> usize {
        self.inner.num_procs()
    }

    fn choose(&mut self, view: &KernelView<'_>) -> ProcSet {
        let set = self.inner.choose(view);
        self.log.push(set.clone());
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BenignKernel, CountSource, ObliviousKernel};
    use abp_dag::ProcId;

    fn view<'a>(round: u64, has: &'a [bool], dq: &'a [usize], cs: &'a [bool]) -> KernelView<'a> {
        KernelView {
            round,
            has_assigned: has,
            deque_len: dq,
            in_critical_section: cs,
        }
    }

    #[test]
    fn records_and_replays_exactly() {
        let p = 5;
        let mut rec =
            RecordingKernel::new(BenignKernel::new(p, CountSource::UniformBetween(1, 5), 77));
        let has = [true; 5];
        let dq = [0usize; 5];
        let cs = [false; 5];
        let mut originals = Vec::new();
        for r in 1..=30 {
            originals.push(rec.choose(&view(r, &has, &dq, &cs)));
        }
        assert_eq!(rec.rounds_recorded(), 30);
        // Replay through an oblivious kernel.
        let mut replay = ObliviousKernel::new(rec.to_table(Tail::AllProcs));
        for (i, orig) in originals.iter().enumerate() {
            let got = replay.choose(&view(i as u64 + 1, &has, &dq, &cs));
            assert_eq!(&got, orig, "round {}", i + 1);
        }
        // Beyond the recording, the tail takes over.
        let beyond = replay.choose(&view(31, &has, &dq, &cs));
        assert_eq!(beyond.len(), p);
    }

    #[test]
    fn into_parts_returns_log() {
        let mut rec = RecordingKernel::new(BenignKernel::new(3, CountSource::Constant(2), 1));
        let has = [false; 3];
        let dq = [0usize; 3];
        let cs = [false; 3];
        rec.choose(&view(1, &has, &dq, &cs));
        rec.choose(&view(2, &has, &dq, &cs));
        let (_inner, log) = rec.into_parts();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|s| s.len() == 2));
        let _ = ProcId(0);
    }
}
