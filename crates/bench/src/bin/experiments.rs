//! CLI driver for the experiment suite. Run `experiments all` (or a
//! specific experiment id such as `thm9`, `fig2`, `ablate-yield`) to
//! regenerate the paper's tables and figures; see DESIGN.md §3.

use abp_bench::exp;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let which = args.first().map(String::as_str).unwrap_or("all");
    let results = match which {
        "all" => exp::all(),
        "fig1" => vec![exp::fig1()],
        "fig2" => vec![exp::fig2()],
        "thm1" => vec![exp::thm1()],
        "thm2" => vec![exp::thm2()],
        "thm9" => vec![exp::thm9()],
        "thm9-tail" => vec![exp::thm9_tail()],
        "thm10" => vec![exp::thm10()],
        "thm11" => vec![exp::thm11()],
        "thm12" => vec![exp::thm12()],
        "hood-constant" => vec![exp::hood_constant()],
        "ablate-lock" => vec![exp::ablate_lock()],
        "ablate-yield" => vec![exp::ablate_yield()],
        "lemma3" | "potential" | "invariants" => vec![exp::invariants()],
        "deque-check" => vec![exp::deque_check()],
        "ws-vs-sharing" => vec![exp::ws_vs_sharing()],
        "assign-policy" => vec![exp::assign_policy()],
        "hood-wallclock" => vec![exp::hood_wallclock()],
        "telemetry" => vec![exp::telemetry()],
        "policies" => vec![exp::policies(false)],
        "policies-small" => vec![exp::policies(true)],
        "serve" => vec![exp::serve(false)],
        "serve-small" => vec![exp::serve(true)],
        "hotpath" => vec![exp::hotpath()],
        "idle" => vec![exp::idle(false)],
        "idle-small" => vec![exp::idle(true)],
        "par" => vec![exp::par(false)],
        "par-small" => vec![exp::par(true)],
        "deque-backends" => vec![exp::deque_backends(false)],
        "deque-backends-small" => vec![exp::deque_backends(true)],
        "theory" => vec![exp::theory(false)],
        "theory-small" => vec![exp::theory(true)],
        "federation" => vec![exp::federation(false)],
        "federation-small" => vec![exp::federation(true)],
        "steal-batch" => vec![exp::steal_batch(false)],
        "steal-batch-small" => vec![exp::steal_batch(true)],
        other => {
            eprintln!(
                "unknown experiment `{other}`; one of: all fig1 fig2 thm1 thm2 thm9 \
                 thm9-tail thm10 thm11 thm12 hood-constant ablate-lock ablate-yield \
                 lemma3 deque-check ws-vs-sharing assign-policy hood-wallclock telemetry \
                 policies policies-small serve serve-small hotpath idle idle-small \
                 par par-small deque-backends deque-backends-small theory theory-small \
                 federation federation-small steal-batch steal-batch-small"
            );
            std::process::exit(2);
        }
    };
    let mut failed = 0;
    for r in &results {
        println!("{r}");
        if !r.pass {
            failed += 1;
        }
    }
    println!(
        "{} experiment(s): {} passed, {} failed",
        results.len(),
        results.len() - failed,
        failed
    );
    if failed > 0 {
        std::process::exit(1);
    }
}
