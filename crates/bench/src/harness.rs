//! A minimal benchmark harness (the workspace is dependency-free, so
//! criterion is not available). It keeps criterion's group/function
//! shape: warm-up, automatic inner-iteration calibration so a sample
//! spans at least a millisecond, and a median/mean/min report with
//! optional element throughput.
//!
//! Each `[[bench]]` target with `harness = false` builds a `main` that
//! drives [`Harness`]; run with `cargo bench -p abp-bench` (an optional
//! substring argument filters benchmark names).

use std::hint::black_box;
use std::time::Instant;

/// Re-export so bench files only import from this module.
pub use std::hint::black_box as bb;

/// Target minimum duration of one timed sample.
const MIN_SAMPLE_NS: u64 = 1_000_000;

/// Sample-duration target and cap in `--quick` mode (the CI smoke run):
/// shorter samples, at most this many of them.
const QUICK_SAMPLE_NS: u64 = 50_000;
const QUICK_SAMPLES: usize = 5;

/// Top-level driver; parses the CLI filter and prints the header.
pub struct Harness {
    filter: Option<String>,
    quick: bool,
}

impl Harness {
    /// Builds from `std::env::args`, ignoring cargo's `--bench` flag,
    /// treating the first free argument as a name filter, and honouring
    /// `--quick` (short samples, few of them — the CI smoke mode).
    pub fn from_args(title: &str) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let quick = args.iter().any(|a| a == "--quick");
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty())
            .cloned();
        println!("# {title}{}", if quick { " (quick)" } else { "" });
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>14}",
            "benchmark", "median", "mean", "min", "throughput"
        );
        Harness { filter, quick }
    }

    /// Opens a named benchmark group.
    pub fn group(&self, name: &str) -> Group<'_> {
        Group {
            harness: self,
            name: name.to_string(),
            samples: 20,
            elems: None,
        }
    }
}

/// A group of related benchmark functions sharing sample count and
/// throughput units.
pub struct Group<'a> {
    harness: &'a Harness,
    name: String,
    samples: usize,
    elems: Option<u64>,
}

impl Group<'_> {
    /// Number of timed samples per benchmark (default 20).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(3);
        self
    }

    /// Declare that one iteration processes `n` elements, enabling the
    /// elements/second column.
    pub fn throughput_elems(&mut self, n: u64) -> &mut Self {
        self.elems = Some(n);
        self
    }

    /// Benchmarks `f`, timing batches of calls.
    pub fn bench<F: FnMut()>(&mut self, name: &str, mut f: F) {
        self.bench_with_setup(name, || (), move |()| f());
    }

    /// Benchmarks `f` with a fresh, untimed `setup()` product per call
    /// (criterion's `iter_batched` with per-iteration batches).
    pub fn bench_with_setup<S, T, F>(&mut self, name: &str, mut setup: S, mut f: F)
    where
        S: FnMut() -> T,
        F: FnMut(T),
    {
        let full = format!("{}/{}", self.name, name);
        if let Some(filter) = &self.harness.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let (sample_ns, samples) = if self.harness.quick {
            (QUICK_SAMPLE_NS, self.samples.min(QUICK_SAMPLES))
        } else {
            (MIN_SAMPLE_NS, self.samples)
        };
        // Warm-up and calibration: how many calls make a full sample?
        let once = {
            let input = setup();
            let t0 = Instant::now();
            f(black_box(input));
            t0.elapsed().as_nanos().max(1) as u64
        };
        let iters = (sample_ns / once).clamp(1, 1_000_000);
        let mut per_call: Vec<u64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let inputs: Vec<T> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                f(black_box(input));
            }
            per_call.push(t0.elapsed().as_nanos() as u64 / iters);
        }
        per_call.sort_unstable();
        let median = per_call[per_call.len() / 2];
        let mean = per_call.iter().sum::<u64>() / per_call.len() as u64;
        let min = per_call[0];
        let thr = match self.elems {
            Some(e) if median > 0 => {
                let eps = e as f64 * 1e9 / median as f64;
                if eps >= 1e6 {
                    format!("{:.1} Melem/s", eps / 1e6)
                } else {
                    format!("{:.1} kelem/s", eps / 1e3)
                }
            }
            _ => String::from("-"),
        };
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>14}",
            full,
            fmt_ns(median),
            fmt_ns(mean),
            fmt_ns(min),
            thr
        );
    }

    /// Criterion-compatibility no-op.
    pub fn finish(&mut self) {}
}

/// Human duration formatting (ns → µs → ms → s).
pub fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_durations() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert_eq!(fmt_ns(1_500), "1.50 µs");
        assert_eq!(fmt_ns(2_000_000), "2.00 ms");
        assert_eq!(fmt_ns(3_200_000_000), "3.20 s");
    }

    #[test]
    fn bench_runs_and_reports() {
        let h = Harness {
            filter: None,
            quick: false,
        };
        let mut g = h.group("smoke");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench("counting", || {
            count = count.wrapping_add(1);
        });
        assert!(count > 0);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let h = Harness {
            filter: Some("nomatch".to_string()),
            quick: false,
        };
        let mut g = h.group("smoke");
        let mut ran = false;
        g.bench("skipped", || ran = true);
        assert!(!ran);
    }

    #[test]
    fn quick_mode_caps_samples_and_still_runs() {
        let h = Harness {
            filter: None,
            quick: true,
        };
        let mut g = h.group("smoke");
        g.sample_size(50);
        let mut count = 0u64;
        g.bench("counting", || {
            count = count.wrapping_add(1);
        });
        assert!(count > 0);
    }
}
