//! Minimal aligned-text table rendering for experiment output.

/// A simple text table with a header row.
#[derive(Debug, Default, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header arity).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with column alignment.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                let w = widths[i];
                let c = &cells[i];
                let pad = w - c.chars().count();
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = c
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || ".-+e%×∞".contains(ch));
                if numeric && !c.is_empty() {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(c);
                } else {
                    line.push_str(c);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = TextTable::new(["name", "value"]);
        t.row(["alpha", "1.5"]);
        t.row(["b", "100.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("1.5"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
