//! Experiment harness and benchmarks regenerating every table and figure
//! of ABP SPAA 1998. See DESIGN.md for the experiment index and
//! EXPERIMENTS.md for recorded results.

pub mod exp;
pub mod harness;
pub mod table;
